//! Ingest throughput of the worker-sharded front-end (`cora_stream::sharded`)
//! at 1/2/4/8 shards against the single-core correlated-F2 baseline, on the
//! paper's uniform and Zipf(1) workloads.
//!
//! The interesting number is elem/s scaling with the shard count: the merge
//! behind the front-end is lossless (Property V), so throughput is the only
//! axis the sharding trades on. On a multi-core host 4 shards should clear
//! 3x the single-core baseline; on a single-core host (some CI containers)
//! the workers serialize and the sharded numbers degenerate to ~1x, which is
//! expected — compare against `single_core` from the same run, never across
//! machines.

use cora_core::correlated_f2_seeded;
use cora_stream::{sharded_correlated_f2, DatasetGenerator, UniformGenerator, ZipfGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

const N: usize = 100_000;
const Y_MAX: u64 = 1_000_000;

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    let mut uniform = UniformGenerator::new(500_000, Y_MAX, 7);
    let uniform_pairs: Vec<(u64, u64)> =
        uniform.generate(N).iter().map(|t| (t.x, t.y)).collect();
    let mut zipf = ZipfGenerator::new(1.0, 500_000, Y_MAX, 7);
    let zipf_pairs: Vec<(u64, u64)> = zipf.generate(N).iter().map(|t| (t.x, t.y)).collect();

    for (name, pairs) in [("uniform", &uniform_pairs), ("zipf1", &zipf_pairs)] {
        // Single-core reference: the same workload through the sequential
        // insert path (the 6.2e5 elem/s baseline from ROADMAP.md).
        group.bench_function(format!("single_core/{name}"), |b| {
            b.iter_batched(
                || correlated_f2_seeded(0.2, 0.05, Y_MAX, N as u64, 3).unwrap(),
                |mut sketch| {
                    for &(x, y) in pairs {
                        sketch.insert(x, y).unwrap();
                    }
                    sketch
                },
                BatchSize::LargeInput,
            );
        });
        for shards in [1usize, 2, 4, 8] {
            group.bench_function(format!("shards{shards}/{name}"), |b| {
                b.iter_batched(
                    || sharded_correlated_f2(0.2, 0.05, Y_MAX, N as u64, 3, shards).unwrap(),
                    |mut ingest| {
                        ingest.ingest(pairs).unwrap();
                        ingest.flush();
                        ingest
                    },
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
