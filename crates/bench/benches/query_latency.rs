//! Latency of correlated queries (threshold supplied at query time) for F2,
//! F0, heavy hitters and rarity, after ingesting a moderate stream.

use cora_core::{correlated_f2_seeded, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity};
use cora_stream::{DatasetGenerator, ZipfGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 50_000;
const Y_MAX: u64 = 1_000_000;

fn bench_queries(c: &mut Criterion) {
    let mut generator = ZipfGenerator::new(1.0, 200_000, Y_MAX, 5);
    let tuples = generator.generate(N);

    let mut f2 = correlated_f2_seeded(0.2, 0.05, Y_MAX, N as u64, 3).unwrap();
    let mut f0 = CorrelatedF0::with_seed(0.15, 0.05, 20, Y_MAX, 3).unwrap();
    let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.05, 0.05, Y_MAX, N as u64, 3).unwrap();
    let mut rarity = CorrelatedRarity::with_seed(0.2, 18, Y_MAX, 3).unwrap();
    for t in &tuples {
        f2.insert(t.x, t.y).unwrap();
        f0.insert(t.x, t.y).unwrap();
        hh.insert(t.x, t.y).unwrap();
        rarity.insert(t.x, t.y).unwrap();
    }

    let mut group = c.benchmark_group("query_latency");
    group.sample_size(20);
    let thresholds = [Y_MAX / 10, Y_MAX / 2, Y_MAX];
    group.bench_function("correlated_f2_query", |b| {
        b.iter(|| {
            for &c in &thresholds {
                black_box(f2.query(black_box(c)).unwrap());
            }
        })
    });
    group.bench_function("correlated_f0_query", |b| {
        b.iter(|| {
            for &c in &thresholds {
                black_box(f0.query(black_box(c)).unwrap());
            }
        })
    });
    group.bench_function("correlated_heavy_hitters_query", |b| {
        b.iter(|| {
            for &c in &thresholds {
                black_box(hh.query_heavy_hitters(black_box(c), 0.05).unwrap());
            }
        })
    });
    group.bench_function("correlated_rarity_query", |b| {
        b.iter(|| {
            for &c in &thresholds {
                black_box(rarity.query(black_box(c)).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
