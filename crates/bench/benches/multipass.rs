//! Cost of the MULTIPASS construction (Section 4.2) as the y domain grows —
//! its pass count is logarithmic in `y_max`, so the wall-clock cost per stored
//! tuple grows only logarithmically too.

use cora_stream::{multipass_f2, StoredStream, StreamTuple};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_multipass(c: &mut Criterion) {
    let mut group = c.benchmark_group("multipass_construction");
    group.sample_size(10);
    for log_y in [8u32, 12, 16] {
        let y_max = (1u64 << log_y) - 1;
        let tuples: Vec<StreamTuple> = (0..20_000u64)
            .map(|i| StreamTuple::weighted(i % 500, (i * 2654435761) % (y_max + 1), 1))
            .collect();
        let stream = StoredStream::new(tuples);
        group.bench_with_input(BenchmarkId::from_parameter(log_y), &log_y, |b, _| {
            b.iter(|| multipass_f2(&stream, 0.3, 0.1, y_max, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multipass);
criterion_main!(benches);
