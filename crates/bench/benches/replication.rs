//! Throughput of the replicated ingest path: each iteration ingests one
//! 1k-tuple batch into a node whose replicator ships sketch deltas to a
//! live aggregator, then drives a full replication barrier
//! (`flush` + `replication_sync`) so the measured cost covers the whole
//! fan-in pipeline — shard apply, delta cut, wire framing, the loopback
//! hop, and the aggregator-side merge.
//!
//! Like the other `serve_*` rows this crosses the OS socket stack, so the
//! CI gate holds it to the looser server-path tolerance (see
//! `.github/workflows/ci.yml`).

use cora_serve::client::ServeClient;
use cora_serve::cluster::start_aggregator;
use cora_serve::server::{start, ReplicateConfig, RunningServer, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const Y_MAX: u64 = (1 << 20) - 1;
const INGEST_BATCH: usize = 1_000;

fn bench_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.2,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 10_000_000,
        seed: 3,
        shards: 2,
        merge_every: 4,
        x_domain_log2: 20,
        ..ServeConfig::default()
    }
}

/// An aggregator plus one node replicating stream `bench` into it, the node
/// pre-loaded to 50k tuples and fully synced so every iteration measures a
/// warm incremental delta, not the initial full snapshot.
fn replicating_pair() -> (RunningServer, RunningServer) {
    let aggregator = start_aggregator(bench_config(), "127.0.0.1:0").expect("bind aggregator");
    let node = start(
        ServeConfig {
            replicate: Some(ReplicateConfig {
                interval_ms: 1_000,
                ..ReplicateConfig::new(aggregator.local_addr().to_string(), "bench")
            }),
            ..bench_config()
        },
        "127.0.0.1:0",
    )
    .expect("bind node");
    let tuples: Vec<(u64, u64)> = (0..50_000u64)
        .map(|i| (i % 5_000, (i * 127) % (Y_MAX + 1)))
        .collect();
    let mut loader = ServeClient::connect_binary(node.local_addr()).expect("preload connect");
    loader
        .ingest_pipelined(&tuples, INGEST_BATCH)
        .expect("preload ingest");
    loader.flush().expect("preload flush");
    node.replication_sync(Duration::from_secs(60))
        .expect("preload sync");
    (aggregator, node)
}

fn bench_replication(c: &mut Criterion) {
    let (aggregator, node) = replicating_pair();
    let mut client = ServeClient::connect_binary(node.local_addr()).expect("connect");
    let batch: Vec<(u64, u64)> = (0..INGEST_BATCH as u64)
        .map(|i| (i % 700, (i * 31) % (Y_MAX + 1)))
        .collect();

    let mut group = c.benchmark_group("replication_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INGEST_BATCH as u64));
    group.bench_function("ingest_1k_replicated", |b| {
        b.iter(|| {
            client.ingest(black_box(&batch)).unwrap();
            client.flush().unwrap();
            node.replication_sync(Duration::from_secs(60)).unwrap()
        })
    });
    group.finish();

    drop(client);
    node.shutdown();
    aggregator.shutdown();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
