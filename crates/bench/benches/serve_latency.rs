//! End-to-end latency of the `cora-serve` protocols over loopback TCP:
//! what one client round-trip costs for each query op (over both the JSON
//! line protocol and the binary frame protocol), and the throughput of
//! batch ingest through the server — acked JSON, acked binary, and
//! pipelined no-ack binary.
//!
//! The `serve_latency` rows include the OS socket stack, so they are
//! noisier than the in-process benches; the CI bench gate deliberately does
//! **not** filter on them (see `.github/workflows/ci.yml`). The
//! `serve_ingest`/`serve_ingest_binary` throughput rows **are** gated —
//! they pin the server-path ingest tax against the in-process baseline.

use cora_serve::client::ServeClient;
use cora_serve::server::{start, DurabilityConfig, RunningServer, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

const Y_MAX: u64 = (1 << 20) - 1;
const INGEST_BATCH: usize = 1_000;

fn bench_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.2,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 10_000_000,
        seed: 3,
        shards: 2,
        merge_every: 4,
        phi: 0.05,
        x_domain_log2: 20,
        pane_ticks: 1_024,
        pane_k: 4,
        pane_retention: None,
        max_connections: 1_024,
        durability: None,
        auth_token: None,
        replicate: None,
    }
}

/// A fresh server pre-loaded to exactly 50k tuples. Every ingest row starts
/// from its own copy of this state: the windowed structures' marginal cost
/// grows with stream length, so rows sharing one server would measure their
/// position in the run order, not their protocol.
fn preloaded_server() -> RunningServer {
    preloaded_with(bench_config())
}

fn preloaded_with(config: ServeConfig) -> RunningServer {
    let server = start(config, "127.0.0.1:0").expect("bind loopback server");
    let tuples: Vec<(u64, u64)> = (0..50_000u64)
        .map(|i| (i % 5_000, (i * 127) % (Y_MAX + 1)))
        .collect();
    let mut loader = ServeClient::connect_binary(server.local_addr()).expect("preload connect");
    loader.ingest_pipelined(&tuples, INGEST_BATCH).expect("preload ingest");
    loader.flush().expect("preload flush");
    server
}

/// A scratch durable directory for the journaled ingest rows.
fn durable_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cora_bench_journal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_serve(c: &mut Criterion) {
    let server = preloaded_server();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let mut binary = ServeClient::connect_binary(server.local_addr()).expect("binary connect");

    let mut group = c.benchmark_group("serve_latency");
    group.sample_size(30);
    group.bench_function("ping_round_trip", |b| {
        b.iter(|| client.ping().unwrap())
    });
    group.bench_function("f2_query_round_trip", |b| {
        b.iter(|| black_box(client.query_f2(black_box(Y_MAX / 2)).unwrap()))
    });
    group.bench_function("f0_query_round_trip", |b| {
        b.iter(|| black_box(client.query_f0(black_box(Y_MAX / 2)).unwrap()))
    });
    group.bench_function("heavy_hitters_round_trip", |b| {
        b.iter(|| black_box(client.query_heavy_hitters(black_box(Y_MAX), 0.05).unwrap()))
    });
    group.bench_function("ping_round_trip_binary", |b| {
        b.iter(|| binary.ping().unwrap())
    });
    group.bench_function("f2_query_round_trip_binary", |b| {
        b.iter(|| black_box(binary.query_f2(black_box(Y_MAX / 2)).unwrap()))
    });
    group.bench_function("heavy_hitters_round_trip_binary", |b| {
        b.iter(|| black_box(binary.query_heavy_hitters(black_box(Y_MAX), 0.05).unwrap()))
    });
    group.finish();

    drop(client);
    drop(binary);
    server.shutdown();

    let batch: Vec<(u64, u64)> = (0..INGEST_BATCH as u64)
        .map(|i| (i % 700, (i * 31) % (Y_MAX + 1)))
        .collect();

    {
        let server = preloaded_server();
        let mut client = ServeClient::connect(server.local_addr()).expect("connect");
        let mut group = c.benchmark_group("serve_ingest");
        group.sample_size(10);
        group.throughput(Throughput::Elements(INGEST_BATCH as u64));
        group.bench_function("ingest_1k_batch", |b| {
            b.iter(|| client.ingest(black_box(&batch)).unwrap())
        });
        group.finish();
        drop(client);
        server.shutdown();
    }

    {
        let server = preloaded_server();
        let mut binary = ServeClient::connect_binary(server.local_addr()).expect("connect");
        let mut group = c.benchmark_group("serve_ingest_binary");
        group.sample_size(10);
        group.throughput(Throughput::Elements(INGEST_BATCH as u64));
        group.bench_function("ingest_1k_batch", |b| {
            b.iter(|| binary.ingest(black_box(&batch)).unwrap())
        });
        group.finish();
        drop(binary);
        server.shutdown();
    }

    {
        let server = preloaded_server();
        let mut binary = ServeClient::connect_binary(server.local_addr()).expect("connect");
        // The pipelined hot path: stream no-ack batches, one sync round
        // trip for the whole train instead of one per batch.
        const PIPELINE_DEPTH: usize = 20;
        let mut group = c.benchmark_group("serve_ingest_binary");
        group.sample_size(10);
        group.throughput(Throughput::Elements((INGEST_BATCH * PIPELINE_DEPTH) as u64));
        group.bench_function("ingest_20x1k_pipelined", |b| {
            b.iter(|| {
                for _ in 0..PIPELINE_DEPTH {
                    binary.ingest_noack(black_box(&batch)).unwrap();
                }
                binary.sync().unwrap();
            })
        });
        group.finish();
        drop(binary);
        server.shutdown();
    }

    {
        // The durability tax: same acked binary 1k-batch row, but every
        // batch is journaled and fsync'd before the ack (the crash-safe
        // default). The delta against `serve_ingest_binary/ingest_1k_batch`
        // is the cost of the WAL; ROADMAP.md records the measured overhead.
        let dir = durable_dir();
        let server = preloaded_with(ServeConfig {
            durability: Some(DurabilityConfig {
                dir: dir.clone(),
                // No automatic rotation mid-measurement: snapshots are
                // triggered far beyond what this bench ingests.
                snapshot_every_tuples: 0,
                snapshot_interval_ms: 0,
                fsync_each_batch: true,
            }),
            ..bench_config()
        });
        let mut binary = ServeClient::connect_binary(server.local_addr()).expect("connect");
        let mut group = c.benchmark_group("serve_ingest_journaled");
        group.sample_size(10);
        group.throughput(Throughput::Elements(INGEST_BATCH as u64));
        group.bench_function("ingest_1k_batch", |b| {
            b.iter(|| binary.ingest(black_box(&batch)).unwrap())
        });
        group.finish();
        drop(binary);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
