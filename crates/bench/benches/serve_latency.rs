//! End-to-end latency of the `cora-serve` line protocol over loopback TCP:
//! what one client round-trip costs for each query op, and the throughput of
//! batch ingest through the server.
//!
//! These numbers include the OS socket stack, so they are noisier than the
//! in-process benches; the CI bench gate deliberately does **not** filter on
//! them (see `.github/workflows/ci.yml`), they are recorded for the
//! trajectory only.

use cora_serve::client::ServeClient;
use cora_serve::server::{start, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const Y_MAX: u64 = (1 << 20) - 1;
const INGEST_BATCH: usize = 1_000;

fn bench_serve(c: &mut Criterion) {
    let config = ServeConfig {
        epsilon: 0.2,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 10_000_000,
        seed: 3,
        shards: 2,
        merge_every: 4,
        phi: 0.05,
        x_domain_log2: 20,
        pane_ticks: 1_024,
        pane_k: 4,
        pane_retention: None,
    };
    let server = start(config, "127.0.0.1:0").expect("bind loopback server");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Pre-load a moderate stream so queries touch real structure.
    let tuples: Vec<(u64, u64)> = (0..50_000u64)
        .map(|i| (i % 5_000, (i * 127) % (Y_MAX + 1)))
        .collect();
    for chunk in tuples.chunks(INGEST_BATCH) {
        client.ingest(chunk).expect("preload ingest");
    }
    client.flush().expect("preload flush");

    let mut group = c.benchmark_group("serve_latency");
    group.sample_size(30);
    group.bench_function("ping_round_trip", |b| {
        b.iter(|| client.ping().unwrap())
    });
    group.bench_function("f2_query_round_trip", |b| {
        b.iter(|| black_box(client.query_f2(black_box(Y_MAX / 2)).unwrap()))
    });
    group.bench_function("f0_query_round_trip", |b| {
        b.iter(|| black_box(client.query_f0(black_box(Y_MAX / 2)).unwrap()))
    });
    group.bench_function("heavy_hitters_round_trip", |b| {
        b.iter(|| black_box(client.query_heavy_hitters(black_box(Y_MAX), 0.05).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("serve_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INGEST_BATCH as u64));
    let batch: Vec<(u64, u64)> = (0..INGEST_BATCH as u64)
        .map(|i| (i % 700, (i * 31) % (Y_MAX + 1)))
        .collect();
    group.bench_function("ingest_1k_batch", |b| {
        b.iter(|| client.ingest(black_box(&batch)).unwrap())
    });
    group.finish();

    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
