//! Throughput of the whole-stream substrate sketches (ablation: the paper's
//! choice of the Thorup–Zhang fast AMS variant vs the classic AMS sketch, and
//! the distinct-count substrates).

use cora_sketch::{
    AmsF2Sketch, DistinctSampler, FastAmsSketch, FlajoletMartin, KmvSketch, StreamSketch,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

const N: u64 = 50_000;

fn bench_f2_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_stream_f2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    group.bench_function("fast_ams_thorup_zhang", |b| {
        b.iter_batched(
            || FastAmsSketch::with_dimensions(512, 5, 3),
            |mut s| {
                for x in 0..N {
                    s.update(x % 10_000, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("classic_ams", |b| {
        b.iter_batched(
            || AmsF2Sketch::with_dimensions(64, 5, 3),
            |mut s| {
                for x in 0..N {
                    s.update(x % 10_000, 1);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_f0_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_stream_f0");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    group.bench_function("distinct_sampler", |b| {
        b.iter_batched(
            || DistinctSampler::new(1024, 3),
            |mut s| {
                for x in 0..N {
                    s.insert(x);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("kmv_bottom_k", |b| {
        b.iter_batched(
            || KmvSketch::new(1024, 3),
            |mut s| {
                for x in 0..N {
                    s.insert(x);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("flajolet_martin", |b| {
        b.iter_batched(
            || FlajoletMartin::new(256, 3),
            |mut s| {
                for x in 0..N {
                    s.insert(x);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_f2_substrates, bench_f0_substrates);
criterion_main!(benches);
