//! Cost of the pane-ring windowed structures: per-record `observe` (pane
//! routing with exponential-histogram rebalancing amortized in), cold window
//! queries (O(log W) pane merges through the compose path), and the repeat
//! that hits the generation-keyed composite cache.

use cora_stream::{windowed_f2, DatasetGenerator, PaneConfig, UniformGenerator, WindowedF2, ZipfGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

const N: usize = 20_000;
const Y_MAX: u64 = 1_000_000;

fn fresh_ring() -> WindowedF2 {
    windowed_f2(0.2, 0.05, Y_MAX, N as u64, 3, PaneConfig::new(256)).unwrap()
}

fn bench_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_throughput");
    group.sample_size(10);

    let mut uniform = UniformGenerator::new(500_000, Y_MAX, 7);
    let uniform_tuples = uniform.generate(N);
    let mut zipf = ZipfGenerator::new(1.0, 500_000, Y_MAX, 7);
    let zipf_tuples = zipf.generate(N);

    group.throughput(Throughput::Elements(N as u64));
    for (name, tuples) in [("uniform", &uniform_tuples), ("zipf1", &zipf_tuples)] {
        group.bench_function(format!("observe/{name}"), |b| {
            b.iter_batched(
                fresh_ring,
                |mut ring| {
                    for (i, t) in tuples.iter().enumerate() {
                        ring.observe(t.x, t.y, i as u64).unwrap();
                    }
                    ring
                },
                BatchSize::LargeInput,
            );
        });
    }

    // Query latency on a populated ring. A clone starts with a cold cache, so
    // `query_cold` pays the pane merges every iteration; `query_cached`
    // repeats the same window on an unchanged ring and must only probe.
    let mut ring = fresh_ring();
    for (i, t) in uniform_tuples.iter().enumerate() {
        ring.observe(t.x, t.y, i as u64).unwrap();
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("query_cold/window_quarter", |b| {
        b.iter_batched(
            || ring.clone(),
            |r| r.query_sliding((N / 4) as u64, Y_MAX / 2).unwrap(),
            BatchSize::LargeInput,
        );
    });
    ring.query_sliding((N / 4) as u64, Y_MAX / 2).unwrap();
    group.bench_function("query_cached/window_quarter", |b| {
        b.iter(|| ring.query_sliding((N / 4) as u64, Y_MAX / 2).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_windowed);
criterion_main!(benches);
