//! Per-record update cost of the correlated sketches (experiment E7) and of
//! the exact baseline, on the paper's workloads.

use cora_core::{correlated_f2_seeded, CorrelatedF0, ExactCorrelated};
use cora_sketch::{FastAmsBatch, FastAmsSketch, SharedUpdate};
use cora_stream::{DatasetGenerator, UniformGenerator, ZipfGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

const N: usize = 20_000;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    let mut uniform = UniformGenerator::new(500_000, 1_000_000, 7);
    let uniform_tuples = uniform.generate(N);
    let mut zipf = ZipfGenerator::new(1.0, 500_000, 1_000_000, 7);
    let zipf_tuples = zipf.generate(N);

    for (name, tuples) in [("uniform", &uniform_tuples), ("zipf1", &zipf_tuples)] {
        group.bench_function(format!("correlated_f2/{name}"), |b| {
            b.iter_batched(
                || correlated_f2_seeded(0.2, 0.05, 1_000_000, N as u64, 3).unwrap(),
                |mut sketch| {
                    for t in tuples {
                        sketch.insert(t.x, t.y).unwrap();
                    }
                    sketch
                },
                BatchSize::LargeInput,
            );
        });
        // Same workload through the amortized batch API (level-major
        // traversal; produces the identical structure).
        let pairs: Vec<(u64, u64)> = tuples.iter().map(|t| (t.x, t.y)).collect();
        group.bench_function(format!("correlated_f2_batch/{name}"), |b| {
            b.iter_batched(
                || correlated_f2_seeded(0.2, 0.05, 1_000_000, N as u64, 3).unwrap(),
                |mut sketch| {
                    for chunk in pairs.chunks(1024) {
                        sketch.update_batch(chunk).unwrap();
                    }
                    sketch
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("correlated_f0/{name}"), |b| {
            b.iter_batched(
                || CorrelatedF0::with_seed(0.1, 0.05, 20, 1_000_000, 3).unwrap(),
                |mut sketch| {
                    for t in tuples {
                        sketch.insert(t.x, t.y).unwrap();
                    }
                    sketch
                },
                BatchSize::LargeInput,
            );
        });
        // The fast-AMS apply kernel in isolation: hashing happens once in
        // setup (`prepare_batch_into`), so the measured loop is exactly the
        // unrolled counter-update kernel. Sketch shape matches what
        // `F2Aggregate::new(0.2, ...)` builds (width 200, depth 3).
        let proto = FastAmsSketch::with_dimensions(200, 3, 7);
        let weighted: Vec<(u64, i64)> = tuples.iter().map(|t| (t.x, 1i64)).collect();
        let mut prepared = FastAmsBatch::default();
        proto.prepare_batch_into(&weighted, &mut prepared);
        group.bench_function(format!("fast_ams_batch_apply/{name}"), |b| {
            b.iter_batched(
                || FastAmsSketch::with_dimensions(200, 3, 7),
                |mut sketch| {
                    sketch.apply_prepared_range(&prepared, 0..weighted.len());
                    sketch
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("exact_baseline/{name}"), |b| {
            b.iter_batched(
                ExactCorrelated::new,
                |mut exact| {
                    for t in tuples {
                        exact.insert(t.x, t.y);
                    }
                    exact
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
