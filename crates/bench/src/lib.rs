//! # cora-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation section (Section 5) plus the additional reports listed in
//! DESIGN.md's per-experiment index. The figure binaries in `src/bin/` are
//! thin wrappers around the functions here; the Criterion benches in
//! `benches/` cover the time-based measurements (per-record update cost,
//! query latency, whole-stream sketch throughput, multipass passes).
//!
//! Space experiments are run at a configurable `--scale` (default well below
//! the paper's 40–50 million tuples so a laptop regenerates every series in
//! minutes); the *shape* of each curve — how space moves with ε and with the
//! stream size, and who wins against linear storage — is what reproduces the
//! paper, not the absolute tuple counts. See EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(clippy::all)]

use cora_core::{
    correlated_f2_seeded, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity, ExactCorrelated,
};
use cora_stream::{
    default_thresholds, windowed_f2, DatasetGenerator, PaneConfig, RunReport, StreamTuple,
};

/// Common command-line options for the figure binaries (parsed by hand to
/// avoid an argument-parsing dependency).
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Stream size for the largest configuration.
    pub scale: usize,
    /// Random seed shared by generators and sketches.
    pub seed: u64,
    /// Emit machine-readable JSON lines in addition to the table.
    pub json: bool,
    /// Override epsilon (used by the space-vs-n binaries).
    pub epsilon: Option<f64>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            scale: 2_000_000,
            seed: 0xC04A,
            json: false,
            epsilon: None,
        }
    }
}

impl ExperimentOptions {
    /// Parse `--scale N`, `--seed N`, `--eps X`, `--json` from the process
    /// arguments, ignoring anything else.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = args[i + 1].parse().unwrap_or(opts.scale);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--eps" if i + 1 < args.len() => {
                    opts.epsilon = args[i + 1].parse().ok();
                    i += 1;
                }
                "--json" => opts.json = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Print a series of reports as a table (and JSON lines when requested).
pub fn emit(reports: &[RunReport], json: bool) {
    println!("{}", RunReport::tsv_header());
    for r in reports {
        println!("{}", r.tsv_row());
    }
    if json {
        for r in reports {
            println!("{}", r.to_json());
        }
    }
}

/// Measure a correlated-F2 sketch on one generated dataset.
///
/// Returns the run report; the relative errors are probed against the exact
/// baseline only when `check_accuracy` is set (the exact baseline is the
/// expensive part at large scales).
pub fn measure_correlated_f2(
    generator: &mut dyn DatasetGenerator,
    n: usize,
    epsilon: f64,
    seed: u64,
    check_accuracy: bool,
) -> RunReport {
    let name = generator.name();
    let y_max = generator.y_max();
    let tuples = generator.generate(n);
    let mut sketch =
        correlated_f2_seeded(epsilon, 0.05, y_max, n as u64, seed).expect("valid parameters");
    let ns_per_record =
        cora_stream::time_ingest(&tuples, |t| sketch.insert(t.x, t.y).expect("y in range"));
    let errors = if check_accuracy {
        let exact = exact_baseline(&tuples);
        cora_stream::relative_errors(&default_thresholds(y_max, 5), |c| {
            let truth = exact.frequency_moment(2, c);
            if truth == 0.0 {
                None
            } else {
                Some((sketch.query(c).expect("answerable"), truth))
            }
        })
    } else {
        Vec::new()
    };
    let stats = sketch.stats();
    RunReport {
        dataset: name,
        sketch: "correlated-F2".into(),
        epsilon,
        stream_len: tuples.len(),
        stored_tuples: stats.stored_tuples,
        space_bytes: stats.space_bytes,
        ns_per_record,
        relative_errors: errors,
    }
}

/// Measure a correlated-F0 sketch on one generated dataset.
pub fn measure_correlated_f0(
    generator: &mut dyn DatasetGenerator,
    n: usize,
    epsilon: f64,
    seed: u64,
    check_accuracy: bool,
) -> RunReport {
    let name = generator.name();
    let y_max = generator.y_max();
    let x_domain_log2 = (64 - generator.x_max().leading_zeros()).max(1);
    let tuples = generator.generate(n);
    let mut sketch =
        CorrelatedF0::with_seed(epsilon, 0.05, x_domain_log2, y_max, seed).expect("valid parameters");
    let ns_per_record =
        cora_stream::time_ingest(&tuples, |t| sketch.insert(t.x, t.y).expect("y in range"));
    let errors = if check_accuracy {
        let exact = exact_baseline(&tuples);
        cora_stream::relative_errors(&default_thresholds(y_max, 5), |c| {
            let truth = exact.distinct_count(c);
            if truth < 50.0 {
                None
            } else {
                Some((sketch.query(c).expect("answerable"), truth))
            }
        })
    } else {
        Vec::new()
    };
    RunReport {
        dataset: name,
        sketch: "correlated-F0".into(),
        epsilon,
        stream_len: tuples.len(),
        stored_tuples: sketch.stored_tuples(),
        space_bytes: sketch.space_bytes(),
        ns_per_record,
        relative_errors: errors,
    }
}

/// Measure the correlated `F_2`-heavy-hitters sketch on one generated
/// dataset (Section 3.3 extension, previously uncovered by any report).
///
/// The per-threshold error metric is the worst relative error of the
/// sketch's frequency estimate over the *true* heavy hitters at that
/// threshold; a true heavy hitter missing from the sketch's answer counts as
/// error 1.0. Recall failures therefore show up directly in the error
/// column.
pub fn measure_correlated_hh(
    generator: &mut dyn DatasetGenerator,
    n: usize,
    epsilon: f64,
    phi: f64,
    seed: u64,
) -> RunReport {
    let name = generator.name();
    let y_max = generator.y_max();
    let tuples = generator.generate(n);
    let mut sketch = CorrelatedHeavyHitters::with_seed(epsilon, 0.05, phi, y_max, n as u64, seed)
        .expect("valid parameters");
    let ns_per_record =
        cora_stream::time_ingest(&tuples, |t| sketch.insert(t.x, t.y).expect("y in range"));
    let exact = exact_baseline(&tuples);
    let mut errors = Vec::new();
    for c in default_thresholds(y_max, 5) {
        let truth = exact.f2_heavy_hitters(c, phi);
        if truth.is_empty() {
            continue;
        }
        let answer = sketch.query_heavy_hitters(c, phi).expect("answerable");
        let mut worst = 0.0f64;
        for (item, freq) in truth {
            match answer.iter().find(|h| h.item == item) {
                Some(h) => {
                    let err = (h.frequency - freq as f64).abs() / (freq as f64);
                    worst = worst.max(err);
                }
                None => worst = worst.max(1.0),
            }
        }
        errors.push(worst);
    }
    RunReport {
        dataset: name,
        sketch: format!("correlated-HH(phi={phi})"),
        epsilon,
        stream_len: tuples.len(),
        stored_tuples: sketch.stored_tuples(),
        space_bytes: sketch.stored_tuples() * std::mem::size_of::<i64>(),
        ns_per_record,
        relative_errors: errors,
    }
}

/// Measure the correlated rarity sketch on one generated dataset.
///
/// Rarity lives in `[0, 1]`, so the per-threshold metric is the *absolute*
/// error against the exact rarity (reported through the same
/// `relative_errors` column).
pub fn measure_correlated_rarity(
    generator: &mut dyn DatasetGenerator,
    n: usize,
    epsilon: f64,
    seed: u64,
) -> RunReport {
    let name = generator.name();
    let y_max = generator.y_max();
    let x_domain_log2 = (64 - generator.x_max().leading_zeros()).max(1);
    let tuples = generator.generate(n);
    let mut sketch = CorrelatedRarity::with_seed(epsilon, x_domain_log2, y_max, seed)
        .expect("valid parameters");
    let ns_per_record =
        cora_stream::time_ingest(&tuples, |t| sketch.insert(t.x, t.y).expect("y in range"));
    let exact = exact_baseline(&tuples);
    let errors = default_thresholds(y_max, 5)
        .iter()
        .map(|&c| (sketch.query(c).expect("answerable") - exact.rarity(c)).abs())
        .collect();
    RunReport {
        dataset: name,
        sketch: "correlated-rarity".into(),
        epsilon,
        stream_len: tuples.len(),
        stored_tuples: sketch.stored_tuples(),
        space_bytes: sketch.stored_tuples() * 2 * std::mem::size_of::<(u64, u64)>(),
        ns_per_record,
        relative_errors: errors,
    }
}

/// Measure the windowed correlated-F2 pane ring on one generated dataset,
/// timestamping tuples by arrival order.
///
/// The error column probes `(window, threshold)` slices — three window
/// widths crossed with the usual threshold grid — against an exact replay
/// over the pane-aligned span each query resolved, so the numbers isolate
/// sketch error from pane quantization (which is a semantic, not an error).
///
/// Panes are sized to hold a few hundred tuples each: pane merges cannot
/// re-refine a sealed pane's dyadic buckets, so very fine panes (tens of
/// tuples) compound into visible underestimates at low thresholds — see the
/// granularity note on `cora_stream::windowed::PaneConfig`.
pub fn measure_windowed_f2(
    generator: &mut dyn DatasetGenerator,
    n: usize,
    epsilon: f64,
    seed: u64,
) -> RunReport {
    let name = generator.name();
    let y_max = generator.y_max();
    let tuples = generator.generate(n);
    let panes = PaneConfig::new(((n as u64) / 32).max(1));
    let mut ring = windowed_f2(epsilon, 0.05, y_max, n as u64, seed, panes)
        .expect("valid parameters");
    let mut tick = 0u64;
    let ns_per_record = cora_stream::time_ingest(&tuples, |t| {
        ring.observe(t.x, t.y, tick).expect("y in range");
        tick += 1;
    });
    let now = ring.t_latest().expect("non-empty stream");
    let mut errors = Vec::new();
    for window in [n as u64 / 8, n as u64 / 3, n as u64] {
        let Some((lo, hi)) = ring.resolved_window(now, window).expect("retained") else {
            continue;
        };
        for &c in &default_thresholds(y_max, 5) {
            let mut freq = std::collections::HashMap::new();
            for (i, t) in tuples.iter().enumerate() {
                let tick = i as u64;
                if tick >= lo && tick < hi && t.y <= c {
                    *freq.entry(t.x).or_insert(0u64) += 1;
                }
            }
            let truth: f64 = freq.values().map(|&f| (f as f64) * (f as f64)).sum();
            if truth == 0.0 {
                continue;
            }
            let est = ring.query_sliding(window, c).expect("answerable");
            errors.push((est - truth).abs() / truth);
        }
    }
    RunReport {
        dataset: name,
        sketch: "windowed-F2".into(),
        epsilon,
        stream_len: tuples.len(),
        stored_tuples: ring.stored_tuples(),
        space_bytes: ring.stored_tuples() * std::mem::size_of::<(u64, i64)>(),
        ns_per_record,
        relative_errors: errors,
    }
}

/// Measure the exact (linear-storage) baseline on one generated dataset.
pub fn measure_exact_baseline(generator: &mut dyn DatasetGenerator, n: usize) -> RunReport {
    let name = generator.name();
    let tuples = generator.generate(n);
    let mut exact = ExactCorrelated::new();
    let ns_per_record = cora_stream::time_ingest(&tuples, |t| exact.insert(t.x, t.y));
    RunReport {
        dataset: name,
        sketch: "exact-baseline".into(),
        epsilon: 0.0,
        stream_len: tuples.len(),
        stored_tuples: exact.stored_tuples(),
        space_bytes: exact.stored_tuples() * std::mem::size_of::<(u64, u64, i64)>(),
        ns_per_record,
        relative_errors: Vec::new(),
    }
}

fn exact_baseline(tuples: &[StreamTuple]) -> ExactCorrelated {
    let mut exact = ExactCorrelated::new();
    for t in tuples {
        exact.update(t.x, t.y, t.weight);
    }
    exact
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_stream::UniformGenerator;

    #[test]
    fn options_defaults_and_parsing_fallbacks() {
        let o = ExperimentOptions::default();
        assert_eq!(o.scale, 2_000_000);
        assert!(!o.json);
        assert!(o.epsilon.is_none());
    }

    #[test]
    fn f2_measurement_produces_consistent_report() {
        let mut generator = UniformGenerator::new(10_000, 100_000, 3);
        let report = measure_correlated_f2(&mut generator, 20_000, 0.25, 7, true);
        assert_eq!(report.stream_len, 20_000);
        assert!(report.stored_tuples > 0);
        assert!(report.ns_per_record > 0.0);
        assert!(report.max_relative_error().unwrap() < 0.3);
    }

    #[test]
    fn f0_measurement_produces_consistent_report() {
        let mut generator = UniformGenerator::new(100_000, 100_000, 4);
        let report = measure_correlated_f0(&mut generator, 20_000, 0.2, 7, true);
        assert_eq!(report.sketch, "correlated-F0");
        assert!(report.stored_tuples > 0);
        assert!(report.max_relative_error().unwrap() < 0.6);
    }

    #[test]
    fn hh_measurement_produces_consistent_report() {
        let mut generator = cora_stream::ZipfGenerator::new(1.2, 5_000, 100_000, 3);
        let report = measure_correlated_hh(&mut generator, 15_000, 0.2, 0.05, 7);
        assert_eq!(report.stream_len, 15_000);
        assert!(report.stored_tuples > 0);
        // A skewed stream has true heavy hitters at some threshold, and the
        // sketch must track their frequencies.
        let worst = report.max_relative_error().expect("thresholds probed");
        assert!(worst < 0.5, "worst HH frequency error {worst}");
    }

    #[test]
    fn rarity_measurement_produces_consistent_report() {
        let mut generator = UniformGenerator::new(50_000, 100_000, 4);
        let report = measure_correlated_rarity(&mut generator, 15_000, 0.2, 7);
        assert_eq!(report.sketch, "correlated-rarity");
        assert!(report.stored_tuples > 0);
        let worst = report.max_relative_error().expect("thresholds probed");
        assert!(worst < 0.2, "worst rarity absolute error {worst}");
    }

    #[test]
    fn windowed_measurement_produces_consistent_report() {
        let mut generator = UniformGenerator::new(10_000, 100_000, 3);
        let report = measure_windowed_f2(&mut generator, 20_000, 0.25, 7);
        assert_eq!(report.sketch, "windowed-F2");
        assert_eq!(report.stream_len, 20_000);
        assert!(report.stored_tuples > 0);
        assert!(!report.relative_errors.is_empty());
        assert!(report.max_relative_error().unwrap() < 0.35);
    }

    #[test]
    fn exact_baseline_is_linear() {
        let mut generator = UniformGenerator::new(1_000, 10_000, 5);
        let report = measure_exact_baseline(&mut generator, 5_000);
        assert_eq!(report.stored_tuples, 5_000);
    }
}
