//! Experiment E5 (Figure 6): space of the correlated F0 sketch versus ε, on
//! the Ethernet, Uniform, Zipf(1) and Zipf(2) datasets.
//!
//! `cargo run -p cora-bench --release --bin fig6_f0_space_vs_eps -- [--scale N] [--json]`

use cora_bench::{emit, measure_correlated_f0, ExperimentOptions};
use cora_stream::f0_experiment_generators;

fn main() {
    let opts = ExperimentOptions::from_args();
    let n = opts.scale.min(2_000_000); // the paper uses 2M tuples for F0
    println!("# Figure 6: correlated-F0 sketch space vs epsilon (stream size {n})");
    let mut reports = Vec::new();
    for eps in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3] {
        for generator in &mut f0_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f0(generator.as_mut(), n, eps, opts.seed, false));
        }
    }
    emit(&reports, opts.json);
}
