//! Experiment E1 (Figure 2 of the paper): space of the correlated F2 sketch
//! versus the relative error ε, on the Uniform, Zipf(1) and Zipf(2) datasets.
//!
//! `cargo run -p cora-bench --release --bin fig2_f2_space_vs_eps -- [--scale N] [--json]`

use cora_bench::{emit, measure_correlated_f2, ExperimentOptions};
use cora_stream::f2_experiment_generators;

fn main() {
    let opts = ExperimentOptions::from_args();
    let n = opts.scale;
    println!("# Figure 2: correlated-F2 sketch space vs epsilon (stream size {n})");
    let mut reports = Vec::new();
    for eps in [0.14, 0.16, 0.18, 0.20, 0.22, 0.25] {
        for generator in &mut f2_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f2(generator.as_mut(), n, eps, opts.seed, false));
        }
    }
    emit(&reports, opts.json);
}
