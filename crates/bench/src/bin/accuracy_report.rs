//! Experiment E8: measured relative error of the correlated F2 and F0 sketches
//! against the exact linear-storage baseline, validating the paper's claim
//! that "the relative error of the algorithm was almost always within the
//! desired approximation error ε" — plus a Section-3.3 extension section
//! covering correlated heavy hitters (worst frequency error over the true
//! heavy set; a missed heavy hitter counts as 1.0) and correlated rarity
//! (absolute error; rarity lives in [0, 1]).
//!
//! `cargo run -p cora-bench --release --bin accuracy_report -- [--scale N]`

use cora_bench::{
    emit, measure_correlated_f0, measure_correlated_f2, measure_correlated_hh,
    measure_correlated_rarity, measure_windowed_f2, ExperimentOptions,
};
use cora_stream::{f0_experiment_generators, f2_experiment_generators};

fn main() {
    let opts = ExperimentOptions::from_args();
    // Accuracy probing builds the exact baseline, so cap the default scale.
    let n = opts.scale.min(500_000);
    println!("# Accuracy report: measured relative error vs requested epsilon (stream size {n})");
    let mut reports = Vec::new();
    for eps in [0.15, 0.2, 0.25] {
        for generator in &mut f2_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f2(generator.as_mut(), n, eps, opts.seed, true));
        }
        for generator in &mut f0_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f0(generator.as_mut(), n, eps, opts.seed, true));
        }
    }
    emit(&reports, opts.json);
    let worst = reports
        .iter()
        .filter_map(|r| r.max_relative_error())
        .fold(0.0f64, f64::max);
    println!("# worst measured relative error across all runs: {worst:.4}");

    // Section 3.3 extensions: heavy hitters and rarity, previously covered
    // only by property tests, now get the same Section-5-style treatment.
    println!();
    println!("# Extensions (Section 3.3): correlated heavy hitters and rarity");
    println!("#   HH error column  = worst relative frequency error over the true heavy set (missed item = 1.0)");
    println!("#   rarity error col = absolute error against exact rarity");
    let mut ext_reports = Vec::new();
    let eps = 0.2;
    for phi in [0.02, 0.05] {
        for generator in &mut f2_experiment_generators(opts.seed) {
            ext_reports.push(measure_correlated_hh(generator.as_mut(), n, eps, phi, opts.seed));
        }
    }
    for generator in &mut f0_experiment_generators(opts.seed) {
        ext_reports.push(measure_correlated_rarity(generator.as_mut(), n, eps, opts.seed));
    }
    emit(&ext_reports, opts.json);
    let worst_ext = ext_reports
        .iter()
        .filter_map(|r| r.max_relative_error())
        .fold(0.0f64, f64::max);
    println!("# worst extension error across all runs: {worst_ext:.4}");

    // Windowed pane-ring F2: two-dimensional (time window, y-threshold)
    // slices against an exact replay of each query's resolved span.
    println!();
    println!("# Windowed (pane ring): window-vs-oracle relative error");
    println!("#   three window widths (n/8, n/3, n) crossed with the threshold grid;");
    println!("#   truth is an exact replay of the pane-aligned resolved span");
    let mut window_reports = Vec::new();
    for eps in [0.15, 0.2, 0.25] {
        for generator in &mut f2_experiment_generators(opts.seed) {
            window_reports.push(measure_windowed_f2(generator.as_mut(), n, eps, opts.seed));
        }
    }
    emit(&window_reports, opts.json);
    let worst_window = window_reports
        .iter()
        .filter_map(|r| r.max_relative_error())
        .fold(0.0f64, f64::max);
    println!("# worst windowed error across all runs: {worst_window:.4}");
}
