//! Experiment E8: measured relative error of the correlated F2 and F0 sketches
//! against the exact linear-storage baseline, validating the paper's claim
//! that "the relative error of the algorithm was almost always within the
//! desired approximation error ε".
//!
//! `cargo run -p cora-bench --release --bin accuracy_report -- [--scale N]`

use cora_bench::{emit, measure_correlated_f0, measure_correlated_f2, ExperimentOptions};
use cora_stream::{f0_experiment_generators, f2_experiment_generators};

fn main() {
    let opts = ExperimentOptions::from_args();
    // Accuracy probing builds the exact baseline, so cap the default scale.
    let n = opts.scale.min(500_000);
    println!("# Accuracy report: measured relative error vs requested epsilon (stream size {n})");
    let mut reports = Vec::new();
    for eps in [0.15, 0.2, 0.25] {
        for generator in &mut f2_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f2(generator.as_mut(), n, eps, opts.seed, true));
        }
        for generator in &mut f0_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f0(generator.as_mut(), n, eps, opts.seed, true));
        }
    }
    emit(&reports, opts.json);
    let worst = reports
        .iter()
        .filter_map(|r| r.max_relative_error())
        .fold(0.0f64, f64::max);
    println!("# worst measured relative error across all runs: {worst:.4}");
}
