//! Experiment E7: per-record processing cost of the correlated sketches and
//! the exact baseline (the paper's "fast per-record processing time" claim).
//!
//! `cargo run -p cora-bench --release --bin timing_report -- [--scale N]`

use cora_bench::{
    emit, measure_correlated_f0, measure_correlated_f2, measure_exact_baseline, ExperimentOptions,
};
use cora_stream::{f0_experiment_generators, f2_experiment_generators};

fn main() {
    let opts = ExperimentOptions::from_args();
    let n = opts.scale.min(1_000_000);
    println!("# Timing report: amortised nanoseconds per record (stream size {n})");
    let mut reports = Vec::new();
    for generator in &mut f2_experiment_generators(opts.seed) {
        reports.push(measure_correlated_f2(generator.as_mut(), n, 0.2, opts.seed, false));
        reports.push(measure_exact_baseline(generator.as_mut(), n));
    }
    for generator in &mut f0_experiment_generators(opts.seed) {
        reports.push(measure_correlated_f0(generator.as_mut(), n, 0.1, opts.seed, false));
    }
    emit(&reports, opts.json);
}
