//! Experiments E2–E4 (Figures 3, 4 and 5): space of the correlated F2 sketch
//! versus the stream size, for a fixed ε (0.15, 0.20 or 0.25).
//!
//! In addition to the per-size table, the binary reports the **crossover
//! point** per dataset: the stream length past which the sketch stores fewer
//! tuples than the exact linear-storage baseline (which stores one tuple per
//! stream element). At small scales the sketch *loses* — it fronts
//! `O(α · levels)` tuples of fixed overhead — and only wins past millions of
//! tuples, exactly as in the paper; this output makes that tradeoff visible
//! without running at paper scale. The sketch's footprint is essentially
//! flat in `n`, so its measured size at the largest configured scale is the
//! crossover estimate.
//!
//! `cargo run -p cora-bench --release --bin fig3_5_f2_space_vs_n -- --eps 0.15 [--scale N]`

use cora_bench::{emit, measure_correlated_f2, ExperimentOptions};
use cora_stream::f2_experiment_generators;

fn main() {
    let opts = ExperimentOptions::from_args();
    let eps = opts.epsilon.unwrap_or(0.20);
    let max_n = opts.scale;
    println!("# Figures 3-5: correlated-F2 sketch space vs stream size (epsilon {eps})");
    let sizes: Vec<usize> = (1..=5).map(|i| max_n / 5 * i).collect();
    let mut reports = Vec::new();
    for &n in &sizes {
        for generator in &mut f2_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f2(generator.as_mut(), n, eps, opts.seed, false));
        }
    }
    emit(&reports, opts.json);

    // Crossover report: exact linear storage holds one tuple per stream
    // element, so the sketch starts winning once the stream outgrows the
    // sketch's (nearly n-independent) footprint.
    println!();
    println!("# Crossover vs exact linear storage (exact stores n tuples for an n-tuple stream):");
    for generator in &f2_experiment_generators(opts.seed) {
        let name = generator.name();
        let at_largest = reports
            .iter()
            .filter(|r| r.dataset == name)
            .max_by_key(|r| r.stream_len);
        let Some(report) = at_largest else { continue };
        let sketch_tuples = report.stored_tuples;
        if sketch_tuples < report.stream_len {
            println!(
                "#   {name}: sketch already wins at n = {} ({} stored vs {} exact)",
                report.stream_len, sketch_tuples, report.stream_len
            );
        } else {
            println!(
                "#   {name}: sketch wins past n ~ {sketch_tuples} tuples \
                 (stores {sketch_tuples} at n = {}; exact stores n)",
                report.stream_len
            );
        }
    }
}
