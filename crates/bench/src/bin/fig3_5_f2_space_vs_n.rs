//! Experiments E2–E4 (Figures 3, 4 and 5): space of the correlated F2 sketch
//! versus the stream size, for a fixed ε (0.15, 0.20 or 0.25).
//!
//! `cargo run -p cora-bench --release --bin fig3_5_f2_space_vs_n -- --eps 0.15 [--scale N]`

use cora_bench::{emit, measure_correlated_f2, ExperimentOptions};
use cora_stream::f2_experiment_generators;

fn main() {
    let opts = ExperimentOptions::from_args();
    let eps = opts.epsilon.unwrap_or(0.20);
    let max_n = opts.scale;
    println!("# Figures 3-5: correlated-F2 sketch space vs stream size (epsilon {eps})");
    let sizes: Vec<usize> = (1..=5).map(|i| max_n / 5 * i).collect();
    let mut reports = Vec::new();
    for &n in &sizes {
        for generator in &mut f2_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f2(generator.as_mut(), n, eps, opts.seed, false));
        }
    }
    emit(&reports, opts.json);
}
