//! Compare a fresh criterion-shim JSONL summary against a committed baseline
//! and fail (exit code 1) on regressions beyond a tolerance.
//!
//! Used by CI as a performance gate on the correlated insert paths:
//!
//! ```text
//! cargo run -p cora-bench --release --bin bench_diff -- \
//!     BENCH_BASELINE.json bench-summary.jsonl \
//!     --filter update_throughput/correlated_f2 \
//!     --filter update_throughput/correlated_f0 --max-regression 0.25
//! ```
//!
//! Each input line is one `{"bench":"...","median_ns":...}` object as written
//! by the criterion shim when `CRITERION_JSON` is set. `--filter` may be
//! passed multiple times; a bench participates in the gate when its name
//! contains **any** of the filter substrings, and everything else is
//! reported informationally. Benches present in only one file are reported
//! but never fail the gate (new benches appear, old ones get renamed).
//!
//! When both files carry a `min_ns` for a bench, the fastest samples are
//! printed alongside the medians. The gate itself always compares medians;
//! the min column exists because RTT-shaped benches (`serve_latency/*`)
//! have medians dominated by scheduler jitter while their min tracks the
//! actual protocol cost.
//!
//! Absolute nanoseconds are machine-dependent, so comparing a committed
//! baseline against a different runner class would gate on hardware, not
//! code. `--anchor SUBSTR` fixes that: each gated bench is normalized by the
//! anchor bench's median *from the same file*, so the gate compares the
//! ratio `gated / anchor` across files and machine speed cancels to first
//! order. Pick an anchor whose code rarely changes (CI uses the exact
//! linear-storage insert baseline); if a PR deliberately speeds the anchor
//! up, refresh `BENCH_BASELINE.json` in the same PR.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The value part after `"key":` in a flat JSON object line, with any
/// whitespace around the colon skipped (the shim writes compact JSON, but
/// hand-edited or pretty-printed baselines should parse too).
fn json_value_start<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut rest = &line[line.find(&needle)? + needle.len()..];
    rest = rest.trim_start();
    rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

/// Extract the string value of `"key": "..."` from a flat JSON object line.
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let rest = json_value_start(line, key)?.strip_prefix('"')?;
    // Names written by the shim escape only '"' and '\'; undo that here.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extract the numeric value of `"key": 123` from a flat JSON object line.
fn json_number_field(line: &str, key: &str) -> Option<f64> {
    let rest = json_value_start(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One bench's summarized timings from a shim JSONL line.
#[derive(Debug, Clone, Copy)]
struct BenchStat {
    median_ns: f64,
    /// Fastest sample, when the line carries one. The gate always compares
    /// medians, but for RTT-shaped benches (`serve_latency/*`) the median
    /// soaks up scheduler jitter while the min tracks the protocol cost, so
    /// it is reported alongside for eyeballing.
    min_ns: Option<f64>,
}

/// Parse a criterion-shim JSONL file into `bench name -> stats`. The shim
/// appends, so a name can repeat across runs; the **last** occurrence wins
/// (most recent run).
fn parse_summary(path: &str) -> Result<BTreeMap<String, BenchStat>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(bench), Some(median_ns)) = (
            json_string_field(line, "bench"),
            json_number_field(line, "median_ns"),
        ) else {
            return Err(format!("malformed summary line in {path}: {line}"));
        };
        let min_ns = json_number_field(line, "min_ns");
        out.insert(bench, BenchStat { median_ns, min_ns });
    }
    Ok(out)
}

struct Options {
    baseline: String,
    fresh: String,
    /// Gate substrings (a bench is gated when it matches any of them).
    filters: Vec<String>,
    max_regression: f64,
    anchor: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut filters: Vec<String> = Vec::new();
    let mut max_regression = 0.25f64;
    let mut anchor = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--filter" if i + 1 < args.len() => {
                filters.push(args[i + 1].clone());
                i += 1;
            }
            "--max-regression" if i + 1 < args.len() => {
                max_regression = args[i + 1]
                    .parse()
                    .map_err(|e| format!("bad --max-regression: {e}"))?;
                i += 1;
            }
            "--anchor" if i + 1 < args.len() => {
                anchor = Some(args[i + 1].clone());
                i += 1;
            }
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    if positional.len() != 2 {
        return Err("usage: bench_diff <baseline.jsonl> <fresh.jsonl> [--filter SUBSTR]... [--max-regression FRAC] [--anchor SUBSTR]".into());
    }
    if filters.is_empty() {
        filters.push(String::from("update_throughput/correlated_f2"));
    }
    Ok(Options {
        baseline: positional.remove(0),
        fresh: positional.remove(0),
        filters,
        max_regression,
        anchor,
    })
}

/// The median of the unique bench matching `needle` in `summary`, for anchor
/// normalization. Errors when the match is missing or ambiguous.
fn anchor_median(
    summary: &BTreeMap<String, BenchStat>,
    needle: &str,
    file: &str,
) -> Result<f64, String> {
    let matches: Vec<(&String, &BenchStat)> =
        summary.iter().filter(|(name, _)| name.contains(needle)).collect();
    match matches.as_slice() {
        [(_, stat)] if stat.median_ns > 0.0 => Ok(stat.median_ns),
        [] => Err(format!("anchor '{needle}' not found in {file}")),
        [(_, _)] => Err(format!("anchor '{needle}' has a non-positive median in {file}")),
        _ => Err(format!(
            "anchor '{needle}' is ambiguous in {file}: {} matches",
            matches.len()
        )),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, fresh) = match (parse_summary(&opts.baseline), parse_summary(&opts.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    // With an anchor, gated regressions are measured on the machine-
    // normalized ratio `median / anchor_median` within each file.
    let norms = match &opts.anchor {
        Some(needle) => {
            let base = anchor_median(&baseline, needle, &opts.baseline);
            let fresh_norm = anchor_median(&fresh, needle, &opts.fresh);
            match (base, fresh_norm) {
                (Ok(b), Ok(f)) => Some((b, f)),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench_diff: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    println!(
        "# bench_diff: {} vs {} (gate: '{}' > +{:.0}%{})",
        opts.baseline,
        opts.fresh,
        opts.filters.join("' | '"),
        opts.max_regression * 100.0,
        match &opts.anchor {
            Some(a) => format!(", normalized by anchor '{a}'"),
            None => String::new(),
        }
    );
    let mut failures = 0usize;
    let mut gated = 0usize;
    // Gated benches per filter: every filter must match at least one bench
    // present in both files, or the gate for that group is silently vacuous.
    let mut gated_per_filter = vec![0usize; opts.filters.len()];
    for (bench, &fresh_stat) in &fresh {
        let fresh_ns = fresh_stat.median_ns;
        let Some(&base_stat) = baseline.get(bench) else {
            println!("{bench:<60} NEW     {fresh_ns:>14.0} ns");
            continue;
        };
        let base_ns = base_stat.median_ns;
        let mut in_gate = false;
        for (slot, filter) in gated_per_filter.iter_mut().zip(&opts.filters) {
            if bench.contains(filter.as_str()) {
                *slot += 1;
                in_gate = true;
            }
        }
        let delta = match (in_gate, norms) {
            (true, Some((base_anchor, fresh_anchor))) => {
                (fresh_ns / fresh_anchor) / (base_ns / base_anchor) - 1.0
            }
            _ => (fresh_ns - base_ns) / base_ns,
        };
        let mut marker = if in_gate { "gate" } else { "    " }.to_string();
        if in_gate {
            gated += 1;
            if delta > opts.max_regression {
                failures += 1;
                marker = "FAIL".to_string();
            }
        }
        // Medians drive the gate; mins ride along so jitter-dominated rows
        // (RTT benches) can be judged by their floor instead of their median.
        let min_col = match (base_stat.min_ns, fresh_stat.min_ns) {
            (Some(b), Some(f)) => format!("  [min {b:>12.0} -> {f:>12.0} ns]"),
            _ => String::new(),
        };
        println!(
            "{bench:<60} {marker}  {base_ns:>14.0} -> {fresh_ns:>14.0} ns  ({:+.1}%){min_col}",
            delta * 100.0
        );
    }
    for bench in baseline.keys() {
        if !fresh.contains_key(bench) {
            println!("{bench:<60} GONE");
        }
    }
    let mut vacuous = false;
    for (filter, &count) in opts.filters.iter().zip(&gated_per_filter) {
        if count == 0 {
            eprintln!(
                "bench_diff: no bench matching '{filter}' present in both files — \
                 that gate group is vacuous (renamed or removed bench?)"
            );
            vacuous = true;
        }
    }
    if vacuous {
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        eprintln!(
            "bench_diff: {failures} bench(es) regressed more than {:.0}%",
            opts.max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("# gate passed: {gated} bench(es) within tolerance");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_shim_lines() {
        let line = r#"{"bench":"update_throughput/correlated_f2/uniform","median_ns":32500000,"min_ns":31000000,"max_ns":40000000,"throughput_per_s":615384.6}"#;
        assert_eq!(
            json_string_field(line, "bench").unwrap(),
            "update_throughput/correlated_f2/uniform"
        );
        assert_eq!(json_number_field(line, "median_ns").unwrap(), 32_500_000.0);
        assert_eq!(json_number_field(line, "min_ns").unwrap(), 31_000_000.0);
        assert_eq!(json_number_field(line, "throughput_per_s").unwrap(), 615_384.6);
        // Escaped quotes/backslashes round-trip.
        let escaped = r#"{"bench":"a\"b\\c","median_ns":1}"#;
        assert_eq!(json_string_field(escaped, "bench").unwrap(), "a\"b\\c");
    }

    #[test]
    fn anchor_normalization_cancels_machine_speed() {
        // A "fresh" machine that is uniformly 2x slower: raw deltas are
        // +100%, but the anchored ratio is unchanged.
        let stat = |median_ns: f64| BenchStat { median_ns, min_ns: None };
        let base: BTreeMap<String, BenchStat> = [
            ("update_throughput/correlated_f2/uniform".to_string(), stat(30.0e6)),
            ("update_throughput/exact_baseline/uniform".to_string(), stat(4.0e6)),
        ]
        .into_iter()
        .collect();
        let anchor = anchor_median(&base, "exact_baseline/uniform", "base").unwrap();
        assert_eq!(anchor, 4.0e6);
        let slow_anchor = anchor_median(
            &base
                .iter()
                .map(|(k, v)| (k.clone(), stat(v.median_ns * 2.0)))
                .collect(),
            "exact_baseline/uniform",
            "fresh",
        )
        .unwrap();
        let ratio_delta = ((30.0e6 * 2.0) / slow_anchor) / (30.0e6 / anchor) - 1.0;
        assert!(ratio_delta.abs() < 1e-12);
        // Missing and ambiguous anchors are rejected.
        assert!(anchor_median(&base, "nope", "base").is_err());
        assert!(anchor_median(&base, "update_throughput", "base").is_err());
    }

    #[test]
    fn last_occurrence_wins_when_file_was_appended_to() {
        let dir = std::env::temp_dir().join(format!("bench_diff_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("appended.jsonl");
        std::fs::write(
            &path,
            "{\"bench\":\"g/a\",\"median_ns\":100}\n{\"bench\":\"g/a\",\"median_ns\":200,\"min_ns\":150}\n",
        )
        .unwrap();
        let parsed = parse_summary(path.to_str().unwrap()).unwrap();
        assert_eq!(parsed["g/a"].median_ns, 200.0);
        assert_eq!(parsed["g/a"].min_ns, Some(150.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
