//! Experiment E6 (Figure 7): space of the correlated F0 sketch versus the
//! stream size, ε = 0.1.
//!
//! `cargo run -p cora-bench --release --bin fig7_f0_space_vs_n -- [--scale N] [--json]`

use cora_bench::{emit, measure_correlated_f0, ExperimentOptions};
use cora_stream::f0_experiment_generators;

fn main() {
    let opts = ExperimentOptions::from_args();
    let eps = opts.epsilon.unwrap_or(0.1);
    let max_n = opts.scale;
    println!("# Figure 7: correlated-F0 sketch space vs stream size (epsilon {eps})");
    let sizes: Vec<usize> = (1..=5).map(|i| max_n / 5 * i).collect();
    let mut reports = Vec::new();
    for &n in &sizes {
        for generator in &mut f0_experiment_generators(opts.seed) {
            reports.push(measure_correlated_f0(generator.as_mut(), n, eps, opts.seed, false));
        }
    }
    emit(&reports, opts.json);
}
