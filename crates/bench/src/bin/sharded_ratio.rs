//! Report the sharded-ingest scale-out ratio from a criterion-shim JSONL
//! summary: for each workload, `shardsN / single_core` speedup computed from
//! the recorded medians of the `sharded_throughput` bench group.
//!
//! ```text
//! cargo run -p cora-bench --release --bin sharded_ratio -- bench-summary.jsonl
//! ```
//!
//! CI runs this after the bench smoke step on its multi-core runners and
//! surfaces the first *real* multi-core numbers for the ROADMAP's "sharded
//! speedup" item (a single-core container can only demonstrate parity, so
//! the core count is printed alongside the ratios). Informational: the exit
//! code only signals missing input, never a slow ratio — scale-out targets
//! are tracked in ROADMAP.md, not gated per-commit.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parse the shim's flat JSONL into `bench name -> median_ns` (last
/// occurrence wins, matching bench_diff's behavior on appended files).
fn parse_summary(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let Some(bench) = field(line, "\"bench\":\"").map(|rest| {
            rest.split('"').next().unwrap_or_default().to_string()
        }) else {
            return Err(format!("malformed summary line in {path}: {line}"));
        };
        let Some(median) = field(line, "\"median_ns\":")
            .and_then(|rest| {
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
                    .unwrap_or(rest.len());
                rest[..end].parse::<f64>().ok()
            })
        else {
            return Err(format!("missing median_ns in {path}: {line}"));
        };
        out.insert(bench, median);
    }
    Ok(out)
}

/// The text following `needle` in `line`, if present.
fn field<'a>(line: &'a str, needle: &str) -> Option<&'a str> {
    line.find(needle).map(|i| &line[i + needle.len()..])
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: sharded_ratio <summary.jsonl>");
        return ExitCode::FAILURE;
    };
    let summary = match parse_summary(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sharded_ratio: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("# sharded_throughput scale-out ratios from {path} ({cores} core(s) visible)");
    let mut printed = 0usize;
    for (bench, &ns) in &summary {
        let Some(rest) = bench.strip_prefix("sharded_throughput/shards") else {
            continue;
        };
        let Some((shards, workload)) = rest.split_once('/') else {
            continue;
        };
        let single = format!("sharded_throughput/single_core/{workload}");
        let Some(&single_ns) = summary.get(&single) else {
            continue;
        };
        if ns <= 0.0 {
            continue;
        }
        println!(
            "shards{shards:<2} vs single_core ({workload:<8}): {:>5.2}x  ({single_ns:>13.0} ns -> {ns:>13.0} ns)",
            single_ns / ns
        );
        printed += 1;
    }
    if printed == 0 {
        eprintln!(
            "sharded_ratio: no sharded_throughput shardsN/single_core pairs found in {path} — \
             run `cargo bench -p cora-bench` with CRITERION_JSON set first"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
