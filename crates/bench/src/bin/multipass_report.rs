//! Experiment E10: the turnstile-model trade-off — the MULTIPASS algorithm's
//! pass count and space versus the exact baseline, on streams with deletions.
//!
//! `cargo run -p cora-bench --release --bin multipass_report -- [--scale N]`

use cora_bench::ExperimentOptions;
use cora_core::ExactCorrelated;
use cora_stream::{multipass_f2, StoredStream, StreamTuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = ExperimentOptions::from_args();
    let n = opts.scale.min(500_000);
    let y_max = (1u64 << 16) - 1;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut tuples = Vec::with_capacity(n + n / 2);
    for _ in 0..n {
        tuples.push(StreamTuple::weighted(
            rng.gen_range(0..5_000u64),
            rng.gen_range(0..=y_max),
            1,
        ));
    }
    for i in (0..n).step_by(2) {
        let t = tuples[i];
        tuples.push(StreamTuple::weighted(t.x, t.y, -1));
    }
    let stream = StoredStream::new(tuples);

    println!("# Multipass report: turnstile stream of {} tuples (half later deleted)", stream.len());
    println!("epsilon\tpasses\tladder_positions\ttau\testimate\texact\tratio");
    for eps in [0.15, 0.25, 0.4] {
        let estimator = multipass_f2(&stream, eps, 0.05, y_max, opts.seed);
        let mut exact = ExactCorrelated::new();
        for t in stream.tuples() {
            exact.update(t.x, t.y, t.weight);
        }
        for tau in [y_max / 4, y_max] {
            let truth = exact.frequency_moment(2, tau);
            let est = estimator.query(tau);
            println!(
                "{eps}\t{}\t{}\t{tau}\t{est:.0}\t{truth:.0}\t{:.3}",
                estimator.passes_used(),
                estimator.positions().len(),
                est / truth.max(1.0)
            );
        }
    }
    println!("# single-pass sketches reject deletions (see the turnstile_lower_bound example);");
    println!("# MULTIPASS pays O(log y_max) passes instead of linear space.");
}
