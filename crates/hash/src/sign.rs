//! 4-wise independent ±1 hashing for AMS-style second-moment estimation.
//!
//! The AMS estimator `(Σ_x s(x) f_x)²` is unbiased for `F_2` and has variance
//! `≤ 2 F_2²` exactly when the sign function `s` is drawn from a 4-wise
//! independent family. We realise the family as the low bit of a random
//! degree-3 polynomial over GF(2^61 − 1).

use crate::polynomial::PolynomialHash;
use crate::traits::SignHash;

/// A ±1-valued 4-wise independent hash function.
#[derive(Debug, Clone)]
pub struct FourWiseSignHash {
    poly: PolynomialHash,
}

impl FourWiseSignHash {
    /// Domain-separation constant so a sign hash and a bucket hash built from
    /// the same user seed are still independent functions.
    const DOMAIN: u64 = 0x5160_0D5E_ED00_51C7;

    /// Create a new sign hash from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            poly: PolynomialHash::new(4, seed ^ Self::DOMAIN),
        }
    }

    /// Returns the underlying polynomial's independence level (always 4).
    pub fn independence(&self) -> usize {
        self.poly.independence()
    }
}

impl SignHash for FourWiseSignHash {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        // Use a middle bit of the field element; the low bit of x mod p is
        // slightly biased because p is odd, but any single fixed bit of a
        // uniform value in [0, p) has bias at most 1/p which is negligible.
        if (self.poly.eval_mod(key) >> 30) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_minus_one() {
        let s = FourWiseSignHash::new(1);
        for k in 0..1000u64 {
            let v = s.sign(k);
            assert!(v == 1 || v == -1);
        }
    }

    #[test]
    fn deterministic() {
        let a = FourWiseSignHash::new(9);
        let b = FourWiseSignHash::new(9);
        for k in 0..1000u64 {
            assert_eq!(a.sign(k), b.sign(k));
        }
    }

    #[test]
    fn roughly_balanced() {
        let s = FourWiseSignHash::new(2);
        let n = 100_000u64;
        let sum: i64 = (0..n).map(|k| s.sign(k)).sum();
        // Expected |sum| is O(sqrt(n)) ≈ 316; allow a generous 10σ.
        assert!(
            sum.abs() < 3_500,
            "sign hash badly unbalanced: sum = {sum} over {n} keys"
        );
    }

    #[test]
    fn pairwise_products_roughly_balanced() {
        // For 4-wise independence, E[s(a)s(b)] = 0 for a != b. Check an
        // empirical average over many pairs.
        let s = FourWiseSignHash::new(3);
        let n = 2_000u64;
        let signs: Vec<i64> = (0..n).map(|k| s.sign(k)).collect();
        let mut total: i64 = 0;
        let mut pairs: i64 = 0;
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                total += signs[i] * signs[j];
                pairs += 1;
            }
        }
        let avg = total as f64 / pairs as f64;
        assert!(avg.abs() < 0.02, "pairwise correlation too high: {avg}");
    }

    #[test]
    fn independence_is_four() {
        assert_eq!(FourWiseSignHash::new(0).independence(), 4);
    }
}
