//! Scalar bit-mixing finalizers.
//!
//! These are *not* limited-independence families; they are deterministic
//! bijections on `u64` used to (a) derive well-spread per-row seeds from a
//! single user seed and (b) pre-condition keys before table lookups in
//! tabulation hashing. Both uses only need good avalanche behaviour, not
//! independence, so a strong finalizer (SplitMix64 / Murmur3's `fmix64`) is the
//! right tool.

/// The SplitMix64 output function. A bijection on `u64` with full avalanche.
///
/// Used to derive sub-seeds: `splitmix64(seed + GOLDEN * i)` yields a stream of
/// well-decorrelated 64-bit values from one master seed.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Murmur3's 64-bit finalizer (`fmix64`). A bijection on `u64`.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// Derive the `i`-th sub-seed from a master seed.
///
/// All structures in the workspace that need several independent hash
/// functions (rows of a CountSketch, levels of a sampler, ...) derive their
/// per-row seeds through this function so that a single `u64` seed pins down
/// the entire experiment.
#[inline]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // The golden-ratio increment guarantees distinct inputs for distinct
    // indices; splitmix64 then decorrelates them.
    splitmix64(master ^ splitmix64(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A [`std::hash::Hasher`] backed by [`fmix64`], for hash maps keyed by
/// integer item identifiers.
///
/// The std `HashMap` default (SipHash 1-3) is keyed and DoS-resistant but
/// costs tens of nanoseconds per `u64`; the sketches in this workspace hash
/// item identifiers millions of times on their insert hot paths and hold no
/// attacker-controlled keys worth protecting, so a strong single-round mixer
/// is the right trade. Construct maps with [`Fmix64Build`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Fmix64Hasher {
    state: u64,
}

impl std::hash::Hasher for Fmix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (composite keys): fold 8-byte chunks through fmix64.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = fmix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = fmix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`Fmix64Hasher`]; use as the `S` parameter of
/// `HashMap`/`HashSet` (e.g. `HashMap::with_hasher(Fmix64Build)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fmix64Build;

impl std::hash::BuildHasher for Fmix64Build {
    type Hasher = Fmix64Hasher;

    #[inline]
    fn build_hasher(&self) -> Fmix64Hasher {
        Fmix64Hasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(12345), splitmix64(12345));
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of the reference SplitMix64 generator seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fmix_known_behaviour() {
        // fmix64 is a bijection with fmix64(0) == 0; nearby inputs must
        // diverge completely.
        assert_eq!(fmix64(0), 0);
        assert_ne!(fmix64(1), 1);
        let a = fmix64(1);
        let b = fmix64(2);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn derive_seed_produces_distinct_streams() {
        let mut seen = HashSet::new();
        for master in 0..8u64 {
            for i in 0..64u64 {
                seen.insert(derive_seed(master, i));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "derived seeds must not collide");
    }

    #[test]
    fn derive_seed_differs_from_master() {
        for master in [0u64, 1, 42, u64::MAX] {
            assert_ne!(derive_seed(master, 0), master);
        }
    }

    #[test]
    fn fmix_hasher_map_round_trip() {
        use std::collections::HashMap;
        let mut map: HashMap<u64, u64, Fmix64Build> = HashMap::with_hasher(Fmix64Build);
        for k in 0..1_000u64 {
            map.insert(k, k * 3);
        }
        for k in 0..1_000u64 {
            assert_eq!(map.get(&k), Some(&(k * 3)));
        }
        // The generic `write` path folds arbitrary byte strings consistently.
        use std::hash::{BuildHasher, Hasher};
        let mut a = Fmix64Build.build_hasher();
        let mut b = Fmix64Build.build_hasher();
        a.write(b"correlated");
        b.write(b"correlated");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fmix64Build.build_hasher();
        c.write(b"correlatee");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn splitmix_avalanche_single_bit_flip() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64;
        for bit in 0..trials {
            let a = splitmix64(0xDEAD_BEEF);
            let b = splitmix64(0xDEAD_BEEF ^ (1u64 << bit));
            total += (a ^ b).count_ones();
        }
        let avg = f64::from(total) / f64::from(trials);
        assert!(
            (20.0..44.0).contains(&avg),
            "expected ~32 flipped bits on average, got {avg}"
        );
    }
}
