//! Simple tabulation hashing (Zobrist / Thorup–Zhang).
//!
//! The key is split into 8-bit characters; each character indexes a table of
//! random words and the results are XORed. The family is 3-independent, and
//! Thorup & Zhang (SODA 2004) — the "fast AMS" variant the paper's experiments
//! use — showed that tabulation-based second-moment estimation matches the
//! guarantees of 4-independent families in practice while being much faster
//! than evaluating a degree-3 polynomial per update.
//!
//! One function costs `tables × 256 × 8` bytes (16 KiB for 64-bit keys), so
//! tabulation is used for the *stream-facing* hash functions that are shared
//! across the whole structure (row/bucket hashes of the top-level sketches),
//! while the many small per-bucket sketches inside the correlated framework
//! use [`crate::polynomial::PolynomialHash`] to keep per-bucket space small.

use crate::mix::derive_seed;
use crate::traits::HashFunction64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tabulation hashing for 64-bit keys (8 characters of 8 bits).
#[derive(Debug, Clone)]
pub struct TabulationHash64 {
    tables: Box<[[u64; 256]; 8]>,
}

impl TabulationHash64 {
    /// Create a new tabulation hash function from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x7AB));
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = rng.gen();
            }
        }
        Self { tables }
    }

    /// The memory footprint of the lookup tables in bytes.
    pub const fn table_bytes() -> usize {
        8 * 256 * std::mem::size_of::<u64>()
    }
}

impl HashFunction64 for TabulationHash64 {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        let b = key.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
            ^ self.tables[4][b[4] as usize]
            ^ self.tables[5][b[5] as usize]
            ^ self.tables[6][b[6] as usize]
            ^ self.tables[7][b[7] as usize]
    }
}

/// Tabulation hashing for 32-bit keys (4 characters of 8 bits), producing
/// 32-bit outputs. Used where item identifiers are known to fit in `u32`
/// (e.g. the packet-size domain of the Ethernet dataset) and table space
/// matters.
#[derive(Debug, Clone)]
pub struct TabulationHash32 {
    tables: Box<[[u32; 256]; 4]>,
}

impl TabulationHash32 {
    /// Create a new 32-bit tabulation hash function from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x7AB32));
        let mut tables = Box::new([[0u32; 256]; 4]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = rng.gen();
            }
        }
        Self { tables }
    }

    /// Hash a 32-bit key.
    #[inline]
    pub fn hash32(&self, key: u32) -> u32 {
        let b = key.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
    }
}

impl HashFunction64 for TabulationHash32 {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        // Hash the low and high halves and combine; for keys that fit in u32
        // this degenerates to hash32 spread over 64 bits.
        let lo = self.hash32(key as u32);
        let hi = self.hash32((key >> 32) as u32 ^ 0xA5A5_A5A5);
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_given_seed() {
        let a = TabulationHash64::new(5);
        let b = TabulationHash64::new(5);
        for k in 0..500u64 {
            assert_eq!(a.hash64(k), b.hash64(k));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = TabulationHash64::new(5);
        let b = TabulationHash64::new(6);
        let agree = (0..500u64).filter(|&k| a.hash64(k) == b.hash64(k)).count();
        assert!(agree < 3);
    }

    #[test]
    fn no_trivial_collisions_on_small_keys() {
        let h = TabulationHash64::new(11);
        let outputs: HashSet<u64> = (0..10_000u64).map(|k| h.hash64(k)).collect();
        // Collisions among 10k values in a 64-bit range are astronomically unlikely.
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn table_bytes_is_16kib() {
        assert_eq!(TabulationHash64::table_bytes(), 16 * 1024);
        assert_eq!(TabulationHash64::table_bytes(), 8 * 256 * 8);
    }

    #[test]
    fn hash32_deterministic_and_spread() {
        let h = TabulationHash32::new(7);
        assert_eq!(h.hash32(42), h.hash32(42));
        let outputs: HashSet<u32> = (0..10_000u32).map(|k| h.hash32(k)).collect();
        assert!(outputs.len() > 9_990, "unexpected collision rate");
    }

    #[test]
    fn tabulation64_xor_structure_single_byte_keys() {
        // For keys < 256 only the first character varies: hash(k) must equal
        // table0[k] ^ (xor of the zero entries of the other tables). We verify
        // the structural property that hash(a) ^ hash(b) only depends on the
        // first table when a, b < 256.
        let h = TabulationHash64::new(3);
        let base = h.hash64(0);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(
                    h.hash64(a) ^ h.hash64(b),
                    (h.hash64(a) ^ base) ^ (h.hash64(b) ^ base)
                );
            }
        }
    }

    #[test]
    fn bucket_distribution_roughly_uniform() {
        let h = TabulationHash64::new(13);
        let buckets = 32u64;
        let n = 64_000u64;
        let mut counts = vec![0u64; buckets as usize];
        for k in 0..n {
            counts[h.hash_range(k, buckets) as usize] += 1;
        }
        let expected = (n / buckets) as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                ((c as f64) - expected).abs() < expected * 0.15,
                "bucket {b}: {c} vs expected {expected}"
            );
        }
    }
}
