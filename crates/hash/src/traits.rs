//! Traits that sketches program against.
//!
//! Every sketch in `cora-sketch` is generic-free at its public surface but
//! internally uses these traits so that the hash family backing a sketch can be
//! swapped (e.g. tabulation vs. polynomial) without touching estimator logic.
//! This is also the seam used by the ablation benchmarks.

/// A hash function from 64-bit keys to 64-bit values.
///
/// Implementations must be deterministic: the same key always hashes to the
/// same value for the lifetime of the object. Two instances constructed from
/// the same seed must agree on every key (this is what makes sketch merging
/// sound).
pub trait HashFunction64 {
    /// Hash a 64-bit key to a 64-bit value.
    fn hash64(&self, key: u64) -> u64;

    /// Hash a key into the unit interval `[0, 1)`.
    ///
    /// Used by distinct sampling: an item is kept at level `i` iff
    /// `hash_unit(x) < 2^{-i}`. The default implementation divides the 64-bit
    /// hash by `2^64`, giving 53 bits of usable precision, far more than the
    /// `log2(m)` levels any sampler in this workspace uses.
    fn hash_unit(&self, key: u64) -> f64 {
        // Keep the top 53 bits so the value is exactly representable and the
        // result stays strictly below 1.0 even for an all-ones hash.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.hash64(key) >> 11) as f64) * SCALE
    }

    /// Hash a key to a bucket in `[0, range)`.
    ///
    /// `range` does not need to be a power of two; the default implementation
    /// uses the high-quality multiply-shift reduction (Lemire's fast range
    /// reduction) which preserves uniformity better than a modulo.
    fn hash_range(&self, key: u64, range: u64) -> u64 {
        debug_assert!(range > 0, "hash_range requires a non-empty range");
        let h = self.hash64(key);
        ((u128::from(h) * u128::from(range)) >> 64) as u64
    }

    /// The number of leading-zero style "geometric level" of the key's hash:
    /// the number of trailing one-bits is geometric with p = 1/2, used by
    /// Flajolet–Martin style counters and by level-sampling structures.
    fn geometric_level(&self, key: u64) -> u32 {
        self.hash64(key).trailing_ones()
    }
}

/// A ±1-valued hash function (a "sign" or "Rademacher" hash).
///
/// The AMS sketch requires these to be drawn from a 4-wise independent family
/// for its variance bound to hold.
pub trait SignHash {
    /// Return +1 or −1 for the key.
    fn sign(&self, key: u64) -> i64;
}

/// Blanket helper: any `HashFunction64` can act as a sign hash by looking at
/// one bit of its output. The independence of the resulting sign family equals
/// that of the underlying hash family.
#[derive(Debug, Clone)]
pub struct SignFromHash<H>(pub H);

impl<H: HashFunction64> SignHash for SignFromHash<H> {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        // Use the top bit: low bits of some families (e.g. multiply-shift) are
        // weaker than high bits.
        if self.0.hash64(key) >> 63 == 1 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;
    impl HashFunction64 for Identity {
        fn hash64(&self, key: u64) -> u64 {
            key
        }
    }

    #[test]
    fn hash_unit_is_in_unit_interval() {
        let h = Identity;
        for k in [0u64, 1, u64::MAX, u64::MAX / 2, 12345] {
            let u = h.hash_unit(k);
            assert!((0.0..1.0).contains(&u), "hash_unit({k}) = {u}");
        }
    }

    #[test]
    fn hash_unit_of_max_is_close_to_one() {
        let h = Identity;
        assert!(h.hash_unit(u64::MAX) > 0.999_999);
        assert_eq!(h.hash_unit(0), 0.0);
    }

    #[test]
    fn hash_range_is_in_range() {
        let h = Identity;
        for range in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for k in [0u64, 1, 17, u64::MAX] {
                assert!(h.hash_range(k, range) < range);
            }
        }
    }

    #[test]
    fn hash_range_distributes_identity_proportionally() {
        // With the identity hash, Lemire reduction maps key k to
        // floor(k * range / 2^64), so small keys land in bucket 0 and the
        // largest keys in bucket range-1.
        let h = Identity;
        assert_eq!(h.hash_range(0, 16), 0);
        assert_eq!(h.hash_range(u64::MAX, 16), 15);
    }

    #[test]
    fn geometric_level_counts_trailing_ones() {
        let h = Identity;
        assert_eq!(h.geometric_level(0b0), 0);
        assert_eq!(h.geometric_level(0b1), 1);
        assert_eq!(h.geometric_level(0b0111), 3);
        assert_eq!(h.geometric_level(u64::MAX), 64);
    }

    #[test]
    fn sign_from_hash_uses_top_bit() {
        let s = SignFromHash(Identity);
        assert_eq!(s.sign(0), -1);
        assert_eq!(s.sign(u64::MAX), 1);
        assert_eq!(s.sign(1u64 << 63), 1);
        assert_eq!(s.sign((1u64 << 63) - 1), -1);
    }
}
