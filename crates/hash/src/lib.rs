//! # cora-hash
//!
//! Hash families with provable independence guarantees, used as the randomness
//! substrate for every sketch in the `cora` workspace.
//!
//! The correlated-aggregation paper (Tirthapura & Woodruff, ICDE 2012) relies on
//! whole-stream sketches whose guarantees in turn rest on limited-independence
//! hashing:
//!
//! * the classic AMS `F_2` sketch needs **4-wise independent** sign hashes,
//! * the fast AMS variant (Thorup–Zhang, SODA 2004) uses **tabulation hashing**,
//!   which is 3-independent but behaves like full independence for second-moment
//!   estimation and is extremely fast per update,
//! * distinct sampling (`F_0`) needs **pairwise independent** bucket hashes.
//!
//! This crate provides:
//!
//! * [`tabulation::TabulationHash64`] / [`tabulation::TabulationHash32`] — simple
//!   tabulation hashing over 8-bit characters,
//! * [`polynomial::PolynomialHash`] — degree-(k−1) polynomial hashing over the
//!   Mersenne prime `2^61 − 1`, giving exact k-wise independence,
//! * [`sign::FourWiseSignHash`] — ±1 valued 4-wise independent hash used by AMS,
//! * [`pairwise::PairwiseHash`] — 2-universal hashing into a power-of-two range,
//! * [`traits`] — the [`traits::HashFunction64`] / [`traits::SignHash`] traits that
//!   sketches program against, so hash families can be swapped in benchmarks.
//!
//! All families are constructed from a seed (`u64`) through [`rand`]'s
//! `StdRng`, so every sketch in the workspace is fully deterministic given its
//! seed — a requirement for reproducible experiments and for merging sketches
//! built on different nodes (merge requires identical hash functions).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod mix;
pub mod pairwise;
pub mod polynomial;
pub mod sign;
pub mod tabulation;
pub mod traits;

pub use pairwise::PairwiseHash;
pub use polynomial::PolynomialHash;
pub use sign::FourWiseSignHash;
pub use tabulation::{TabulationHash32, TabulationHash64};
pub use traits::{HashFunction64, SignHash};

/// The Mersenne prime `2^61 - 1`, the modulus used by [`polynomial::PolynomialHash`].
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use crate::traits::HashFunction64;

    #[test]
    fn mersenne_constant_is_prime_sized() {
        assert_eq!(MERSENNE_61, 2_305_843_009_213_693_951);
    }

    #[test]
    fn exported_types_are_constructible() {
        let t = TabulationHash64::new(7);
        let p = PolynomialHash::new(4, 7);
        let s = FourWiseSignHash::new(7);
        let w = PairwiseHash::new(7, 1 << 10);
        // Smoke: all produce values without panicking.
        let _ = t.hash64(42);
        let _ = p.hash64(42);
        let _ = s.sign(42);
        let _ = w.bucket(42);
    }
}
