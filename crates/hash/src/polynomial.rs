//! Exact k-wise independent hashing via random polynomials over GF(p),
//! p = 2^61 − 1 (a Mersenne prime, so reduction is two adds and a shift).
//!
//! A degree-(k−1) polynomial with uniformly random coefficients evaluated at
//! the key is a classic k-wise independent family (Wegman–Carter). We use it
//! where the *proof* of a sketch requires a specific independence level:
//!
//! * k = 2: bucket hashes for distinct sampling and CountSketch columns,
//! * k = 4: sign hashes for AMS `F_2` (through [`crate::sign::FourWiseSignHash`]).
//!
//! Tabulation hashing is faster per evaluation but only 3-independent;
//! polynomial hashing is the fallback whenever exact independence matters or
//! when table memory (4 × 256 × 8 bytes per function) is too much — e.g. the
//! per-bucket sketches inside the correlated framework instantiate many small
//! sketches, where a 16 KiB table per hash function would dominate the very
//! space the paper is trying to save.

use crate::mix::derive_seed;
use crate::traits::HashFunction64;
use crate::MERSENNE_61;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multiply two values modulo 2^61 − 1 without overflow.
///
/// Public because hot-path specialisations (the fast-AMS hash kernel in
/// `cora-sketch`) inline fixed-arity polynomial evaluation against these
/// exact primitives; any drift between the two would silently change every
/// hash value, so there is one implementation.
#[inline]
pub fn mul_mod_m61(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    // Split into low 61 bits and the rest, then fold (since 2^61 ≡ 1 mod p).
    let lo = (prod & u128::from(MERSENNE_61)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// Add two values modulo 2^61 − 1. Public for the same reason as
/// [`mul_mod_m61`].
#[inline]
pub fn add_mod_m61(a: u64, b: u64) -> u64 {
    let mut s = a + b; // both < 2^61, so no overflow in u64
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// A k-wise independent hash function realised as a random degree-(k−1)
/// polynomial over GF(2^61 − 1).
///
/// The output is a value in `[0, 2^61 − 1)`; [`HashFunction64::hash64`]
/// additionally spreads it over the full 64-bit range by multiplying with a
/// fixed odd constant so that downstream range reductions that look at high
/// bits remain unbiased.
#[derive(Debug, Clone)]
pub struct PolynomialHash {
    /// Coefficients a_0 .. a_{k-1}; a_{k-1} is guaranteed non-zero so the
    /// polynomial has true degree k−1.
    coefficients: Vec<u64>,
}

impl PolynomialHash {
    /// Create a new k-wise independent hash function.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence level k must be at least 1");
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, k as u64));
        let mut coefficients: Vec<u64> = (0..k).map(|_| rng.gen_range(0..MERSENNE_61)).collect();
        // Force the leading coefficient non-zero so degree is exactly k−1.
        if k > 1 && coefficients[k - 1] == 0 {
            coefficients[k - 1] = 1 + rng.gen_range(0..MERSENNE_61 - 1);
        }
        Self { coefficients }
    }

    /// The independence level (number of coefficients) of this function.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// The polynomial's coefficients `a_0 .. a_{k-1}` (all in `[0, 2^61−1)`).
    ///
    /// Exposed so callers that evaluate many same-shaped polynomials per key
    /// (e.g. the fast-AMS row kernel) can copy the coefficients into flat
    /// fixed-arity storage and share the single `key mod 2^61−1` reduction
    /// across all of them, while still deriving every coefficient through
    /// this constructor so the values stay bit-identical.
    pub fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }

    /// Evaluate the polynomial at `key` (reduced into the field first),
    /// returning a value in `[0, 2^61 − 1)`.
    #[inline]
    pub fn eval_mod(&self, key: u64) -> u64 {
        let x = key % MERSENNE_61;
        // Horner's rule, highest coefficient first.
        let mut acc = 0u64;
        for &c in self.coefficients.iter().rev() {
            acc = add_mod_m61(mul_mod_m61(acc, x), c);
        }
        acc
    }
}

impl HashFunction64 for PolynomialHash {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        // Spread the 61-bit field element over 64 bits. Multiplying by a fixed
        // odd constant is a bijection on u64 and moves entropy into the high
        // bits used by hash_range / hash_unit.
        self.eval_mod(key).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn field_arithmetic_basics() {
        assert_eq!(add_mod_m61(MERSENNE_61 - 1, 1), 0);
        assert_eq!(add_mod_m61(0, 0), 0);
        assert_eq!(mul_mod_m61(0, 12345), 0);
        assert_eq!(mul_mod_m61(1, 12345), 12345);
        // (p-1)^2 mod p == 1  (since -1 * -1 = 1)
        assert_eq!(mul_mod_m61(MERSENNE_61 - 1, MERSENNE_61 - 1), 1);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let pairs = [
            (123_456_789u64, 987_654_321u64),
            (MERSENNE_61 - 1, 2),
            (1u64 << 60, 1u64 << 60),
            (0xDEAD_BEEF, 0xFEED_FACE),
        ];
        for (a, b) in pairs {
            let expected = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_61)) as u64;
            assert_eq!(mul_mod_m61(a, b), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h1 = PolynomialHash::new(4, 99);
        let h2 = PolynomialHash::new(4, 99);
        for k in 0..1000u64 {
            assert_eq!(h1.hash64(k), h2.hash64(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h1 = PolynomialHash::new(4, 1);
        let h2 = PolynomialHash::new(4, 2);
        let same = (0..1000u64).filter(|&k| h1.hash64(k) == h2.hash64(k)).count();
        assert!(same < 5, "two random degree-3 polynomials agreed on {same}/1000 points");
    }

    #[test]
    fn independence_reports_k() {
        for k in 1..=8 {
            assert_eq!(PolynomialHash::new(k, 7).independence(), k);
        }
    }

    #[test]
    fn output_stays_in_field_before_spreading() {
        let h = PolynomialHash::new(3, 21);
        for k in 0..10_000u64 {
            assert!(h.eval_mod(k) < MERSENNE_61);
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        // Chi-squared style sanity check: hash 40k keys into 16 buckets.
        let h = PolynomialHash::new(2, 7);
        let buckets = 16u64;
        let n = 40_000u64;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for k in 0..n {
            *counts.entry(h.hash_range(k, buckets)).or_default() += 1;
        }
        let expected = (n / buckets) as f64;
        for b in 0..buckets {
            let c = *counts.get(&b).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() < expected * 0.15,
                "bucket {b} has {c} items, expected ~{expected}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_uniform() {
        // For a 2-universal family into r buckets, Pr[collision] <= 1/r.
        let h = PolynomialHash::new(2, 3);
        let r = 1024u64;
        let n = 2000u64;
        let mut collisions = 0u64;
        let hashes: Vec<u64> = (0..n).map(|k| h.hash_range(k, r)).collect();
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                if hashes[i] == hashes[j] {
                    collisions += 1;
                }
            }
        }
        let pairs = n * (n - 1) / 2;
        let rate = collisions as f64 / pairs as f64;
        // Allow 2x slack over the 1/r bound for statistical noise.
        assert!(rate < 2.0 / r as f64, "collision rate {rate} too high");
    }
}
