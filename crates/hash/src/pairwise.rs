//! 2-universal (pairwise independent) hashing into a fixed range.
//!
//! A thin convenience wrapper around a degree-1 polynomial over GF(2^61 − 1)
//! that remembers its target range. Distinct sampling, CountSketch column
//! selection and the subsampling levels of the `F_k` estimator all only need
//! pairwise independence, and constructing the wrapper once avoids threading a
//! `(hash, range)` pair through those structures.

use crate::polynomial::PolynomialHash;
use crate::traits::HashFunction64;

/// A pairwise independent hash function into `[0, range)`.
#[derive(Debug, Clone)]
pub struct PairwiseHash {
    poly: PolynomialHash,
    range: u64,
}

impl PairwiseHash {
    /// Create a pairwise independent hash into `[0, range)`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn new(seed: u64, range: u64) -> Self {
        assert!(range > 0, "PairwiseHash range must be non-zero");
        Self {
            poly: PolynomialHash::new(2, seed ^ 0x9A12_55E1_7A1B_0051),
            range,
        }
    }

    /// The configured range.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Hash a key into `[0, range)`.
    #[inline]
    pub fn bucket(&self, key: u64) -> u64 {
        self.poly.hash_range(key, self.range)
    }

    /// Hash a key into the unit interval (ignores `range`).
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        self.poly.hash_unit(key)
    }
}

impl HashFunction64 for PairwiseHash {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        self.poly.hash64(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_within_range() {
        let h = PairwiseHash::new(4, 37);
        for k in 0..5000u64 {
            assert!(h.bucket(k) < 37);
        }
    }

    #[test]
    #[should_panic(expected = "range must be non-zero")]
    fn zero_range_panics() {
        let _ = PairwiseHash::new(4, 0);
    }

    #[test]
    fn range_accessor() {
        assert_eq!(PairwiseHash::new(1, 128).range(), 128);
    }

    #[test]
    fn unit_values_in_interval() {
        let h = PairwiseHash::new(8, 2);
        for k in 0..2000u64 {
            let u = h.unit(k);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn deterministic_across_clones() {
        let h = PairwiseHash::new(5, 1000);
        let c = h.clone();
        for k in 0..1000u64 {
            assert_eq!(h.bucket(k), c.bucket(k));
        }
    }

    #[test]
    fn roughly_uniform_buckets() {
        let h = PairwiseHash::new(6, 10);
        let n = 50_000u64;
        let mut counts = [0u64; 10];
        for k in 0..n {
            counts[h.bucket(k) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                ((c as f64) - expected).abs() < expected * 0.15,
                "bucket {i}: {c}"
            );
        }
    }
}
