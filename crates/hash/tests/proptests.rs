//! Property-based tests for the hash families.

use cora_hash::traits::HashFunction64;
use cora_hash::{PairwiseHash, PolynomialHash, TabulationHash32, TabulationHash64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn polynomial_hash_is_deterministic(seed in any::<u64>(), key in any::<u64>()) {
        let a = PolynomialHash::new(3, seed);
        let b = PolynomialHash::new(3, seed);
        prop_assert_eq!(a.hash64(key), b.hash64(key));
    }

    #[test]
    fn polynomial_eval_stays_in_field(seed in any::<u64>(), key in any::<u64>(), k in 1usize..6) {
        let h = PolynomialHash::new(k, seed);
        prop_assert!(h.eval_mod(key) < cora_hash::MERSENNE_61);
    }

    #[test]
    fn tabulation_is_deterministic(seed in any::<u64>(), key in any::<u64>()) {
        let a = TabulationHash64::new(seed);
        let b = TabulationHash64::new(seed);
        prop_assert_eq!(a.hash64(key), b.hash64(key));
    }

    #[test]
    fn tabulation32_consistent_with_trait(seed in any::<u64>(), key in any::<u32>()) {
        let h = TabulationHash32::new(seed);
        // For keys that fit in u32, the low 32 bits of hash64 equal hash32.
        prop_assert_eq!(h.hash64(u64::from(key)) as u32, h.hash32(key));
    }

    #[test]
    fn hash_range_respects_bound(seed in any::<u64>(), key in any::<u64>(), range in 1u64..1_000_000) {
        let h = TabulationHash64::new(seed);
        prop_assert!(h.hash_range(key, range) < range);
    }

    #[test]
    fn hash_unit_in_interval(seed in any::<u64>(), key in any::<u64>()) {
        let h = PolynomialHash::new(2, seed);
        let u = h.hash_unit(key);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn pairwise_bucket_in_range(seed in any::<u64>(), key in any::<u64>(), range in 1u64..100_000) {
        let h = PairwiseHash::new(seed, range);
        prop_assert!(h.bucket(key) < range);
    }

    #[test]
    fn xor_of_tabulation_hashes_cancels_shared_structure(seed in any::<u64>(), a in any::<u8>(), b in any::<u8>()) {
        // Keys differing only in the first byte: their hashes differ exactly by
        // the XOR of two entries of table 0, so hash(a) ^ hash(b) must be
        // independent of the other seven tables — verified by computing it two
        // different ways.
        let h = TabulationHash64::new(seed);
        let x = h.hash64(u64::from(a));
        let y = h.hash64(u64::from(b));
        let z0 = h.hash64(0);
        prop_assert_eq!(x ^ y, (x ^ z0) ^ (y ^ z0));
    }
}
