//! Correlated sum and count.
//!
//! The correlated sum is the aggregate studied by the earlier work the paper
//! builds on (Gehrke–Korn–Srivastava, Ananthakrishna et al., Xu–Tirthapura–
//! Busch); it satisfies the framework's conditions trivially (`c1(j) = j`,
//! `c2(ε) = ε`) and its "sketch" is a single exact counter, so running it
//! through the generic framework both exercises the reduction with the
//! simplest possible aggregate and provides a baseline correlated aggregate
//! with provable guarantees and negligible per-bucket space.

use crate::aggregate::CorrelatedAggregate;
use crate::config::{CorrelatedConfig, DEFAULT_SEED};
use crate::error::Result;
use crate::framework::CorrelatedSketch;
use cora_sketch::codec::{ByteReader, ByteWriter, CodecResult, StateCodec};
use cora_sketch::error::Result as SketchResult;
use cora_sketch::{
    Estimate, ExactFrequencies, MergeableSketch, SharedUpdate, SpaceUsage, StreamSketch,
};

/// A "sketch" that is just an exact running sum of weights. It is trivially
/// composable, so it satisfies Property V with zero error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarSumSketch {
    total: i64,
}

impl ScalarSumSketch {
    /// A new, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact running total.
    pub fn total(&self) -> i64 {
        self.total
    }
}

impl StreamSketch for ScalarSumSketch {
    fn update(&mut self, _item: u64, weight: i64) {
        self.total += weight;
    }
}

impl Estimate for ScalarSumSketch {
    fn estimate(&self) -> f64 {
        self.total as f64
    }
}

impl SharedUpdate for ScalarSumSketch {
    type Prepared = i64;
    type PreparedBatch = Vec<i64>;

    fn prepare_into(&self, _item: u64, weight: i64, out: &mut i64) {
        *out = weight;
    }

    fn apply_prepared(&mut self, prepared: &i64) {
        self.total += prepared;
    }

    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut Self::PreparedBatch) {
        out.clear();
        out.extend(items.iter().map(|&(_, weight)| weight));
    }

    fn apply_prepared_range(&mut self, batch: &Self::PreparedBatch, range: std::ops::Range<usize>) {
        // A contiguous weight slice sums in one autovectorized pass.
        self.total += batch[range].iter().sum::<i64>();
    }
}

impl MergeableSketch for ScalarSumSketch {
    fn merge_from(&mut self, other: &Self) -> SketchResult<()> {
        self.total += other.total;
        Ok(())
    }
}

impl SpaceUsage for ScalarSumSketch {
    fn stored_tuples(&self) -> usize {
        1
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<i64>()
    }
}

impl StateCodec for ScalarSumSketch {
    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_i64(self.total);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()> {
        self.total = r.get_i64()?;
        Ok(())
    }
}

/// Correlated sum of weights: `Σ {w : (x, y, w) ∈ S, y ≤ c}`.
#[derive(Debug, Clone, Default)]
pub struct SumAggregate;

impl SumAggregate {
    /// Create the sum aggregate descriptor.
    pub fn new() -> Self {
        Self
    }
}

impl CorrelatedAggregate for SumAggregate {
    type Sketch = ScalarSumSketch;

    fn name(&self) -> String {
        "sum".to_string()
    }

    fn c1(&self, j: f64) -> f64 {
        // Additivity: f(∪ R_i) = Σ f(R_i) <= j · max.
        j
    }

    fn c2(&self, eps: f64) -> f64 {
        // f(A − B) = f(A) − f(B) >= (1 − ε) f(A) whenever f(B) <= ε f(A).
        eps
    }

    fn f_max_log2(&self, max_stream_len: u64) -> u32 {
        // Sum of weights <= n · w_max; allow weights up to ~2^20 by default.
        ((64 - max_stream_len.leading_zeros()) + 20).clamp(4, 126)
    }

    fn new_sketch(&self) -> ScalarSumSketch {
        ScalarSumSketch::new()
    }

    fn sketch_size_hint(&self) -> usize {
        1
    }

    fn exact_value(&self, freqs: &ExactFrequencies) -> f64 {
        freqs.frequency_moment(1)
    }

    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        // The sum grows by exactly the added weight.
        (threshold - value).max(0.0)
    }
}

/// Correlated count of tuples: `|{(x, y) ∈ S : y ≤ c}|` (insert with unit
/// weights). Identical machinery to [`SumAggregate`]; kept as a distinct type
/// so reports and examples read naturally.
#[derive(Debug, Clone, Default)]
pub struct CountAggregate;

impl CountAggregate {
    /// Create the count aggregate descriptor.
    pub fn new() -> Self {
        Self
    }
}

impl CorrelatedAggregate for CountAggregate {
    type Sketch = ScalarSumSketch;

    fn name(&self) -> String {
        "count".to_string()
    }

    fn c1(&self, j: f64) -> f64 {
        j
    }

    fn c2(&self, eps: f64) -> f64 {
        eps
    }

    fn f_max_log2(&self, max_stream_len: u64) -> u32 {
        (64 - max_stream_len.leading_zeros()).clamp(4, 126)
    }

    fn new_sketch(&self) -> ScalarSumSketch {
        ScalarSumSketch::new()
    }

    fn sketch_size_hint(&self) -> usize {
        1
    }

    fn exact_value(&self, freqs: &ExactFrequencies) -> f64 {
        freqs.frequency_moment(1)
    }

    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        (threshold - value).max(0.0)
    }
}

/// A correlated sum sketch.
pub type CorrelatedSum = CorrelatedSketch<SumAggregate>;
/// A correlated count sketch.
pub type CorrelatedCount = CorrelatedSketch<CountAggregate>;

/// Build a correlated sum sketch.
pub fn correlated_sum(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
) -> Result<CorrelatedSum> {
    let agg = SumAggregate::new();
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(DEFAULT_SEED);
    CorrelatedSketch::new(agg, config)
}

/// Build a correlated count sketch.
pub fn correlated_count(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
) -> Result<CorrelatedCount> {
    let agg = CountAggregate::new();
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(DEFAULT_SEED);
    CorrelatedSketch::new(agg, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sketch_is_exact_and_mergeable() {
        let mut a = ScalarSumSketch::new();
        let mut b = ScalarSumSketch::new();
        a.update(1, 5);
        a.update(2, -2);
        b.update(3, 10);
        assert_eq!(a.estimate(), 3.0);
        a.merge_from(&b).unwrap();
        assert_eq!(a.total(), 13);
        assert_eq!(a.stored_tuples(), 1);
        assert_eq!(a.space_bytes(), 8);
    }

    #[test]
    fn aggregate_constants() {
        let s = SumAggregate::new();
        assert_eq!(s.c1(7.0), 7.0);
        assert_eq!(s.c2(0.3), 0.3);
        assert_eq!(s.name(), "sum");
        assert_eq!(CountAggregate::new().name(), "count");
        assert_eq!(s.sketch_size_hint(), 1);
    }

    #[test]
    fn correlated_count_matches_truth() {
        let mut s = correlated_count(0.2, 0.1, 1023, 100_000).unwrap();
        let mut ys = Vec::new();
        for i in 0..10_000u64 {
            let y = (i * 797) % 1024;
            ys.push(y);
            s.insert(i % 64, y).unwrap();
        }
        for &c in &[50u64, 200, 700, 1023] {
            let truth = ys.iter().filter(|&&y| y <= c).count() as f64;
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(err < 0.2, "count at c={c}: {est} vs {truth}");
        }
    }

    #[test]
    fn correlated_sum_handles_weights() {
        let mut s = correlated_sum(0.2, 0.1, 255, 10_000).unwrap();
        let mut truth_600 = 0i64;
        for i in 0..4_000u64 {
            let y = (i * 31) % 256;
            let w = (i % 5 + 1) as i64;
            if y <= 200 {
                truth_600 += w;
            }
            s.update(i, y, w).unwrap();
        }
        let est = s.query(200).unwrap();
        let err = (est - truth_600 as f64).abs() / truth_600 as f64;
        assert!(err < 0.2, "sum estimate {est} vs truth {truth_600}");
    }

    #[test]
    fn exact_value_is_total_weight() {
        let agg = SumAggregate::new();
        let mut f = ExactFrequencies::new();
        f.update(1, 4);
        f.update(9, 6);
        assert_eq!(agg.exact_value(&f), 10.0);
    }
}
