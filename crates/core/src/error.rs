//! Error types for the correlated-aggregation framework.

use cora_sketch::SketchError;
use std::fmt;

/// Errors produced by correlated sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Algorithm 3, step 1: no level `ℓ` has `Y_ℓ > c`, so the structure
    /// cannot answer the query. Under the paper's parameter choices this
    /// happens with probability at most `δ`; with aggressively small practical
    /// parameters it can also indicate that `alpha` was chosen too small for
    /// the stream.
    QueryFailed {
        /// The threshold that could not be answered.
        threshold: u64,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// The query threshold exceeds the configured `y_max`.
    ThresholdOutOfRange {
        /// The requested threshold.
        threshold: u64,
        /// The configured maximum y value.
        y_max: u64,
    },
    /// An inserted tuple's y value exceeds the configured `y_max`.
    YOutOfRange {
        /// The offending y value.
        y: u64,
        /// The configured maximum y value.
        y_max: u64,
    },
    /// Two correlated sketches cannot be merged: they were built with
    /// different configurations (accuracy parameters, y domain, level count,
    /// bucket policy, or hash seed). Property V requires merged structures to
    /// share all of these.
    IncompatibleMerge {
        /// What differed.
        detail: String,
    },
    /// A snapshot could not be decoded: wrong magic/version/kind, checksum
    /// mismatch, truncation, or a payload describing an impossible state.
    Snapshot {
        /// What was wrong with the snapshot bytes.
        detail: String,
    },
    /// A window query reaches back past the retention horizon: panes covering
    /// part of the requested span were already expired, so any answer would
    /// silently undercount. Re-issue the query with a window that starts at or
    /// after `earliest_available`.
    WindowExpired {
        /// The requested (inclusive) start of the window, in ticks.
        requested_start: u64,
        /// The earliest timestamp still covered by retained panes.
        earliest_available: u64,
    },
    /// An underlying whole-stream sketch failed (merge mismatch etc.).
    Sketch(SketchError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::QueryFailed { threshold } => write!(
                f,
                "correlated query for threshold {threshold} cannot be answered (all levels evicted past it)"
            ),
            CoreError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            CoreError::ThresholdOutOfRange { threshold, y_max } => {
                write!(f, "query threshold {threshold} exceeds y_max {y_max}")
            }
            CoreError::YOutOfRange { y, y_max } => {
                write!(f, "tuple y value {y} exceeds configured y_max {y_max}")
            }
            CoreError::IncompatibleMerge { detail } => {
                write!(f, "sketches cannot be merged: {detail}")
            }
            CoreError::Snapshot { detail } => {
                write!(f, "snapshot rejected: {detail}")
            }
            CoreError::WindowExpired { requested_start, earliest_available } => write!(
                f,
                "window starting at tick {requested_start} reaches past the retention horizon \
                 (earliest retained tick is {earliest_available})"
            ),
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for CoreError {
    fn from(e: SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::QueryFailed { threshold: 42 };
        assert!(e.to_string().contains("42"));
        let e = CoreError::ThresholdOutOfRange { threshold: 10, y_max: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains("5"));
        let e = CoreError::YOutOfRange { y: 9, y_max: 7 };
        assert!(e.to_string().contains("y value 9"));
    }

    #[test]
    fn sketch_errors_convert() {
        let s = SketchError::EmptyQuery;
        let c: CoreError = s.into();
        assert!(matches!(c, CoreError::Sketch(_)));
        assert!(std::error::Error::source(&c).is_some());
    }
}
