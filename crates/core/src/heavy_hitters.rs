//! Correlated `F_2`-heavy hitters (Section 3.3 of the paper).
//!
//! "In the correlated F2-heavy hitters problem with y-bound of c and
//! parameters ε, φ, we wish to return all x for which
//! `|{(x_i, y_i) | x_i = x ∧ y_i ≤ c}|² ≥ φ F2(c)` and no x for which the
//! squared frequency is at most `(φ − ε) F2(c)`." The construction reuses the
//! correlated `F_2` structure and augments every bucket with a CountSketch
//! whose point estimates, composed over the buckets selected for threshold
//! `c`, give each candidate's frequency up to a small additive error.
//!
//! The per-bucket summary here is a pair (fast-AMS `F_2` sketch, CountSketch
//! with a bounded candidate set); the framework treats it as a single sketch
//! whose `estimate()` is the `F_2` estimate.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::compose::{self, GenCache};
use crate::config::{CorrelatedConfig, DEFAULT_SEED};
use crate::error::Result;
use crate::framework::CorrelatedSketch;
use crate::snapshot::{self, SnapshotKind};
use cora_sketch::codec::{ByteReader, ByteWriter, CodecResult, StateCodec};
use cora_sketch::error::Result as SketchResult;
use cora_sketch::{
    CountSketch, Estimate, ExactFrequencies, FastAmsBatch, FastAmsPrepared, FastAmsSketch,
    MergeableSketch, PointQuery, SharedUpdate, SpaceUsage, StreamSketch,
};

/// Per-bucket summary for correlated heavy hitters: an `F_2` sketch plus a
/// CountSketch for per-item (squared) frequency estimates.
#[derive(Debug, Clone)]
pub struct HhBucketSketch {
    f2: FastAmsSketch,
    counts: CountSketch,
}

impl HhBucketSketch {
    fn new(width: usize, depth: usize, candidates: usize, seed: u64) -> Self {
        Self {
            f2: FastAmsSketch::with_dimensions(width, depth, seed),
            counts: CountSketch::with_dimensions(width, depth, candidates, seed ^ 0x4848),
        }
    }

    /// Point estimate of the frequency of `item` among the summarised tuples.
    pub fn frequency_estimate(&self, item: u64) -> f64 {
        self.counts.frequency_estimate(item)
    }

    /// Candidate heavy items recorded by the CountSketch.
    pub fn candidates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.counts.candidates()
    }
}

impl StreamSketch for HhBucketSketch {
    fn update(&mut self, item: u64, weight: i64) {
        self.f2.update(item, weight);
        self.counts.update(item, weight);
    }
}

/// Precomputed coordinates of one heavy-hitters bucket update: the fast-AMS
/// part is shareable; the CountSketch part re-hashes (its candidate tracking
/// is stateful).
#[derive(Debug, Clone, Default)]
pub struct HhPrepared {
    f2: FastAmsPrepared,
    item: u64,
    weight: i64,
}

/// Precomputed coordinates for a batch of heavy-hitters bucket updates: the
/// fast-AMS side uses its flat row-major layout; the CountSketch side keeps
/// the raw `(item, weight)` pairs (its candidate tracking is stateful).
#[derive(Debug, Clone, Default)]
pub struct HhBatch {
    f2: FastAmsBatch,
    items: Vec<u64>,
    weights: Vec<i64>,
}

impl SharedUpdate for HhBucketSketch {
    type Prepared = HhPrepared;
    type PreparedBatch = HhBatch;

    fn prepare_into(&self, item: u64, weight: i64, out: &mut HhPrepared) {
        self.f2.prepare_into(item, weight, &mut out.f2);
        out.item = item;
        out.weight = weight;
    }

    fn apply_prepared(&mut self, prepared: &HhPrepared) {
        self.f2.apply_prepared(&prepared.f2);
        self.counts.update(prepared.item, prepared.weight);
    }

    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut HhBatch) {
        self.f2.prepare_batch_into(items, &mut out.f2);
        out.items.clear();
        out.weights.clear();
        out.items.extend(items.iter().map(|&(item, _)| item));
        out.weights.extend(items.iter().map(|&(_, weight)| weight));
    }

    fn apply_prepared_range(&mut self, batch: &HhBatch, range: std::ops::Range<usize>) {
        self.f2.apply_prepared_range(&batch.f2, range.clone());
        for i in range {
            self.counts.update(batch.items[i], batch.weights[i]);
        }
    }
}

impl Estimate for HhBucketSketch {
    fn estimate(&self) -> f64 {
        self.f2.estimate()
    }
}

impl MergeableSketch for HhBucketSketch {
    fn merge_from(&mut self, other: &Self) -> SketchResult<()> {
        self.f2.merge_from(&other.f2)?;
        self.counts.merge_from(&other.counts)
    }
}

impl SpaceUsage for HhBucketSketch {
    fn stored_tuples(&self) -> usize {
        self.f2.stored_tuples() + self.counts.stored_tuples()
    }

    fn space_bytes(&self) -> usize {
        self.f2.space_bytes() + self.counts.space_bytes()
    }
}

impl StateCodec for HhBucketSketch {
    fn encode_state(&self, w: &mut ByteWriter) {
        self.f2.encode_state(w);
        self.counts.encode_state(w);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()> {
        self.f2.decode_state(r)?;
        self.counts.decode_state(r)
    }
}

/// Aggregate descriptor: correlated `F_2` with heavy-hitter support.
///
/// `PartialEq` compares the construction parameters (dimensions, candidate
/// capacity, seed); [`CorrelatedHeavyHitters::merge_from`] uses it to reject
/// merging structures built for different `phi` — the candidate capacity is
/// derived from `phi` and is *not* part of [`CorrelatedConfig`], so the
/// framework-level config check alone would let a capacity mismatch through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct F2HeavyAggregate {
    width: usize,
    depth: usize,
    candidates: usize,
    seed: u64,
}

impl F2HeavyAggregate {
    /// Create the aggregate; `phi` is the smallest heavy-hitter threshold the
    /// structure should support (candidate sets are sized as `⌈4/φ⌉`).
    pub fn new(epsilon: f64, phi: f64, seed: u64) -> Self {
        let upsilon = (epsilon / 2.0).clamp(1e-6, 0.999);
        let width = ((2.0 / (upsilon * upsilon)).ceil() as usize).clamp(8, 1 << 16);
        let candidates = ((4.0 / phi.clamp(1e-4, 1.0)).ceil() as usize).clamp(8, 4096);
        Self {
            width,
            depth: 3,
            candidates,
            seed,
        }
    }
}

impl CorrelatedAggregate for F2HeavyAggregate {
    type Sketch = HhBucketSketch;

    fn name(&self) -> String {
        "F2-heavy-hitters".to_string()
    }

    fn c1(&self, j: f64) -> f64 {
        j * j
    }

    fn c2(&self, eps: f64) -> f64 {
        let v = eps / 18.0;
        v * v
    }

    fn f_max_log2(&self, max_stream_len: u64) -> u32 {
        (2 * (64 - max_stream_len.leading_zeros())).clamp(4, 126)
    }

    fn new_sketch(&self) -> HhBucketSketch {
        HhBucketSketch::new(self.width, self.depth, self.candidates, self.seed)
    }

    fn sketch_size_hint(&self) -> usize {
        2 * self.width * self.depth
    }

    fn exact_value(&self, freqs: &ExactFrequencies) -> f64 {
        freqs.frequency_moment(2)
    }

    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        // Same ℓ₂ triangle-inequality bound as the plain F2 aggregate.
        (threshold.max(0.0).sqrt() - value.max(0.0).sqrt()).max(0.0)
    }
}

/// A reported correlated heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter {
    /// The item identifier.
    pub item: u64,
    /// Estimated frequency among tuples with `y ≤ c`.
    pub frequency: f64,
    /// Estimated squared-frequency share of `F_2(c)`.
    pub share: f64,
}

/// Number of `(threshold, candidate list)` pairs kept by the query cache.
const CANDIDATE_CACHE_CAPACITY: usize = 16;

/// Correlated `F_2`-heavy-hitters sketch.
#[derive(Debug)]
pub struct CorrelatedHeavyHitters {
    inner: CorrelatedSketch<F2HeavyAggregate>,
    /// Memoized candidate lists per `(generation, threshold)`: the full
    /// candidate list with point estimates and shares already computed,
    /// sorted by decreasing share, behind the unified query core's
    /// [`GenCache`]. Interior mutability: queries take `&self`, like the
    /// compose cache.
    candidate_cache: std::sync::Mutex<GenCache<u64, u64, Vec<HeavyHitter>>>,
}

impl Clone for CorrelatedHeavyHitters {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            // Caches don't travel: the clone starts cold.
            candidate_cache: std::sync::Mutex::new(GenCache::new(CANDIDATE_CACHE_CAPACITY)),
        }
    }
}

impl CorrelatedHeavyHitters {
    /// Build the sketch. `phi` is the smallest share threshold that will be
    /// queried; `epsilon` controls both the `F_2` accuracy and the separation
    /// between reported and suppressed items.
    pub fn new(
        epsilon: f64,
        delta: f64,
        phi: f64,
        y_max: u64,
        max_stream_len: u64,
    ) -> Result<Self> {
        Self::with_seed(epsilon, delta, phi, y_max, max_stream_len, DEFAULT_SEED)
    }

    /// [`CorrelatedHeavyHitters::new`] with an explicit seed.
    pub fn with_seed(
        epsilon: f64,
        delta: f64,
        phi: f64,
        y_max: u64,
        max_stream_len: u64,
        seed: u64,
    ) -> Result<Self> {
        let agg = F2HeavyAggregate::new(epsilon, phi, seed);
        let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
            .with_seed(seed);
        Ok(Self {
            inner: CorrelatedSketch::new(agg, config)?,
            candidate_cache: std::sync::Mutex::new(GenCache::new(CANDIDATE_CACHE_CAPACITY)),
        })
    }

    /// Merge `other` into `self` (Property V lifted to the heavy-hitters
    /// structure): per-bucket `F_2` sketches and CountSketches both merge
    /// counter-wise, so the merged structure summarises the union stream.
    /// Requires identical construction parameters and seed — including
    /// `phi`, which sizes the per-bucket candidate sets: a shard built for a
    /// coarser `phi` never tracked the finer one's candidates, so merging it
    /// would silently lose recall rather than degrade gracefully.
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.inner.aggregate() != other.inner.aggregate() {
            return Err(crate::error::CoreError::IncompatibleMerge {
                detail: format!(
                    "heavy-hitter aggregates differ (phi-derived candidate capacity, \
                     dimensions, or seed): {:?} vs {:?}",
                    self.inner.aggregate(),
                    other.inner.aggregate()
                ),
            });
        }
        self.inner.merge_from(&other.inner)?;
        self.candidate_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(())
    }

    /// Number of stream elements processed.
    pub fn items_processed(&self) -> u64 {
        self.inner.items_processed()
    }

    /// The aggregate descriptor (dimensions, `phi`-derived candidate
    /// capacity, seed) — comparable with a freshly built
    /// [`F2HeavyAggregate`] to verify a restored sketch's parameters.
    pub fn aggregate(&self) -> &F2HeavyAggregate {
        self.inner.aggregate()
    }

    /// The framework configuration the inner sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        self.inner.config()
    }

    /// Process a stream element.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.inner.insert(x, y)
    }

    /// Estimate `F_2({x : y ≤ c})`.
    pub fn query_f2(&self, c: u64) -> Result<f64> {
        self.inner.query(c)
    }

    /// Report the items whose squared frequency among tuples with `y ≤ c` is
    /// estimated to be at least `phi · F_2(c)`, sorted by decreasing share.
    ///
    /// Candidate point estimates are memoized per `(threshold, generation)`:
    /// a repeated query against a quiescent sketch filters a cached,
    /// pre-sorted candidate list (any `phi`) instead of cloning the composed
    /// store and re-running the CountSketch median for every candidate.
    pub fn query_heavy_hitters(&self, c: u64, phi: f64) -> Result<Vec<HeavyHitter>> {
        let c = c.min(self.inner.config().padded_y_max());
        compose::cached_query(
            &self.candidate_cache,
            self.inner.items_processed(),
            c,
            || self.inner.with_composed(c, Self::candidates_of),
            |candidates| Self::filter_by_share(candidates, phi),
        )
    }

    /// All candidate heavy hitters of a composed store with their point
    /// estimates and shares, sorted by decreasing share, deduplicated.
    fn candidates_of(store: &BucketStore<F2HeavyAggregate>) -> Vec<HeavyHitter> {
        let mut out = Vec::new();
        match store {
            BucketStore::Exact(freqs) => {
                let f2 = freqs.frequency_moment(2);
                if f2 == 0.0 {
                    return out;
                }
                for (item, f) in freqs.iter() {
                    out.push(HeavyHitter {
                        item,
                        frequency: f as f64,
                        share: (f as f64) * (f as f64) / f2,
                    });
                }
            }
            BucketStore::Sketched(sketch) => {
                let f2 = sketch.estimate();
                if f2 <= 0.0 {
                    return out;
                }
                for (item, freq) in sketch.candidates() {
                    out.push(HeavyHitter {
                        item,
                        frequency: freq,
                        share: freq * freq / f2,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.share.total_cmp(&a.share).then(a.item.cmp(&b.item)));
        out.dedup_by_key(|h| h.item);
        out
    }

    /// The prefix of a share-sorted candidate list with `share ≥ phi`.
    fn filter_by_share(candidates: &[HeavyHitter], phi: f64) -> Vec<HeavyHitter> {
        let end = candidates.partition_point(|h| h.share >= phi);
        candidates[..end].to_vec()
    }

    /// Total stored tuples (space accounting).
    pub fn stored_tuples(&self) -> usize {
        self.inner.stored_tuples()
    }

    /// Serialise the sketch into a versioned, checksummed snapshot frame
    /// (see [`crate::snapshot`]). The aggregate's dimensions (including the
    /// `phi`-derived candidate capacity, which is *not* part of
    /// [`CorrelatedConfig`]) travel ahead of the framework payload, so
    /// [`Self::restore_from`] needs only the bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`Self::snapshot`], appending the frame to a caller-provided buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        let agg = self.inner.aggregate();
        w.put_u64(agg.width as u64);
        w.put_u64(agg.depth as u64);
        w.put_u64(agg.candidates as u64);
        w.put_u64(agg.seed);
        self.inner.encode_payload(&mut w);
        snapshot::seal_frame_into(SnapshotKind::HeavyHitters, w.as_bytes(), out);
    }

    /// Rebuild a sketch from [`Self::snapshot`] bytes (magic, version, kind,
    /// and checksum are validated before any state is interpreted). The
    /// restored sketch answers `query_f2` and `query_heavy_hitters`
    /// bit-identically and merges with same-parameter live sketches.
    pub fn restore_from(bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::HeavyHitters)?;
        let mut r = ByteReader::new(payload);
        let agg = F2HeavyAggregate {
            width: r.get_len()?,
            depth: r.get_len()?,
            candidates: r.get_len()?,
            seed: r.get_u64()?,
        };
        // The dimensions drive `width * depth` counter allocations per
        // bucket; reject anything outside the ranges `F2HeavyAggregate::new`
        // can produce before building a single sketch.
        if !(8..=1 << 16).contains(&agg.width)
            || !(1..=64).contains(&agg.depth)
            || !(8..=4096).contains(&agg.candidates)
        {
            return Err(crate::error::CoreError::Snapshot {
                detail: format!(
                    "heavy-hitter sketch dimensions out of range: width {}, depth {}, \
                     candidate capacity {}",
                    agg.width, agg.depth, agg.candidates
                ),
            });
        }
        let inner = CorrelatedSketch::decode_payload(agg, &mut r)?;
        r.expect_end()?;
        Ok(Self {
            inner,
            candidate_cache: std::sync::Mutex::new(GenCache::new(CANDIDATE_CACHE_CAPACITY)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_planted_heavy_hitter() {
        let y_max = 4095u64;
        let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, y_max, 100_000, 3).unwrap();
        // Item 7 is heavy among tuples with small y; item 8 is heavy only for
        // large y. Light noise everywhere.
        for i in 0..4_000u64 {
            hh.insert(7, i % 1000).unwrap();
            hh.insert(8, 3000 + (i % 1000)).unwrap();
            hh.insert(1000 + (i % 500), (i * 7) % (y_max + 1)).unwrap();
        }
        // At c = 1200, item 7 dominates F2(c) and item 8 contributes nothing.
        let hitters = hh.query_heavy_hitters(1200, 0.2).unwrap();
        assert!(
            hitters.iter().any(|h| h.item == 7),
            "expected item 7 among heavy hitters: {hitters:?}"
        );
        assert!(
            !hitters.iter().any(|h| h.item == 8),
            "item 8 has no occurrences below the threshold: {hitters:?}"
        );
        // At c = y_max both are heavy.
        let hitters = hh.query_heavy_hitters(y_max, 0.2).unwrap();
        let items: Vec<u64> = hitters.iter().map(|h| h.item).collect();
        assert!(items.contains(&7) && items.contains(&8), "items {items:?}");
    }

    #[test]
    fn f2_query_is_consistent_with_plain_f2() {
        let mut hh = CorrelatedHeavyHitters::with_seed(0.25, 0.1, 0.1, 1023, 10_000, 5).unwrap();
        let mut f2 = crate::f2::correlated_f2_seeded(0.25, 0.1, 1023, 10_000, 5).unwrap();
        for i in 0..5_000u64 {
            let x = i % 100;
            let y = (i * 13) % 1024;
            hh.insert(x, y).unwrap();
            f2.insert(x, y).unwrap();
        }
        let a = hh.query_f2(512).unwrap();
        let b = f2.query(512).unwrap();
        let rel = (a - b).abs() / b.max(1.0);
        assert!(rel < 0.25, "HH-F2 {a} vs plain F2 {b}");
    }

    #[test]
    fn no_heavy_hitters_on_uniform_stream() {
        let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.05, 1023, 50_000, 7).unwrap();
        for i in 0..20_000u64 {
            hh.insert(i % 2_000, i % 1024).unwrap();
        }
        // Every item has share ~ 1/2000, far below phi = 0.05.
        let hitters = hh.query_heavy_hitters(1023, 0.05).unwrap();
        assert!(hitters.is_empty(), "unexpected heavy hitters: {hitters:?}");
    }

    #[test]
    fn candidate_cache_serves_repeats_and_invalidates_on_update() {
        let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, 1023, 50_000, 3).unwrap();
        for i in 0..5_000u64 {
            hh.insert(7, i % 1024).unwrap();
            hh.insert(100 + (i % 400), (i * 13) % 1024).unwrap();
        }
        let first = hh.query_heavy_hitters(512, 0.1).unwrap();
        // Cached repeat (same c, same phi) answers identically.
        assert_eq!(hh.query_heavy_hitters(512, 0.1).unwrap(), first);
        // Same cached candidates, different phi: a looser threshold reports a
        // superset.
        let loose = hh.query_heavy_hitters(512, 0.01).unwrap();
        assert!(loose.len() >= first.len());
        for h in &first {
            assert!(loose.iter().any(|l| l.item == h.item));
        }
        // An update must invalidate the cache.
        for _ in 0..2_000 {
            hh.insert(9999, 100).unwrap();
        }
        let after = hh.query_heavy_hitters(512, 0.1).unwrap();
        assert!(
            after.iter().any(|h| h.item == 9999),
            "new heavy item missing after cache invalidation: {after:?}"
        );
    }

    #[test]
    fn merge_combines_shards_and_rejects_mismatch() {
        let build = || CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, 1023, 50_000, 3).unwrap();
        let mut a = build();
        let mut b = build();
        // Item 7 is heavy only when both shards are combined.
        for i in 0..3_000u64 {
            a.insert(7, i % 1024).unwrap();
            b.insert(7, (i * 3) % 1024).unwrap();
            a.insert(100 + (i % 300), (i * 7) % 1024).unwrap();
            b.insert(500 + (i % 300), (i * 11) % 1024).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.items_processed(), 12_000);
        let hitters = a.query_heavy_hitters(1023, 0.2).unwrap();
        assert!(
            hitters.iter().any(|h| h.item == 7),
            "merged shards must surface the jointly-heavy item: {hitters:?}"
        );
        let mut mismatched = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, 1023, 50_000, 4).unwrap();
        assert!(mismatched.merge_from(&build()).is_err());
        // A phi mismatch changes only the candidate capacity — invisible to
        // the framework config check — and must still be rejected.
        let mut coarse = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.2, 1023, 50_000, 3).unwrap();
        assert!(matches!(
            coarse.merge_from(&build()),
            Err(crate::error::CoreError::IncompatibleMerge { .. })
        ));
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, 4095, 100_000, 3).unwrap();
        for i in 0..6_000u64 {
            hh.insert(7, i % 1000).unwrap();
            hh.insert(1000 + (i % 400), (i * 7) % 4096).unwrap();
        }
        let bytes = hh.snapshot();
        let restored = CorrelatedHeavyHitters::restore_from(&bytes).unwrap();
        assert_eq!(restored.items_processed(), hh.items_processed());
        assert_eq!(restored.stored_tuples(), hh.stored_tuples());
        for c in (0..=4096u64).step_by(256) {
            assert_eq!(restored.query_f2(c).unwrap(), hh.query_f2(c).unwrap(), "c={c}");
            assert_eq!(
                restored.query_heavy_hitters(c, 0.05).unwrap(),
                hh.query_heavy_hitters(c, 0.05).unwrap(),
                "c={c}"
            );
        }
        // Merge compatibility survives the round trip.
        let mut shard = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.1, 4095, 100_000, 3).unwrap();
        for i in 0..2_000u64 {
            shard.insert(9, i % 4096).unwrap();
        }
        let mut a = hh.clone();
        let mut b = restored;
        a.merge_from(&shard).unwrap();
        b.merge_from(&shard).unwrap();
        for c in (0..=4096u64).step_by(1024) {
            assert_eq!(a.query_f2(c).unwrap(), b.query_f2(c).unwrap(), "c={c}");
            assert_eq!(
                a.query_heavy_hitters(c, 0.05).unwrap(),
                b.query_heavy_hitters(c, 0.05).unwrap(),
                "c={c}"
            );
        }
        assert_eq!(hh.snapshot(), bytes);
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let mut hh = CorrelatedHeavyHitters::with_seed(0.3, 0.1, 0.1, 255, 1000, 3).unwrap();
        for i in 0..300u64 {
            hh.insert(i % 10, i % 256).unwrap();
        }
        let bytes = hh.snapshot();
        let mut corrupt = bytes.clone();
        corrupt[40] ^= 2;
        assert!(matches!(
            CorrelatedHeavyHitters::restore_from(&corrupt),
            Err(crate::error::CoreError::Snapshot { .. })
        ));
        assert!(CorrelatedHeavyHitters::restore_from(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let hh = CorrelatedHeavyHitters::new(0.2, 0.1, 0.1, 255, 1000).unwrap();
        assert!(hh.query_heavy_hitters(100, 0.1).unwrap().is_empty());
        assert_eq!(hh.query_f2(100).unwrap(), 0.0);
        assert_eq!(hh.stored_tuples(), 0);
    }
}
