//! Dyadic intervals over the y domain `[0, y_max]`.
//!
//! The paper's bucket structure (Section 2.1) assigns every bucket a dyadic
//! interval: `[0, y_max]` is dyadic, and if `[a, b]` is dyadic with `a ≠ b`
//! then `[a, (a+b−1)/2]` and `[(a+b+1)/2, b]` are dyadic. `y_max` is padded to
//! `2^β − 1` so every dyadic interval has a power-of-two length and the tree
//! is a perfect binary tree of height `β`.

use crate::error::{CoreError, Result};

/// A dyadic interval `[lo, hi]` (inclusive on both ends).
#[allow(clippy::len_without_is_empty)] // a closed interval is never empty
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DyadicInterval {
    /// Inclusive lower endpoint.
    pub lo: u64,
    /// Inclusive upper endpoint.
    pub hi: u64,
}

impl DyadicInterval {
    /// The root interval `[0, padded_y_max]` for a given `y_max`.
    ///
    /// `y_max` is rounded up to the next value of the form `2^β − 1` as the
    /// paper assumes ("without loss of generality, assume that `y_max` is of
    /// the form `2^β − 1`").
    pub fn root(y_max: u64) -> Self {
        Self {
            lo: 0,
            hi: pad_y_max(y_max),
        }
    }

    /// Construct an interval after validating `lo ≤ hi`.
    pub fn new(lo: u64, hi: u64) -> Result<Self> {
        if lo > hi {
            return Err(CoreError::InvalidParameter {
                name: "interval",
                detail: format!("lo {lo} > hi {hi}"),
            });
        }
        Ok(Self { lo, hi })
    }

    /// Number of y values covered.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// True iff the interval covers a single y value (a leaf of the dyadic tree).
    pub fn is_unit(&self) -> bool {
        self.lo == self.hi
    }

    /// True iff `y` falls inside the interval.
    #[inline]
    pub fn contains(&self, y: u64) -> bool {
        self.lo <= y && y <= self.hi
    }

    /// True iff this interval is entirely inside `[0, c]`.
    #[inline]
    pub fn within_threshold(&self, c: u64) -> bool {
        self.hi <= c
    }

    /// True iff this interval intersects `[0, c]` but is not contained in it.
    #[inline]
    pub fn straddles_threshold(&self, c: u64) -> bool {
        self.lo <= c && self.hi > c
    }

    /// The two dyadic children, or `None` for a unit interval.
    pub fn children(&self) -> Option<(DyadicInterval, DyadicInterval)> {
        if self.is_unit() {
            return None;
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        Some((
            DyadicInterval { lo: self.lo, hi: mid },
            DyadicInterval { lo: mid + 1, hi: self.hi },
        ))
    }

    /// The child containing `y`, or `None` for a unit interval or `y` outside.
    pub fn child_containing(&self, y: u64) -> Option<DyadicInterval> {
        let (left, right) = self.children()?;
        if left.contains(y) {
            Some(left)
        } else if right.contains(y) {
            Some(right)
        } else {
            None
        }
    }

    /// The dyadic parent within the tree rooted at `[0, root_hi]`, or `None`
    /// if this is the root.
    pub fn parent(&self, root_hi: u64) -> Option<DyadicInterval> {
        if self.lo == 0 && self.hi == root_hi {
            return None;
        }
        let len = self.len();
        let parent_len = len * 2;
        let parent_lo = (self.lo / parent_len) * parent_len;
        Some(DyadicInterval {
            lo: parent_lo,
            hi: parent_lo + parent_len - 1,
        })
    }

    /// The number of dyadic intervals of the canonical decomposition of
    /// `[0, c]` that straddle `c` at any one depth is at most one; across all
    /// depths it is at most `log2(y_max)+1`. This helper returns the dyadic
    /// intervals (one per depth, from the root down) on the root-to-leaf path
    /// of `y` — exactly the intervals that can straddle a threshold at `y`.
    pub fn path_to(root: DyadicInterval, y: u64) -> Vec<DyadicInterval> {
        let mut path = Vec::new();
        let mut current = root;
        loop {
            path.push(current);
            match current.child_containing(y) {
                Some(child) => current = child,
                None => break,
            }
        }
        path
    }
}

/// Round `y_max` up to the next value of the form `2^β − 1` (minimum 1).
pub fn pad_y_max(y_max: u64) -> u64 {
    let mut v: u64 = 2;
    while v - 1 < y_max && v < (1 << 62) {
        v <<= 1;
    }
    v - 1
}

/// `log2(padded y_max + 1)`: the height of the dyadic tree.
pub fn tree_height(y_max: u64) -> u32 {
    (pad_y_max(y_max) + 1).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_produces_all_ones() {
        assert_eq!(pad_y_max(0), 1); // minimum non-degenerate domain
        assert_eq!(pad_y_max(1), 1);
        assert_eq!(pad_y_max(2), 3);
        assert_eq!(pad_y_max(7), 7);
        assert_eq!(pad_y_max(8), 15);
        assert_eq!(pad_y_max(1_000_000), (1 << 20) - 1);
    }

    #[test]
    fn tree_height_matches_padding() {
        assert_eq!(tree_height(1), 1);
        assert_eq!(tree_height(7), 3);
        assert_eq!(tree_height(1_000_000), 20);
    }

    #[test]
    fn new_validates_order() {
        assert!(DyadicInterval::new(3, 2).is_err());
        assert!(DyadicInterval::new(2, 3).is_ok());
    }

    #[test]
    fn children_split_evenly() {
        let root = DyadicInterval::root(7);
        assert_eq!(root, DyadicInterval { lo: 0, hi: 7 });
        let (l, r) = root.children().unwrap();
        assert_eq!(l, DyadicInterval { lo: 0, hi: 3 });
        assert_eq!(r, DyadicInterval { lo: 4, hi: 7 });
        assert_eq!(l.len(), r.len());
        assert!(DyadicInterval { lo: 5, hi: 5 }.children().is_none());
    }

    #[test]
    fn child_containing_selects_correctly() {
        let root = DyadicInterval::root(15);
        assert_eq!(root.child_containing(3).unwrap(), DyadicInterval { lo: 0, hi: 7 });
        assert_eq!(root.child_containing(8).unwrap(), DyadicInterval { lo: 8, hi: 15 });
        assert!(DyadicInterval { lo: 4, hi: 4 }.child_containing(4).is_none());
    }

    #[test]
    fn parent_inverts_children() {
        let root = DyadicInterval::root(31);
        let (l, r) = root.children().unwrap();
        assert_eq!(l.parent(root.hi).unwrap(), root);
        assert_eq!(r.parent(root.hi).unwrap(), root);
        assert!(root.parent(root.hi).is_none());
        let (ll, lr) = l.children().unwrap();
        assert_eq!(ll.parent(root.hi).unwrap(), l);
        assert_eq!(lr.parent(root.hi).unwrap(), l);
    }

    #[test]
    fn threshold_predicates() {
        let iv = DyadicInterval { lo: 4, hi: 7 };
        assert!(iv.within_threshold(7));
        assert!(iv.within_threshold(100));
        assert!(!iv.within_threshold(6));
        assert!(iv.straddles_threshold(5));
        assert!(!iv.straddles_threshold(3)); // entirely above
        assert!(!iv.straddles_threshold(7)); // entirely below or equal
        assert!(iv.contains(4) && iv.contains(7) && !iv.contains(8));
    }

    #[test]
    fn path_to_walks_root_to_leaf() {
        let root = DyadicInterval::root(15);
        let path = DyadicInterval::path_to(root, 5);
        assert_eq!(path.len(), 5); // heights 16, 8, 4, 2, 1
        assert_eq!(path[0], root);
        assert_eq!(*path.last().unwrap(), DyadicInterval { lo: 5, hi: 5 });
        for w in path.windows(2) {
            assert!(w[0].len() == w[1].len() * 2);
            assert!(w[0].contains(5) && w[1].contains(5));
        }
    }

    #[test]
    fn unit_interval_properties() {
        let u = DyadicInterval { lo: 9, hi: 9 };
        assert!(u.is_unit());
        assert_eq!(u.len(), 1);
    }
}
