//! Exact correlated aggregates: the linear-storage baseline.
//!
//! [`ExactCorrelated`] stores every tuple, exactly as the "existing linear
//! storage solutions" the paper's experiments compare against. It answers any
//! correlated aggregate exactly and is the ground truth used by the accuracy
//! harness (experiment E8) and the integration tests.

use std::collections::BTreeMap;

use cora_sketch::ExactFrequencies;

/// Exact, linear-space store of an `(x, y, w)` stream, indexed by y.
#[derive(Debug, Clone, Default)]
pub struct ExactCorrelated {
    /// y -> list of (x, weight) tuples carrying that y value.
    by_y: BTreeMap<u64, Vec<(u64, i64)>>,
    tuples: usize,
}

impl ExactCorrelated {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a tuple with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) {
        self.update(x, y, 1);
    }

    /// Insert a tuple with an arbitrary (possibly negative) weight.
    pub fn update(&mut self, x: u64, y: u64, weight: i64) {
        self.by_y.entry(y).or_default().push((x, weight));
        self.tuples += 1;
    }

    /// Number of stored tuples (linear in the stream length by design).
    pub fn stored_tuples(&self) -> usize {
        self.tuples
    }

    /// The exact frequency vector of the selection `{x : y ≤ c}`.
    pub fn frequencies_upto(&self, c: u64) -> ExactFrequencies {
        let mut freqs = ExactFrequencies::new();
        for (_, tuples) in self.by_y.range(..=c) {
            for &(x, w) in tuples {
                cora_sketch::StreamSketch::update(&mut freqs, x, w);
            }
        }
        freqs
    }

    /// Exact correlated frequency moment `F_k({x : y ≤ c})`.
    pub fn frequency_moment(&self, k: u32, c: u64) -> f64 {
        self.frequencies_upto(c).frequency_moment(k)
    }

    /// Exact correlated distinct count.
    pub fn distinct_count(&self, c: u64) -> f64 {
        self.frequency_moment(0, c)
    }

    /// Exact correlated sum of weights.
    pub fn sum(&self, c: u64) -> i64 {
        self.by_y
            .range(..=c)
            .flat_map(|(_, tuples)| tuples.iter())
            .map(|&(_, w)| w)
            .sum()
    }

    /// Exact correlated count of tuples.
    pub fn count(&self, c: u64) -> usize {
        self.by_y.range(..=c).map(|(_, tuples)| tuples.len()).sum()
    }

    /// Exact correlated `F_2`-heavy hitters: items whose squared frequency is
    /// at least `phi · F_2(c)`.
    pub fn f2_heavy_hitters(&self, c: u64, phi: f64) -> Vec<(u64, i64)> {
        self.frequencies_upto(c).f2_heavy_hitters(phi)
    }

    /// Exact correlated rarity.
    pub fn rarity(&self, c: u64) -> f64 {
        self.frequencies_upto(c).rarity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExactCorrelated {
        let mut e = ExactCorrelated::new();
        // y=10: items 1,1,2 ; y=20: items 2,3 ; y=30: item 3.
        e.insert(1, 10);
        e.insert(1, 10);
        e.insert(2, 10);
        e.insert(2, 20);
        e.insert(3, 20);
        e.insert(3, 30);
        e
    }

    #[test]
    fn moments_by_threshold() {
        let e = sample();
        // c=10: freqs {1:2, 2:1} -> F2 = 5, F0 = 2, F1 = 3.
        assert_eq!(e.frequency_moment(2, 10), 5.0);
        assert_eq!(e.distinct_count(10), 2.0);
        assert_eq!(e.count(10), 3);
        assert_eq!(e.sum(10), 3);
        // c=20: freqs {1:2, 2:2, 3:1} -> F2 = 9.
        assert_eq!(e.frequency_moment(2, 20), 9.0);
        // c=30 (everything): freqs {1:2, 2:2, 3:2} -> F2 = 12, F3 = 24.
        assert_eq!(e.frequency_moment(2, 30), 12.0);
        assert_eq!(e.frequency_moment(3, 30), 24.0);
        // Below every y value: empty selection.
        assert_eq!(e.frequency_moment(2, 5), 0.0);
        assert_eq!(e.distinct_count(5), 0.0);
    }

    #[test]
    fn heavy_hitters_and_rarity() {
        let e = sample();
        // c=10: item 1 has share 4/5 >= 0.5.
        let hh = e.f2_heavy_hitters(10, 0.5);
        assert_eq!(hh, vec![(1, 2)]);
        // c=10 rarity: {1:2, 2:1} -> one singleton out of two items.
        assert!((e.rarity(10) - 0.5).abs() < 1e-12);
        // c=30 rarity: all items occur twice -> 0.
        assert_eq!(e.rarity(30), 0.0);
    }

    #[test]
    fn weighted_and_negative_updates() {
        let mut e = ExactCorrelated::new();
        e.update(1, 5, 10);
        e.update(1, 8, -10);
        assert_eq!(e.sum(5), 10);
        assert_eq!(e.sum(8), 0);
        assert_eq!(e.frequency_moment(2, 8), 0.0);
        assert_eq!(e.stored_tuples(), 2);
    }

    #[test]
    fn storage_is_linear() {
        let mut e = ExactCorrelated::new();
        for i in 0..1000u64 {
            e.insert(i % 10, i);
        }
        assert_eq!(e.stored_tuples(), 1000);
    }
}
