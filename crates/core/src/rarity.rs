//! Correlated rarity (Section 3.3 of the paper).
//!
//! Rarity is the fraction of distinct items that occur exactly once. In the
//! correlated setting the multiset is restricted to tuples with `y ≤ c` for a
//! query-time `c`. The paper notes that the same distinct-sampling structure
//! used for correlated `F_0` can be augmented with per-item occurrence
//! information; here each sampled identifier remembers the **two smallest y
//! values** of its occurrences, which is exactly enough to decide, for any
//! `c`, whether the identifier occurs zero times (`c < y₁`), exactly once
//! (`y₁ ≤ c < y₂`) or at least twice (`c ≥ y₂`) among tuples with `y ≤ c`.
//! Rarity is then the ratio of the two counts over the sample at the chosen
//! level (the `2^level` scale factors cancel).

use crate::compose::{first_answering, min_watermark};
use crate::config::DEFAULT_SEED;
use crate::error::{CoreError, Result};
use crate::snapshot::{self, SnapshotKind};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use cora_sketch::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::{BTreeSet, HashMap};

/// Occurrence record: the two smallest y values seen for an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoSmallest {
    y1: u64,
    y2: Option<u64>,
}

impl TwoSmallest {
    fn new(y: u64) -> Self {
        Self { y1: y, y2: None }
    }

    fn observe(&mut self, y: u64) {
        if y < self.y1 {
            self.y2 = Some(self.y1);
            self.y1 = y;
        } else {
            match self.y2 {
                None => self.y2 = Some(y),
                Some(existing) if y < existing => self.y2 = Some(y),
                _ => {}
            }
        }
    }

    /// Fold another record for the same identifier into this one: the two
    /// smallest occurrences of the union are the two smallest of the (at
    /// most four) recorded occurrences.
    fn merge_from(&mut self, other: &Self) {
        self.observe(other.y1);
        if let Some(y2) = other.y2 {
            self.observe(y2);
        }
    }

    /// Occurrence count among tuples with `y ≤ c`, capped at 2.
    fn occurrences_upto(&self, c: u64) -> u8 {
        if c < self.y1 {
            0
        } else {
            match self.y2 {
                Some(y2) if c >= y2 => 2,
                _ => 1,
            }
        }
    }
}

/// One sampling level of the rarity sketch.
#[derive(Debug, Clone)]
struct RarityLevel {
    by_item: HashMap<u64, TwoSmallest>,
    by_y: BTreeSet<(u64, u64)>,
    evicted_watermark: Option<u64>,
}

impl RarityLevel {
    fn new() -> Self {
        Self {
            by_item: HashMap::new(),
            by_y: BTreeSet::new(),
            evicted_watermark: None,
        }
    }

    fn insert(&mut self, item: u64, y: u64, capacity: usize) {
        match self.by_item.get_mut(&item) {
            Some(record) => {
                let old_y1 = record.y1;
                record.observe(y);
                if record.y1 != old_y1 {
                    self.by_y.remove(&(old_y1, item));
                    self.by_y.insert((record.y1, item));
                }
            }
            None => {
                self.by_item.insert(item, TwoSmallest::new(y));
                self.by_y.insert((y, item));
            }
        }
        while self.by_item.len() > capacity {
            let &(largest_y, victim) = self
                .by_y
                .iter()
                .next_back()
                .expect("len > capacity >= 1, so non-empty");
            self.by_y.remove(&(largest_y, victim));
            self.by_item.remove(&victim);
            self.evicted_watermark = Some(match self.evicted_watermark {
                None => largest_y,
                Some(w) => w.min(largest_y),
            });
        }
    }

    /// Merge another level's sample: per-item records fold their two-smallest
    /// occurrence lists together, the watermark drops to the lower of the
    /// two, and the capacity is re-enforced.
    fn merge_from(&mut self, other: &Self, capacity: usize) {
        for (&item, record) in &other.by_item {
            match self.by_item.get_mut(&item) {
                Some(mine) => {
                    let old_y1 = mine.y1;
                    mine.merge_from(record);
                    if mine.y1 != old_y1 {
                        self.by_y.remove(&(old_y1, item));
                        self.by_y.insert((mine.y1, item));
                    }
                }
                None => {
                    self.by_item.insert(item, *record);
                    self.by_y.insert((record.y1, item));
                }
            }
            while self.by_item.len() > capacity {
                let &(largest_y, victim) = self
                    .by_y
                    .iter()
                    .next_back()
                    .expect("len > capacity >= 1, so non-empty");
                self.by_y.remove(&(largest_y, victim));
                self.by_item.remove(&victim);
                self.evicted_watermark = Some(match self.evicted_watermark {
                    None => largest_y,
                    Some(w) => w.min(largest_y),
                });
            }
        }
        self.evicted_watermark = min_watermark(self.evicted_watermark, other.evicted_watermark);
    }

    /// `(distinct items with ≥1 occurrence, items with exactly 1 occurrence)`
    /// among the retained sample, restricted to `y ≤ c`.
    fn counts_upto(&self, c: u64) -> (usize, usize) {
        let mut present = 0usize;
        let mut singletons = 0usize;
        for (_, item) in self.by_y.range(..=(c, u64::MAX)) {
            match self.by_item[item].occurrences_upto(c) {
                0 => {}
                1 => {
                    present += 1;
                    singletons += 1;
                }
                _ => present += 1,
            }
        }
        (present, singletons)
    }
}

/// Correlated rarity sketch.
#[derive(Debug, Clone)]
pub struct CorrelatedRarity {
    hash: PolynomialHash,
    levels: Vec<RarityLevel>,
    capacity: usize,
    y_max: u64,
    epsilon: f64,
    seed: u64,
    items_processed: u64,
}

impl CorrelatedRarity {
    /// Build a correlated rarity sketch.
    pub fn new(epsilon: f64, x_domain_log2: u32, y_max: u64) -> Result<Self> {
        Self::with_seed(epsilon, x_domain_log2, y_max, DEFAULT_SEED)
    }

    /// [`CorrelatedRarity::new`] with an explicit seed.
    pub fn with_seed(epsilon: f64, x_domain_log2: u32, y_max: u64, seed: u64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in (0,1), got {epsilon}"),
            });
        }
        if x_domain_log2 == 0 || x_domain_log2 > 63 {
            return Err(CoreError::InvalidParameter {
                name: "x_domain_log2",
                detail: format!("must be in [1, 63], got {x_domain_log2}"),
            });
        }
        let capacity = ((8.0 / (epsilon * epsilon)).ceil() as usize).max(32);
        Ok(Self {
            hash: PolynomialHash::new(2, derive_seed(seed, 0x4A41)),
            levels: (0..=x_domain_log2 as usize).map(|_| RarityLevel::new()).collect(),
            capacity,
            y_max,
            epsilon,
            seed,
            items_processed: 0,
        })
    }

    /// Merge `other` into `self`: level-wise union of the samples, keeping
    /// each identifier's two smallest occurrences across both shards.
    /// Requires identical construction parameters and seed (shared hash
    /// functions make the union a valid sample of the union stream).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.epsilon != other.epsilon
            || self.y_max != other.y_max
            || self.seed != other.seed
            || self.levels.len() != other.levels.len()
            || self.capacity != other.capacity
        {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "CorrelatedRarity parameters differ: (eps {}, y_max {}, seed {:#x}, {} levels) \
                     vs (eps {}, y_max {}, seed {:#x}, {} levels)",
                    self.epsilon, self.y_max, self.seed, self.levels.len(),
                    other.epsilon, other.y_max, other.seed, other.levels.len()
                ),
            });
        }
        let capacity = self.capacity;
        for (level, other_level) in self.levels.iter_mut().zip(&other.levels) {
            level.merge_from(other_level, capacity);
        }
        self.items_processed += other.items_processed;
        Ok(())
    }

    /// Process a stream element `(x, y)`.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        if y > self.y_max {
            return Err(CoreError::YOutOfRange { y, y_max: self.y_max });
        }
        self.items_processed += 1;
        let deepest = (self.hash.hash64(x).leading_zeros() as usize).min(self.levels.len() - 1);
        let capacity = self.capacity;
        for level in self.levels.iter_mut().take(deepest + 1) {
            level.insert(x, y, capacity);
        }
        Ok(())
    }

    /// Estimate the rarity of the multiset `{x : (x, y) ∈ S, y ≤ c}`: the
    /// fraction of distinct identifiers occurring exactly once. Returns 0 for
    /// an empty selection.
    pub fn query(&self, c: u64) -> Result<f64> {
        let c = c.min(self.y_max);
        // Same level-selection rule as Algorithm 3: the smallest level whose
        // eviction watermark still covers the threshold.
        let Some((_, level)) = first_answering(&self.levels, c, |l| l.evicted_watermark) else {
            return Err(CoreError::QueryFailed { threshold: c });
        };
        let (present, singletons) = level.counts_upto(c);
        if present == 0 {
            return Ok(0.0);
        }
        Ok(singletons as f64 / present as f64)
    }

    /// Target relative error.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Largest accepted y value.
    pub fn y_max(&self) -> u64 {
        self.y_max
    }

    /// Master seed the sampler hash function derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `log2` of the identifier domain this sketch was built for.
    pub fn x_domain_log2(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// Total stored tuples.
    pub fn stored_tuples(&self) -> usize {
        self.levels.iter().map(|l| l.by_item.len()).sum()
    }

    /// Number of stream elements processed.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Serialise the sketch into a versioned, checksummed snapshot frame
    /// (see [`crate::snapshot`]); parameters and seed travel in the payload,
    /// so [`Self::restore_from`] needs only the bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`Self::snapshot`], appending the frame to a caller-provided buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        w.put_f64(self.epsilon);
        w.put_u64(self.y_max);
        w.put_u64(self.seed);
        w.put_u32((self.levels.len() - 1) as u32);
        w.put_u64(self.items_processed);
        w.put_len(self.levels.len());
        for level in &self.levels {
            w.put_opt_u64(level.evicted_watermark);
            let mut entries: Vec<(u64, TwoSmallest)> = level
                .by_item
                .iter()
                .map(|(&item, record)| (item, *record))
                .collect();
            entries.sort_unstable_by_key(|&(item, _)| item);
            w.put_len(entries.len());
            for (item, record) in entries {
                w.put_u64(item);
                w.put_u64(record.y1);
                w.put_opt_u64(record.y2);
            }
        }
        snapshot::seal_frame_into(SnapshotKind::Rarity, w.as_bytes(), out);
    }

    /// Rebuild a sketch from [`Self::snapshot`] bytes (magic, version, kind,
    /// and checksum are validated before any state is interpreted).
    pub fn restore_from(bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::Rarity)?;
        let mut r = ByteReader::new(payload);
        let epsilon = r.get_f64()?;
        let y_max = r.get_u64()?;
        let seed = r.get_u64()?;
        let x_domain_log2 = r.get_u32()?;
        let mut sketch = Self::with_seed(epsilon, x_domain_log2, y_max, seed)?;
        sketch.items_processed = r.get_u64()?;
        let corrupt = |detail: String| CoreError::from(CodecError::Corrupt(detail));
        let levels = r.get_len()?;
        if levels != sketch.levels.len() {
            return Err(corrupt(format!(
                "snapshot has {levels} levels, parameters derive {}",
                sketch.levels.len()
            )));
        }
        let capacity = sketch.capacity;
        for level in &mut sketch.levels {
            level.evicted_watermark = r.get_opt_u64()?;
            let m = r.get_len()?;
            if m > capacity {
                return Err(corrupt(format!(
                    "snapshot level holds {m} entries, capacity is {capacity}"
                )));
            }
            let mut prev: Option<u64> = None;
            for _ in 0..m {
                let item = r.get_u64()?;
                if prev.is_some_and(|p| p >= item) {
                    return Err(corrupt("rarity entries out of order".into()));
                }
                prev = Some(item);
                let y1 = r.get_u64()?;
                let y2 = r.get_opt_u64()?;
                if y2.is_some_and(|y2| y2 < y1) {
                    return Err(corrupt(format!(
                        "occurrence record for item {item} is unordered: y1 {y1} > y2 {y2:?}"
                    )));
                }
                level.by_item.insert(item, TwoSmallest { y1, y2 });
                level.by_y.insert((y1, item));
            }
        }
        r.expect_end()?;
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(CorrelatedRarity::new(0.0, 20, 100).is_err());
        assert!(CorrelatedRarity::new(0.2, 0, 100).is_err());
        assert!(CorrelatedRarity::new(0.2, 20, 100).is_ok());
    }

    #[test]
    fn two_smallest_tracking() {
        let mut t = TwoSmallest::new(50);
        assert_eq!(t.occurrences_upto(49), 0);
        assert_eq!(t.occurrences_upto(50), 1);
        t.observe(80);
        assert_eq!(t.occurrences_upto(70), 1);
        assert_eq!(t.occurrences_upto(80), 2);
        t.observe(10);
        assert_eq!(t.y1, 10);
        assert_eq!(t.y2, Some(50));
        assert_eq!(t.occurrences_upto(30), 1);
        assert_eq!(t.occurrences_upto(60), 2);
    }

    #[test]
    fn exact_rarity_on_small_stream() {
        let mut r = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        // Items 0..10 appear once with y = 10*x; items 100..105 appear twice
        // (y = 5 and y = 600).
        for x in 0..10u64 {
            r.insert(x, x * 10).unwrap();
        }
        for x in 100..105u64 {
            r.insert(x, 5).unwrap();
            r.insert(x, 600).unwrap();
        }
        // At c = 95: items 0..10 (singletons) and 100..105 (each seen once so far).
        let rarity = r.query(95).unwrap();
        assert!((rarity - 1.0).abs() < 1e-9);
        // At c = 1000: 10 singletons out of 15 distinct items.
        let rarity = r.query(1000).unwrap();
        assert!((rarity - 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_has_zero_rarity() {
        let mut r = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        r.insert(1, 500).unwrap();
        assert_eq!(r.query(100).unwrap(), 0.0);
    }

    #[test]
    fn rejects_out_of_range_y() {
        let mut r = CorrelatedRarity::new(0.2, 16, 100).unwrap();
        assert!(r.insert(1, 101).is_err());
    }

    #[test]
    fn merge_matches_sequential_on_small_streams() {
        let build = || CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        let mut seq = build();
        let mut left = build();
        let mut right = build();
        // Items occur once or twice, split across shards so some pairs are
        // torn (each shard sees one occurrence of a twice-occurring item).
        for x in 0..60u64 {
            let y1 = (x * 13) % 1001;
            seq.insert(x, y1).unwrap();
            left.insert(x, y1).unwrap();
            if x % 3 == 0 {
                let y2 = (x * 31) % 1001;
                seq.insert(x, y2).unwrap();
                right.insert(x, y2).unwrap();
            }
        }
        left.merge_from(&right).unwrap();
        assert_eq!(left.items_processed(), seq.items_processed());
        for c in (0..=1000u64).step_by(125) {
            assert_eq!(left.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_parameters() {
        let mut a = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        let seed = CorrelatedRarity::with_seed(0.2, 16, 1000, 4).unwrap();
        let eps = CorrelatedRarity::with_seed(0.3, 16, 1000, 3).unwrap();
        let levels = CorrelatedRarity::with_seed(0.2, 18, 1000, 3).unwrap();
        for other in [&seed, &eps, &levels] {
            assert!(matches!(
                a.merge_from(other),
                Err(CoreError::IncompatibleMerge { .. })
            ));
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut s = CorrelatedRarity::with_seed(0.2, 18, 1 << 18, 7).unwrap();
        for x in 0..20_000u64 {
            s.insert(x % 6_000, (x * 13) % (1 << 18)).unwrap();
        }
        let bytes = s.snapshot();
        let restored = CorrelatedRarity::restore_from(&bytes).unwrap();
        assert_eq!(restored.items_processed(), s.items_processed());
        assert_eq!(restored.stored_tuples(), s.stored_tuples());
        for c in (0..=(1u64 << 18)).step_by(1 << 13) {
            assert_eq!(restored.query(c).unwrap(), s.query(c).unwrap(), "c={c}");
        }
        // Merge compatibility survives the round trip.
        let mut shard = CorrelatedRarity::with_seed(0.2, 18, 1 << 18, 7).unwrap();
        for x in 0..400u64 {
            shard.insert(7_000 + x, x).unwrap();
        }
        let mut a = s.clone();
        let mut b = restored;
        a.merge_from(&shard).unwrap();
        b.merge_from(&shard).unwrap();
        for c in (0..=(1u64 << 18)).step_by(1 << 14) {
            assert_eq!(a.query(c).unwrap(), b.query(c).unwrap(), "c={c}");
        }
        assert_eq!(s.snapshot(), bytes);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut s = CorrelatedRarity::with_seed(0.3, 12, 1000, 3).unwrap();
        for x in 0..150u64 {
            s.insert(x, (x * 3) % 1001).unwrap();
        }
        let bytes = s.snapshot();
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x80;
        assert!(matches!(
            CorrelatedRarity::restore_from(&corrupt),
            Err(CoreError::Snapshot { .. })
        ));
        assert!(CorrelatedRarity::restore_from(&bytes[..10]).is_err());
    }

    #[test]
    fn approximate_rarity_on_large_stream() {
        let epsilon = 0.15;
        let mut r = CorrelatedRarity::with_seed(epsilon, 20, 1 << 20, 7).unwrap();
        // 40k identifiers: even ids occur once (y = id), odd ids occur twice
        // (y = id and y = id + 2^19). True rarity at c = 2^19: ids <= 2^19 all
        // occur exactly once => rarity 1.0; at c = 2^20: odd ids occur twice.
        let n = 40_000u64;
        for x in 0..n {
            r.insert(x, x).unwrap();
            if x % 2 == 1 {
                r.insert(x, x + (1 << 19)).unwrap();
            }
        }
        let rarity_low = r.query((1 << 19) - 1).unwrap();
        assert!(
            (rarity_low - 1.0).abs() < 0.05,
            "rarity below the fold should be ~1.0, got {rarity_low}"
        );
        let rarity_full = r.query(1 << 20).unwrap();
        assert!(
            (rarity_full - 0.5).abs() < 3.0 * epsilon,
            "full rarity should be ~0.5, got {rarity_full}"
        );
        assert!(r.stored_tuples() < n as usize);
    }
}
