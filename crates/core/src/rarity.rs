//! Correlated rarity (Section 3.3 of the paper).
//!
//! Rarity is the fraction of distinct items that occur exactly once. In the
//! correlated setting the multiset is restricted to tuples with `y ≤ c` for a
//! query-time `c`. The paper notes that the same distinct-sampling structure
//! used for correlated `F_0` can be augmented with per-item occurrence
//! information; here each sampled identifier remembers the **two smallest y
//! values** of its occurrences, which is exactly enough to decide, for any
//! `c`, whether the identifier occurs zero times (`c < y₁`), exactly once
//! (`y₁ ≤ c < y₂`) or at least twice (`c ≥ y₂`) among tuples with `y ≤ c`.
//! Rarity is then the ratio of the two counts over the sample at the chosen
//! level (the `2^level` scale factors cancel).

use crate::compose::{first_answering, min_watermark};
use crate::config::DEFAULT_SEED;
use crate::error::{CoreError, Result};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use std::collections::{BTreeSet, HashMap};

/// Occurrence record: the two smallest y values seen for an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoSmallest {
    y1: u64,
    y2: Option<u64>,
}

impl TwoSmallest {
    fn new(y: u64) -> Self {
        Self { y1: y, y2: None }
    }

    fn observe(&mut self, y: u64) {
        if y < self.y1 {
            self.y2 = Some(self.y1);
            self.y1 = y;
        } else {
            match self.y2 {
                None => self.y2 = Some(y),
                Some(existing) if y < existing => self.y2 = Some(y),
                _ => {}
            }
        }
    }

    /// Fold another record for the same identifier into this one: the two
    /// smallest occurrences of the union are the two smallest of the (at
    /// most four) recorded occurrences.
    fn merge_from(&mut self, other: &Self) {
        self.observe(other.y1);
        if let Some(y2) = other.y2 {
            self.observe(y2);
        }
    }

    /// Occurrence count among tuples with `y ≤ c`, capped at 2.
    fn occurrences_upto(&self, c: u64) -> u8 {
        if c < self.y1 {
            0
        } else {
            match self.y2 {
                Some(y2) if c >= y2 => 2,
                _ => 1,
            }
        }
    }
}

/// One sampling level of the rarity sketch.
#[derive(Debug, Clone)]
struct RarityLevel {
    by_item: HashMap<u64, TwoSmallest>,
    by_y: BTreeSet<(u64, u64)>,
    evicted_watermark: Option<u64>,
}

impl RarityLevel {
    fn new() -> Self {
        Self {
            by_item: HashMap::new(),
            by_y: BTreeSet::new(),
            evicted_watermark: None,
        }
    }

    fn insert(&mut self, item: u64, y: u64, capacity: usize) {
        match self.by_item.get_mut(&item) {
            Some(record) => {
                let old_y1 = record.y1;
                record.observe(y);
                if record.y1 != old_y1 {
                    self.by_y.remove(&(old_y1, item));
                    self.by_y.insert((record.y1, item));
                }
            }
            None => {
                self.by_item.insert(item, TwoSmallest::new(y));
                self.by_y.insert((y, item));
            }
        }
        while self.by_item.len() > capacity {
            let &(largest_y, victim) = self
                .by_y
                .iter()
                .next_back()
                .expect("len > capacity >= 1, so non-empty");
            self.by_y.remove(&(largest_y, victim));
            self.by_item.remove(&victim);
            self.evicted_watermark = Some(match self.evicted_watermark {
                None => largest_y,
                Some(w) => w.min(largest_y),
            });
        }
    }

    /// Merge another level's sample: per-item records fold their two-smallest
    /// occurrence lists together, the watermark drops to the lower of the
    /// two, and the capacity is re-enforced.
    fn merge_from(&mut self, other: &Self, capacity: usize) {
        for (&item, record) in &other.by_item {
            match self.by_item.get_mut(&item) {
                Some(mine) => {
                    let old_y1 = mine.y1;
                    mine.merge_from(record);
                    if mine.y1 != old_y1 {
                        self.by_y.remove(&(old_y1, item));
                        self.by_y.insert((mine.y1, item));
                    }
                }
                None => {
                    self.by_item.insert(item, *record);
                    self.by_y.insert((record.y1, item));
                }
            }
            while self.by_item.len() > capacity {
                let &(largest_y, victim) = self
                    .by_y
                    .iter()
                    .next_back()
                    .expect("len > capacity >= 1, so non-empty");
                self.by_y.remove(&(largest_y, victim));
                self.by_item.remove(&victim);
                self.evicted_watermark = Some(match self.evicted_watermark {
                    None => largest_y,
                    Some(w) => w.min(largest_y),
                });
            }
        }
        self.evicted_watermark = min_watermark(self.evicted_watermark, other.evicted_watermark);
    }

    /// `(distinct items with ≥1 occurrence, items with exactly 1 occurrence)`
    /// among the retained sample, restricted to `y ≤ c`.
    fn counts_upto(&self, c: u64) -> (usize, usize) {
        let mut present = 0usize;
        let mut singletons = 0usize;
        for (_, item) in self.by_y.range(..=(c, u64::MAX)) {
            match self.by_item[item].occurrences_upto(c) {
                0 => {}
                1 => {
                    present += 1;
                    singletons += 1;
                }
                _ => present += 1,
            }
        }
        (present, singletons)
    }
}

/// Correlated rarity sketch.
#[derive(Debug, Clone)]
pub struct CorrelatedRarity {
    hash: PolynomialHash,
    levels: Vec<RarityLevel>,
    capacity: usize,
    y_max: u64,
    epsilon: f64,
    seed: u64,
    items_processed: u64,
}

impl CorrelatedRarity {
    /// Build a correlated rarity sketch.
    pub fn new(epsilon: f64, x_domain_log2: u32, y_max: u64) -> Result<Self> {
        Self::with_seed(epsilon, x_domain_log2, y_max, DEFAULT_SEED)
    }

    /// [`CorrelatedRarity::new`] with an explicit seed.
    pub fn with_seed(epsilon: f64, x_domain_log2: u32, y_max: u64, seed: u64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in (0,1), got {epsilon}"),
            });
        }
        if x_domain_log2 == 0 || x_domain_log2 > 63 {
            return Err(CoreError::InvalidParameter {
                name: "x_domain_log2",
                detail: format!("must be in [1, 63], got {x_domain_log2}"),
            });
        }
        let capacity = ((8.0 / (epsilon * epsilon)).ceil() as usize).max(32);
        Ok(Self {
            hash: PolynomialHash::new(2, derive_seed(seed, 0x4A41)),
            levels: (0..=x_domain_log2 as usize).map(|_| RarityLevel::new()).collect(),
            capacity,
            y_max,
            epsilon,
            seed,
            items_processed: 0,
        })
    }

    /// Merge `other` into `self`: level-wise union of the samples, keeping
    /// each identifier's two smallest occurrences across both shards.
    /// Requires identical construction parameters and seed (shared hash
    /// functions make the union a valid sample of the union stream).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.epsilon != other.epsilon
            || self.y_max != other.y_max
            || self.seed != other.seed
            || self.levels.len() != other.levels.len()
            || self.capacity != other.capacity
        {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "CorrelatedRarity parameters differ: (eps {}, y_max {}, seed {:#x}, {} levels) \
                     vs (eps {}, y_max {}, seed {:#x}, {} levels)",
                    self.epsilon, self.y_max, self.seed, self.levels.len(),
                    other.epsilon, other.y_max, other.seed, other.levels.len()
                ),
            });
        }
        let capacity = self.capacity;
        for (level, other_level) in self.levels.iter_mut().zip(&other.levels) {
            level.merge_from(other_level, capacity);
        }
        self.items_processed += other.items_processed;
        Ok(())
    }

    /// Process a stream element `(x, y)`.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        if y > self.y_max {
            return Err(CoreError::YOutOfRange { y, y_max: self.y_max });
        }
        self.items_processed += 1;
        let deepest = (self.hash.hash64(x).leading_zeros() as usize).min(self.levels.len() - 1);
        let capacity = self.capacity;
        for level in self.levels.iter_mut().take(deepest + 1) {
            level.insert(x, y, capacity);
        }
        Ok(())
    }

    /// Estimate the rarity of the multiset `{x : (x, y) ∈ S, y ≤ c}`: the
    /// fraction of distinct identifiers occurring exactly once. Returns 0 for
    /// an empty selection.
    pub fn query(&self, c: u64) -> Result<f64> {
        let c = c.min(self.y_max);
        // Same level-selection rule as Algorithm 3: the smallest level whose
        // eviction watermark still covers the threshold.
        let Some((_, level)) = first_answering(&self.levels, c, |l| l.evicted_watermark) else {
            return Err(CoreError::QueryFailed { threshold: c });
        };
        let (present, singletons) = level.counts_upto(c);
        if present == 0 {
            return Ok(0.0);
        }
        Ok(singletons as f64 / present as f64)
    }

    /// Total stored tuples.
    pub fn stored_tuples(&self) -> usize {
        self.levels.iter().map(|l| l.by_item.len()).sum()
    }

    /// Number of stream elements processed.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(CorrelatedRarity::new(0.0, 20, 100).is_err());
        assert!(CorrelatedRarity::new(0.2, 0, 100).is_err());
        assert!(CorrelatedRarity::new(0.2, 20, 100).is_ok());
    }

    #[test]
    fn two_smallest_tracking() {
        let mut t = TwoSmallest::new(50);
        assert_eq!(t.occurrences_upto(49), 0);
        assert_eq!(t.occurrences_upto(50), 1);
        t.observe(80);
        assert_eq!(t.occurrences_upto(70), 1);
        assert_eq!(t.occurrences_upto(80), 2);
        t.observe(10);
        assert_eq!(t.y1, 10);
        assert_eq!(t.y2, Some(50));
        assert_eq!(t.occurrences_upto(30), 1);
        assert_eq!(t.occurrences_upto(60), 2);
    }

    #[test]
    fn exact_rarity_on_small_stream() {
        let mut r = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        // Items 0..10 appear once with y = 10*x; items 100..105 appear twice
        // (y = 5 and y = 600).
        for x in 0..10u64 {
            r.insert(x, x * 10).unwrap();
        }
        for x in 100..105u64 {
            r.insert(x, 5).unwrap();
            r.insert(x, 600).unwrap();
        }
        // At c = 95: items 0..10 (singletons) and 100..105 (each seen once so far).
        let rarity = r.query(95).unwrap();
        assert!((rarity - 1.0).abs() < 1e-9);
        // At c = 1000: 10 singletons out of 15 distinct items.
        let rarity = r.query(1000).unwrap();
        assert!((rarity - 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_has_zero_rarity() {
        let mut r = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        r.insert(1, 500).unwrap();
        assert_eq!(r.query(100).unwrap(), 0.0);
    }

    #[test]
    fn rejects_out_of_range_y() {
        let mut r = CorrelatedRarity::new(0.2, 16, 100).unwrap();
        assert!(r.insert(1, 101).is_err());
    }

    #[test]
    fn merge_matches_sequential_on_small_streams() {
        let build = || CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        let mut seq = build();
        let mut left = build();
        let mut right = build();
        // Items occur once or twice, split across shards so some pairs are
        // torn (each shard sees one occurrence of a twice-occurring item).
        for x in 0..60u64 {
            let y1 = (x * 13) % 1001;
            seq.insert(x, y1).unwrap();
            left.insert(x, y1).unwrap();
            if x % 3 == 0 {
                let y2 = (x * 31) % 1001;
                seq.insert(x, y2).unwrap();
                right.insert(x, y2).unwrap();
            }
        }
        left.merge_from(&right).unwrap();
        assert_eq!(left.items_processed(), seq.items_processed());
        for c in (0..=1000u64).step_by(125) {
            assert_eq!(left.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_parameters() {
        let mut a = CorrelatedRarity::with_seed(0.2, 16, 1000, 3).unwrap();
        let seed = CorrelatedRarity::with_seed(0.2, 16, 1000, 4).unwrap();
        let eps = CorrelatedRarity::with_seed(0.3, 16, 1000, 3).unwrap();
        let levels = CorrelatedRarity::with_seed(0.2, 18, 1000, 3).unwrap();
        for other in [&seed, &eps, &levels] {
            assert!(matches!(
                a.merge_from(other),
                Err(CoreError::IncompatibleMerge { .. })
            ));
        }
    }

    #[test]
    fn approximate_rarity_on_large_stream() {
        let epsilon = 0.15;
        let mut r = CorrelatedRarity::with_seed(epsilon, 20, 1 << 20, 7).unwrap();
        // 40k identifiers: even ids occur once (y = id), odd ids occur twice
        // (y = id and y = id + 2^19). True rarity at c = 2^19: ids <= 2^19 all
        // occur exactly once => rarity 1.0; at c = 2^20: odd ids occur twice.
        let n = 40_000u64;
        for x in 0..n {
            r.insert(x, x).unwrap();
            if x % 2 == 1 {
                r.insert(x, x + (1 << 19)).unwrap();
            }
        }
        let rarity_low = r.query((1 << 19) - 1).unwrap();
        assert!(
            (rarity_low - 1.0).abs() < 0.05,
            "rarity below the fold should be ~1.0, got {rarity_low}"
        );
        let rarity_full = r.query(1 << 20).unwrap();
        assert!(
            (rarity_full - 0.5).abs() < 3.0 * epsilon,
            "full rarity should be ~0.5, got {rarity_full}"
        );
        assert!(r.stored_tuples() < n as usize);
    }
}
