//! Correlated second frequency moment `F_2` (Section 3.1, Lemma 9 of the
//! paper) — the aggregate the paper's experiments focus on.
//!
//! The constants come from Lemmas 6–8: `c1(j) = j²` (Hölder) and
//! `c2(ε) = (ε/18)²` (from Lemma 8 with `k = 2` and the ε/2 halving in
//! Theorem 1's parameter choice). The per-bucket whole-stream sketch is the
//! fast AMS estimator of Thorup & Zhang, exactly as in the paper's Section 5.1
//! ("we used a variant of the algorithm due to Alon et al., based on the idea
//! of Thorup and Zhang").

use crate::aggregate::CorrelatedAggregate;
use crate::config::{CorrelatedConfig, DEFAULT_SEED};
use crate::error::Result;
use crate::framework::CorrelatedSketch;
use cora_sketch::{ExactFrequencies, FastAmsSketch};

/// Descriptor for the correlated `F_2` aggregate.
#[derive(Debug, Clone)]
pub struct F2Aggregate {
    /// Per-bucket sketch relative error (`υ`).
    upsilon: f64,
    /// Per-bucket sketch failure probability.
    gamma: f64,
    /// Shared seed so every per-bucket sketch is mergeable.
    seed: u64,
    /// Cached dimensions of the per-bucket sketch.
    width: usize,
    depth: usize,
}

impl F2Aggregate {
    /// Create an `F_2` aggregate whose per-bucket sketches target relative
    /// error `epsilon/2` with failure probability `delta` (the framework's
    /// `υ` and a practical stand-in for its `γ`).
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        let upsilon = (epsilon / 2.0).clamp(1e-6, 0.999);
        let gamma = delta.clamp(1e-12, 0.999);
        // Width ~ 8/ε² gives merged-estimate error comfortably below ε/2;
        // depth 3 provides median robustness without tripling the space the
        // way the theoretical log(1/γ) would.
        let width = ((2.0 / (upsilon * upsilon)).ceil() as usize).clamp(8, 1 << 16);
        let depth = 3;
        Self {
            upsilon,
            gamma,
            seed,
            width,
            depth,
        }
    }

    /// The per-bucket sketch accuracy `υ`.
    pub fn upsilon(&self) -> f64 {
        self.upsilon
    }

    /// The per-bucket sketch failure probability `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl CorrelatedAggregate for F2Aggregate {
    type Sketch = FastAmsSketch;

    fn name(&self) -> String {
        "F2".to_string()
    }

    fn c1(&self, j: f64) -> f64 {
        // Lemma 6 with k = 2: F2(∪ S_i) <= j² max F2(S_i).
        j * j
    }

    fn c2(&self, eps: f64) -> f64 {
        // Lemma 8 with k = 2: c2(ε) = (ε/(9k))² = (ε/18)².
        let v = eps / 18.0;
        v * v
    }

    fn f_max_log2(&self, max_stream_len: u64) -> u32 {
        // F2 <= n² for a stream of n unit-weight items.
        (2 * (64 - max_stream_len.leading_zeros())).clamp(4, 126)
    }

    fn new_sketch(&self) -> FastAmsSketch {
        let mut sketch = FastAmsSketch::with_dimensions(self.width, self.depth, self.seed);
        // Adaptive depth trimming: when the configured γ needs fewer than
        // `depth` rows, restrict the hot loops to that prefix. Every sketch
        // this aggregate builds gets the same trim (so merges agree), the
        // sketch is freshly built and empty (so the trim cannot fail), and
        // snapshot restore decodes into aggregate-built sketches (so the
        // trim survives round trips).
        let _ = sketch.trim_to_delta(self.gamma);
        sketch
    }

    fn sketch_size_hint(&self) -> usize {
        self.width * self.depth
    }

    fn exact_value(&self, freqs: &ExactFrequencies) -> f64 {
        freqs.frequency_moment(2)
    }

    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        // ‖f + g‖₂ ≤ ‖f‖₂ + ‖g‖₂ ≤ √F2 + ‖g‖₁, so F2 stays below the
        // threshold while the added weight is below √threshold − √F2. The
        // same bound holds for the fast-AMS estimate (see the trait docs).
        (threshold.max(0.0).sqrt() - value.max(0.0).sqrt()).max(0.0)
    }
}

/// A correlated `F_2` sketch with the framework plumbing pre-wired: answers
/// `F_2({x : y ≤ c})` for query-time `c`.
pub type CorrelatedF2 = CorrelatedSketch<F2Aggregate>;

/// Build a correlated `F_2` sketch.
///
/// * `epsilon`, `delta` — target accuracy of correlated queries;
/// * `y_max` — largest y value that will be inserted;
/// * `max_stream_len` — upper bound on the stream length (sizes the level
///   count via Condition I).
pub fn correlated_f2(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
) -> Result<CorrelatedF2> {
    correlated_f2_seeded(epsilon, delta, y_max, max_stream_len, DEFAULT_SEED)
}

/// [`correlated_f2`] with an explicit seed (reproducible experiments).
pub fn correlated_f2_seeded(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
    seed: u64,
) -> Result<CorrelatedF2> {
    let agg = F2Aggregate::new(epsilon, delta, seed);
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(seed);
    CorrelatedSketch::new(agg, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_sketch::StreamSketch;

    #[test]
    fn constants_match_the_paper() {
        let agg = F2Aggregate::new(0.2, 0.1, 1);
        assert_eq!(agg.c1(4.0), 16.0);
        assert!((agg.c2(0.18) - 0.0001).abs() < 1e-12);
        assert_eq!(agg.name(), "F2");
        assert_eq!(agg.upsilon(), 0.1);
        assert_eq!(agg.gamma(), 0.1);
    }

    #[test]
    fn f_max_bound_is_twice_log_n() {
        let agg = F2Aggregate::new(0.2, 0.1, 1);
        assert_eq!(agg.f_max_log2(1 << 20), 42);
        assert!(agg.f_max_log2(u64::MAX) <= 126);
        assert!(agg.f_max_log2(1) >= 4);
    }

    #[test]
    fn sketches_from_one_aggregate_are_mergeable() {
        let agg = F2Aggregate::new(0.2, 0.1, 9);
        let mut a = agg.new_sketch();
        let b = agg.new_sketch();
        a.insert(1);
        assert!(cora_sketch::MergeableSketch::merge_from(&mut a, &b).is_ok());
        assert_eq!(agg.sketch_size_hint(), cora_sketch::SpaceUsage::stored_tuples(&a));
    }

    #[test]
    fn constructor_produces_working_sketch() {
        let mut s = correlated_f2_seeded(0.25, 0.1, 1023, 100_000, 5).unwrap();
        for i in 0..2_000u64 {
            s.insert(i % 40, i % 1024).unwrap();
        }
        let full = s.query_all().unwrap();
        let half = s.query(511).unwrap();
        assert!(full > 0.0 && half > 0.0 && half <= full * 1.05);
    }

    #[test]
    fn loose_gamma_trims_sketch_depth() {
        // A failure budget loose enough to need fewer than `depth` rows must
        // trim the hot loops; the default budgets must not.
        let tight = F2Aggregate::new(0.2, 0.05, 1);
        assert_eq!(tight.new_sketch().active_rows(), 3);
        let loose = F2Aggregate::new(0.2, 0.9, 1);
        let s = loose.new_sketch();
        assert!(s.active_rows() < 3, "γ=0.9 should need fewer than 3 rows");
        // Sketches of one aggregate share the trim, so they merge.
        let mut a = loose.new_sketch();
        assert!(cora_sketch::MergeableSketch::merge_from(&mut a, &s).is_ok());
    }

    #[test]
    fn exact_value_matches_direct_f2() {
        let agg = F2Aggregate::new(0.2, 0.1, 1);
        let mut f = ExactFrequencies::new();
        f.update(1, 3);
        f.update(2, 4);
        assert_eq!(agg.exact_value(&f), 25.0);
    }
}
