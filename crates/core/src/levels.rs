//! The level engine: the structure-of-arrays hot path behind
//! [`CorrelatedSketch`](crate::framework::CorrelatedSketch).
//!
//! Every stream element touches one bucket on every materialized level plus
//! the shared tail summary, so the per-level bucket state is engineered
//! around that loop:
//!
//! * each level stores its buckets in a **structure-of-arrays arena**
//!   ([`LevelArena`]): the hot per-slot scalars — interval bounds, closed /
//!   evicted flags, and the headroom-gating weights — live in one packed
//!   40-byte lane ([`SlotMeta`], one flat vector), parallel to a dense pool
//!   of the (much larger) per-bucket aggregate stores keyed by the same slot
//!   index. The routing decision for an element — "which leaf contains `y`,
//!   is it closed, is a threshold check due" — therefore costs one bounds
//!   check and at most one cache line, instead of striding over whole bucket
//!   structs (array-of-structs) whose inline sketch state blows the line;
//! * the stored *leaves* of a level's dyadic tree tile the level's reachable
//!   y-domain `[0, Y_ℓ)`, so the textbook root-to-leaf walk collapses to one
//!   predecessor lookup in a `lo → slot` map, and a per-level **cursor**
//!   remembers the last touched leaf so repeated nearby y values skip even
//!   that;
//! * bucket-closing checks are gated behind the aggregate's superadditive
//!   [`CorrelatedAggregate::weight_headroom`]: inserts inside the recorded
//!   headroom window cost a single `f64` comparison;
//! * evictions pick their victim from a `BTreeSet` ordered by
//!   `(left endpoint, depth)` — O(log α) per victim;
//! * levels whose threshold the stream has not reached are **not
//!   materialized**: one shared [`TailState`] stands in for all of them and
//!   levels materialize (with a closed root cloned from the tail) as the
//!   stream's estimate crosses their thresholds;
//! * the batch path ([`LevelEngine::update_batch`]) walks each level once
//!   for the whole batch (level-major), slices the batch into **runs of
//!   consecutive tuples routed to the same slot**, and applies each run
//!   through the sketch's flat prepared-batch layout
//!   ([`cora_sketch::SharedUpdate::apply_prepared_range`]) — for fast-AMS
//!   buckets that is one contiguous `&[u32]`/`&[i64]` pass per row against a
//!   flat `&mut [i64]` counter slice. Run boundaries respect the headroom
//!   budget exactly, so the batch path produces bit-for-bit the structure of
//!   per-tuple inserts.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::compose::min_watermark;
use crate::dyadic::DyadicInterval;
use crate::error::Result;
use crate::snapshot::{decode_store, encode_store};
use cora_sketch::codec::{ByteReader, ByteWriter, CodecError, CodecResult, StateCodec};
use cora_sketch::SharedUpdate;
use std::collections::BTreeSet;

/// Shorthand for the prepared-update type of an aggregate's bucket sketch.
pub(crate) type PreparedOf<A> = <<A as CorrelatedAggregate>::Sketch as SharedUpdate>::Prepared;
/// Shorthand for the prepared-batch type of an aggregate's bucket sketch.
pub(crate) type BatchOf<A> = <<A as CorrelatedAggregate>::Sketch as SharedUpdate>::PreparedBatch;

/// Sentinel index for "no slot" (cursor invalidation).
const NIL: u32 = u32::MAX;

/// Flag bit: the bucket reached its level threshold and no longer accepts
/// direct updates (items route to its children).
const FLAG_CLOSED: u8 = 1;
/// Flag bit: the slot belonged to an evicted bucket and awaits reuse.
const FLAG_EVICTED: u8 = 2;

/// The packed per-slot scalar state of one bucket: interval bounds, the
/// headroom-gating weights, and the closed/evicted flags — everything the
/// routing decision reads, in 40 bytes, so one slot touch is one bounds
/// check and (at most) one cache line. The heavyweight aggregate store lives
/// in the arena's separate dense pool under the same slot index.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    /// Inclusive interval lower bound.
    lo: u64,
    /// Inclusive interval upper bound.
    hi: u64,
    /// Weight the bucket can still absorb before its estimate could reach
    /// the level threshold (see [`CorrelatedAggregate::weight_headroom`]).
    headroom: f64,
    /// Weight inserted since the slot's last real threshold check.
    pending: f64,
    /// `FLAG_CLOSED` / `FLAG_EVICTED` bits.
    flags: u8,
}

impl SlotMeta {
    fn fresh(interval: DyadicInterval) -> Self {
        Self {
            lo: interval.lo,
            hi: interval.hi,
            headroom: 0.0,
            pending: 0.0,
            flags: 0,
        }
    }

    #[inline]
    fn interval(&self) -> DyadicInterval {
        DyadicInterval { lo: self.lo, hi: self.hi }
    }

    #[inline]
    fn contains(&self, y: u64) -> bool {
        self.lo <= y && y <= self.hi
    }

    #[inline]
    fn is_unit(&self) -> bool {
        self.lo == self.hi
    }

    #[inline]
    fn is_closed(&self) -> bool {
        self.flags & FLAG_CLOSED != 0
    }

    #[inline]
    fn is_evicted(&self) -> bool {
        self.flags & FLAG_EVICTED != 0
    }
}

/// Structure-of-arrays bucket storage for one level: the hot per-slot scalar
/// state ([`SlotMeta`]: bounds, gating weights, flags) in one flat lane and
/// the aggregate stores in a dense pool keyed by the same slot index. The
/// insert path's routing reads stay packed and cache-dense, and the (much
/// larger) stores are only touched once a slot is actually updated.
#[derive(Debug, Clone)]
struct LevelArena<A: CorrelatedAggregate> {
    /// Packed routing/gating state, indexed by slot.
    meta: Vec<SlotMeta>,
    /// Dense aggregate-state pool, keyed by slot index.
    stores: Vec<BucketStore<A>>,
    /// Recyclable (evicted) slots.
    free: Vec<u32>,
}

impl<A: CorrelatedAggregate> LevelArena<A> {
    fn new() -> Self {
        Self {
            meta: Vec::new(),
            stores: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Allocate a fresh open slot for `interval`, recycling a tombstone if
    /// possible.
    fn alloc(&mut self, interval: DyadicInterval) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.meta[slot as usize] = SlotMeta::fresh(interval);
                self.stores[slot as usize] = BucketStore::new();
                slot
            }
            None => {
                self.meta.push(SlotMeta::fresh(interval));
                self.stores.push(BucketStore::new());
                (self.meta.len() - 1) as u32
            }
        }
    }

    /// Number of allocated slots (used by the invariant checker).
    #[cfg(any(test, feature = "invariant-checks"))]
    fn len(&self) -> usize {
        self.meta.len()
    }

    #[inline]
    fn interval(&self, slot: u32) -> DyadicInterval {
        self.meta[slot as usize].interval()
    }

    /// Tombstone flag of a slot (used by the invariant checker).
    #[cfg(any(test, feature = "invariant-checks"))]
    fn is_evicted(&self, slot: u32) -> bool {
        self.meta[slot as usize].is_evicted()
    }

    /// Tombstone a slot: clear its flags, release its store's heap now, and
    /// queue the slot for reuse.
    fn evict(&mut self, slot: u32) {
        let s = slot as usize;
        self.meta[s].flags = FLAG_EVICTED;
        self.stores[s] = BucketStore::new();
        self.free.push(slot);
    }
}

/// The stored-leaf routing index of one level: `(left endpoint, slot)` pairs
/// in a flat array sorted by endpoint. Routing is the hottest operation in
/// the whole engine — every tuple does a predecessor lookup on every
/// materialized level it reaches — so the lookup is a binary search over
/// contiguous memory instead of a pointer-chasing ordered-map descent. The
/// rare mutations (splits, evictions, rebuilds) pay the `O(n)` memmove a
/// sorted array needs; they are bounded by bucket closings, not stream
/// length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LeafIndex {
    entries: Vec<(u64, u32)>,
}

impl LeafIndex {
    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Insert or overwrite the entry for `lo`.
    fn insert(&mut self, lo: u64, slot: u32) {
        match self.entries.binary_search_by_key(&lo, |e| e.0) {
            Ok(i) => self.entries[i].1 = slot,
            Err(i) => self.entries.insert(i, (lo, slot)),
        }
    }

    /// The slot stored for exactly `lo`, if any.
    fn get(&self, lo: u64) -> Option<u32> {
        self.entries
            .binary_search_by_key(&lo, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Remove the entry for `lo` iff it currently maps to `slot`.
    fn remove_if(&mut self, lo: u64, slot: u32) {
        if let Ok(i) = self.entries.binary_search_by_key(&lo, |e| e.0) {
            if self.entries[i].1 == slot {
                self.entries.remove(i);
            }
        }
    }

    /// The leaf with the largest endpoint `≤ y` (the dyadic leaf containing
    /// `y`, by the tiling invariant).
    #[inline]
    fn predecessor(&self, y: u64) -> Option<u32> {
        let i = self.entries.partition_point(|e| e.0 <= y);
        if i == 0 {
            None
        } else {
            Some(self.entries[i - 1].1)
        }
    }

    /// Append an entry with an endpoint at or past the current maximum
    /// (bulk-rebuild path, where entries arrive already sorted).
    fn push_sorted(&mut self, lo: u64, slot: u32) {
        if let Some(&(last, _)) = self.entries.last() {
            debug_assert!(last < lo, "push_sorted got out-of-order endpoint");
        }
        self.entries.push((lo, slot));
    }

    /// The entries in ascending endpoint order.
    fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.entries.iter().copied()
    }
}

/// One level `ℓ ≥ 1` of the structure: a lazily-grown dyadic tree in a SoA
/// arena, with the stored leaves indexed by left endpoint.
///
/// Invariant: the stored leaves tile the reachable y-domain `[0, Y_ℓ)`, so
/// the deepest stored bucket containing a reachable `y` — the bucket
/// Algorithm 2 routes the item to — is the unique leaf whose span covers `y`,
/// found by a predecessor lookup in `leaves`. (Evictions remove leaves from
/// the right and lower `Y_ℓ` to the victim's left endpoint, which keeps the
/// tiling intact; interior nodes whose children were all evicted are
/// unreachable, since the watermark already excludes their span.) See
/// [`Level::check_invariants`] for the machine-checked statement.
#[derive(Debug, Clone)]
pub(crate) struct Level<A: CorrelatedAggregate> {
    /// Level index `ℓ` (1-based; level 0 is the singleton level).
    index: u32,
    /// Closing threshold `2^{ℓ+1}`.
    threshold: f64,
    /// SoA bucket storage.
    arena: LevelArena<A>,
    /// Number of live (non-evicted) buckets.
    live: usize,
    /// Stored leaves keyed by left endpoint: the flat routing index.
    leaves: LeafIndex,
    /// Eviction priority over live slots, keyed `(lo, !len, slot)`: the
    /// victim is the maximum — largest left endpoint first, deepest node
    /// first among equal endpoints — so victims are always leaves.
    order: BTreeSet<(u64, u64, u32)>,
    /// Eviction watermark `Y_ℓ`; `None` means `+∞` (nothing evicted yet).
    y_bound: Option<u64>,
    /// Leaf touched by the previous insert; checked before the predecessor
    /// lookup. `NIL` when invalid; any eviction invalidates it.
    cursor: u32,
}

impl<A: CorrelatedAggregate> Level<A> {
    fn new(index: u32, root: DyadicInterval) -> Self {
        let mut level = Self {
            index,
            threshold: 2f64.powi(index as i32 + 1),
            arena: LevelArena::new(),
            live: 0,
            leaves: LeafIndex::default(),
            order: BTreeSet::new(),
            y_bound: None,
            cursor: NIL,
        };
        let root_slot = level.alloc(root);
        level.leaves.insert(root.lo, root_slot);
        level
    }

    /// Slot of the root bucket (only valid right after `new`; used by the
    /// materialization path to seed the root store).
    fn root_slot(&self) -> u32 {
        debug_assert_eq!(self.live, 1);
        self.leaves.get(0).expect("fresh level has its root stored")
    }

    /// Level index `ℓ`.
    pub(crate) fn index(&self) -> u32 {
        self.index
    }

    /// Eviction watermark `Y_ℓ` (`None` = `+∞`).
    pub(crate) fn y_bound(&self) -> Option<u64> {
        self.y_bound
    }

    /// Iterate over the live buckets as `(interval, store)` pairs.
    pub(crate) fn live_buckets(&self) -> impl Iterator<Item = (DyadicInterval, &BucketStore<A>)> {
        self.arena
            .meta
            .iter()
            .zip(&self.arena.stores)
            .filter(|(meta, _)| !meta.is_evicted())
            .map(|(meta, store)| (meta.interval(), store))
    }

    /// Eviction key: victim = maximum, i.e. largest `lo`, then smallest
    /// length (deepest node). The slot disambiguates nothing (intervals are
    /// unique per level) but keeps the tuple self-describing.
    fn order_key(interval: DyadicInterval, slot: u32) -> (u64, u64, u32) {
        (interval.lo, u64::MAX - interval.len(), slot)
    }

    /// Allocate a fresh live bucket and register it for eviction ordering.
    fn alloc(&mut self, interval: DyadicInterval) -> u32 {
        let slot = self.arena.alloc(interval);
        self.order.insert(Self::order_key(interval, slot));
        self.live += 1;
        slot
    }

    /// Locate the stored leaf containing `y`: cursor hit or predecessor
    /// lookup. (A live cursor always names a current leaf — splits go
    /// through this path and evictions reset it.)
    #[inline]
    fn route(&self, y: u64) -> Option<u32> {
        match self.cursor {
            c if c != NIL && self.arena.meta[c as usize].contains(y) => Some(c),
            _ => self.leaves.predecessor(y),
        }
    }

    /// Run the bucket-closing threshold check on an already-borrowed slot if
    /// its pending weight has consumed the recorded headroom. Takes the
    /// split borrows so the callers' single bounds-checked lane accesses are
    /// reused instead of re-indexing the arena.
    #[inline]
    fn close_check(agg: &A, threshold: f64, meta: &mut SlotMeta, store: &BucketStore<A>) {
        if !meta.is_unit() && meta.pending >= meta.headroom {
            let estimate = store.estimate(agg);
            meta.headroom = agg.weight_headroom(estimate, threshold);
            meta.pending = 0.0;
            if estimate >= threshold {
                meta.flags |= FLAG_CLOSED;
            }
        }
    }

    /// Split a closed leaf and insert `(x, y, weight)` into the child
    /// containing `y` (children replace the parent in the leaf tiling). The
    /// fresh child starts exact, so the raw `(x, weight)` update is the
    /// shared-coordinate update.
    fn split_and_insert(&mut self, agg: &A, slot: u32, x: u64, y: u64, weight: i64) {
        let (left_iv, right_iv) = self
            .arena
            .interval(slot)
            .children()
            .expect("closed buckets are never unit intervals");
        let left = self.alloc(left_iv);
        let right = self.alloc(right_iv);
        self.leaves.insert(left_iv.lo, left); // replaces the parent entry
        self.leaves.insert(right_iv.lo, right);
        let target = if left_iv.contains(y) { left } else { right };
        let t = target as usize;
        let store = &mut self.arena.stores[t];
        let was_exact = store.is_exact();
        store.update(agg, x, weight);
        let meta = &mut self.arena.meta[t];
        meta.pending += weight as f64;
        if was_exact && !store.is_exact() {
            meta.headroom = 0.0; // re-check on the next direct insert
        }
        self.cursor = target;
        // (A child is only checked for closing when a later insert reaches it.)
    }

    /// Process one stream element on this level (Algorithm 2, lines 7–21).
    /// `prepared` carries the element's sketch coordinates, hashed once for
    /// the whole structure.
    fn update(
        &mut self,
        agg: &A,
        alpha: usize,
        x: u64,
        y: u64,
        weight: i64,
        prepared: &PreparedOf<A>,
    ) {
        if let Some(bound) = self.y_bound {
            if y >= bound {
                return;
            }
        }
        let Some(cur) = self.route(y) else {
            return; // y below the watermark yet no leaf: evicted root
        };
        let s = cur as usize;
        debug_assert!(self.arena.meta[s].contains(y));

        // Split the arena borrows once: `meta` and `store` are disjoint
        // lanes, so the whole slot update runs on two bounds checks.
        let meta = &mut self.arena.meta[s];
        if !meta.is_closed() {
            let store = &mut self.arena.stores[s];
            let was_exact = store.is_exact();
            store.update_prepared(agg, x, weight, prepared);
            meta.pending += weight as f64;
            if was_exact && !store.is_exact() {
                // The store just converted to its sketched representation,
                // whose estimate need not match the exact value the headroom
                // was computed from — force a fresh check below.
                meta.headroom = 0.0;
            }
            // Gate the threshold check behind the aggregate's superadditive
            // weight headroom: while the weight added since the last real
            // estimate stays below it, the estimate provably cannot have
            // reached the threshold, so this insert costs one comparison.
            Self::close_check(agg, self.threshold, meta, store);
            self.cursor = cur;
        } else {
            self.split_and_insert(agg, cur, x, y, weight);
        }

        if self.live > alpha {
            self.evict_overflow(alpha);
        }
    }

    /// Process a batch of unit-weight tuples starting at index `from`
    /// (level-major traversal). Consecutive tuples routed to the same open
    /// sketched slot are applied as one contiguous prepared-batch range, with
    /// run boundaries placed exactly where the per-tuple path would have run
    /// a threshold check — so the resulting structure is identical.
    fn apply_batch(
        &mut self,
        agg: &A,
        alpha: usize,
        tuples: &[(u64, u64)],
        batch: &BatchOf<A>,
        from: usize,
    ) {
        let n = tuples.len();
        let mut i = from;
        while i < n {
            let (x, y) = tuples[i];
            let bound = self.y_bound.unwrap_or(u64::MAX);
            if y >= bound {
                i += 1;
                continue;
            }
            let Some(cur) = self.route(y) else {
                i += 1;
                continue;
            };
            let s = cur as usize;
            if self.arena.meta[s].is_closed() {
                self.split_and_insert(agg, cur, x, y, 1);
                i += 1;
                if self.live > alpha {
                    self.evict_overflow(alpha);
                }
                continue;
            }
            if self.arena.stores[s].is_exact() {
                // Exact store: tuple-at-a-time — a conversion to the
                // sketched representation must force an immediate re-check,
                // which can close the bucket mid-run.
                let store = &mut self.arena.stores[s];
                store.update(agg, x, 1);
                let meta = &mut self.arena.meta[s];
                meta.pending += 1.0;
                if !store.is_exact() {
                    meta.headroom = 0.0;
                }
                Self::close_check(agg, self.threshold, meta, store);
                self.cursor = cur;
                i += 1;
                continue;
            }
            // Sketched open leaf: extend the run while tuples keep routing
            // here, stopping exactly where the per-tuple path would run its
            // next threshold check (the first tuple that exhausts the
            // headroom budget is included — the check happens after it).
            let meta = self.arena.meta[s];
            let until_check = if meta.is_unit() {
                n // unit intervals never close
            } else {
                let gap = meta.headroom - meta.pending;
                if gap <= 1.0 {
                    1
                } else {
                    gap.ceil() as usize
                }
            };
            let mut j = i + 1;
            let max_j = i.saturating_add(until_check).min(n);
            while j < max_j {
                let y2 = tuples[j].1;
                if y2 < meta.lo || y2 > meta.hi || y2 >= bound {
                    break;
                }
                j += 1;
            }
            let store = &mut self.arena.stores[s];
            store.update_batch_range(agg, tuples, batch, i..j);
            let slot_meta = &mut self.arena.meta[s];
            slot_meta.pending += (j - i) as f64;
            Self::close_check(agg, self.threshold, slot_meta, store);
            self.cursor = cur;
            i = j;
        }
    }

    /// Merge another same-index level into this one **in place** (Property
    /// V): the node set becomes the union of both dyadic trees, per-interval
    /// stores are merged (summaries are composable because all bucket
    /// sketches share hash seeds), and bucket-closing is re-run with fresh
    /// headroom on every node the merge touched.
    ///
    /// Soundness: both inputs are ancestor-closed subtrees of the same dyadic
    /// tree, so their union is too, and below the merged watermark
    /// `min(Y_a, Y_b)` the union's leaves tile the reachable domain (for any
    /// reachable `y`, the deeper of the two input leaves containing `y` is
    /// the unique union leaf). Every item summarised by either input sits in
    /// exactly one merged node, so query-time composition counts it exactly
    /// once. Interior nodes inherit `closed` from either input; a node whose
    /// merged estimate now reaches the threshold is closed here rather than
    /// on its next insert. Nodes at or above the merged watermark can never
    /// be composed (queries require `c < Y_ℓ`) and are dropped to keep the α
    /// budget for reachable buckets.
    ///
    /// Nodes of `self` that `other` does not store are left untouched: their
    /// pending/headroom gating state still describes exactly the same store,
    /// and a threshold crossing one of them may have silently accumulated is
    /// caught by its next gated insert — the same laziness the insert path
    /// itself relies on. That is what makes the merge asymmetric: the cost is
    /// `O(|other| log α)` — each incoming node finds its match through the
    /// eviction-order set, which doubles as an interval index — not cloning
    /// and re-estimating `self`: absorbing a small pane into a large
    /// accumulator no longer pays for the accumulator.
    fn absorb(&mut self, other: &Self, agg: &A, alpha: usize) -> Result<()> {
        debug_assert_eq!(self.index, other.index);
        let bound = min_watermark(self.y_bound, other.y_bound);
        if bound != self.y_bound {
            // Other's watermark is lower: self's nodes at or past it become
            // unreachable and are dropped, as a rebuild would.
            if let Some(b) = bound {
                self.drop_from(b);
            }
            self.y_bound = bound;
        }
        // Other's live nodes in (lo, depth) order, so fresh slots are
        // allocated deterministically.
        let mut incoming: Vec<(u64, u64, u32)> = other
            .arena
            .meta
            .iter()
            .enumerate()
            .filter(|(_, meta)| !meta.is_evicted())
            .map(|(slot, meta)| (meta.lo, meta.interval().len(), slot as u32))
            .collect();
        incoming.sort_unstable();
        let mut added = false;
        for (lo, len, other_slot) in incoming {
            if let Some(b) = bound {
                if lo >= b {
                    continue; // unreachable past the merged watermark
                }
            }
            let other_meta = &other.arena.meta[other_slot as usize];
            let other_store = &other.arena.stores[other_slot as usize];
            // The eviction-order set is keyed `(lo, !len, slot)`, so an
            // exact-interval probe is one O(log α) range lookup — no
            // interval map has to be built over self.
            let order_key = u64::MAX - len;
            let existing = self
                .order
                .range((lo, order_key, 0)..=(lo, order_key, u32::MAX))
                .next()
                .map(|&(_, _, slot)| slot);
            let slot = match existing {
                Some(slot) => {
                    self.arena.stores[slot as usize].merge_from(agg, other_store)?;
                    slot
                }
                None => {
                    let slot = self.alloc(DyadicInterval { lo, hi: lo + (len - 1) });
                    self.arena.stores[slot as usize] = other_store.clone();
                    added = true;
                    slot
                }
            };
            // Re-run the closing check with fresh headroom on the touched
            // node: the merged estimate may have crossed the threshold even
            // if neither input had (unit intervals never close, as in
            // `update`).
            let s = slot as usize;
            let estimate = self.arena.stores[s].estimate(agg);
            let meta = &mut self.arena.meta[s];
            if !meta.is_unit() && (other_meta.is_closed() || estimate >= self.threshold) {
                meta.flags |= FLAG_CLOSED;
            }
            meta.headroom = agg.weight_headroom(estimate, self.threshold);
            meta.pending = 0.0;
        }
        if added {
            self.rebuild_leaves();
        }
        self.cursor = NIL;
        self.evict_overflow(alpha);
        Ok(())
    }

    /// Recompute the leaf tiling from the eviction-order set: a node routes
    /// updates (is a stored leaf) iff its left child is absent, and
    /// ancestor-closure makes the chain of nodes sharing a left endpoint
    /// contiguous — so the leaf at each endpoint is exactly the deepest
    /// stored interval, i.e. the last entry of each endpoint's group in the
    /// `(lo, !len)`-ordered set.
    fn rebuild_leaves(&mut self) {
        self.leaves.clear();
        let mut pending: Option<(u64, u32)> = None;
        for &(lo, _, slot) in &self.order {
            if let Some((plo, pslot)) = pending {
                if plo != lo {
                    // The eviction set iterates in ascending (lo, depth)
                    // order, so the rebuilt index is appended sorted.
                    self.leaves.push_sorted(plo, pslot);
                }
            }
            pending = Some((lo, slot));
        }
        if let Some((plo, pslot)) = pending {
            self.leaves.push_sorted(plo, pslot);
        }
    }

    /// Merge a dormant level's shared-tail store into this level — the
    /// degenerate [`Self::absorb`] where `other` is a single open root
    /// holding `tail` (exactly what a not-yet-materialized level contains).
    /// The union adds no node (a non-empty ancestor-closed level always
    /// stores its root), so this is one store merge plus the root's closing
    /// re-check.
    fn absorb_tail(&mut self, tail: &BucketStore<A>, agg: &A) -> Result<()> {
        // The root has the smallest eviction key (left endpoint 0, largest
        // span), so it is the range's first entry — and it is only ever
        // evicted last, so an empty range means an empty (fully evicted,
        // watermark 0) level, where nothing is reachable and a rebuild would
        // drop the tail node too.
        let Some(&(_, _, slot)) = self.order.range((0, 0, 0)..(1, 0, 0)).next() else {
            return Ok(());
        };
        let s = slot as usize;
        self.arena.stores[s].merge_from(agg, tail)?;
        let estimate = self.arena.stores[s].estimate(agg);
        let meta = &mut self.arena.meta[s];
        if !meta.is_unit() && estimate >= self.threshold {
            meta.flags |= FLAG_CLOSED;
        }
        meta.headroom = agg.weight_headroom(estimate, self.threshold);
        meta.pending = 0.0;
        Ok(())
    }

    /// Drop every live node whose left endpoint is at or past `bound`
    /// (unreachable once the watermark sits there). Unlike
    /// [`Self::evict_overflow`] this does not lower the watermark — the
    /// caller is installing `bound` itself.
    fn drop_from(&mut self, bound: u64) {
        for slot in 0..self.arena.meta.len() as u32 {
            let meta = self.arena.meta[slot as usize];
            if meta.is_evicted() || meta.lo < bound {
                continue;
            }
            self.order.remove(&Self::order_key(meta.interval(), slot));
            self.leaves.remove_if(meta.lo, slot);
            self.arena.evict(slot);
            self.live -= 1;
        }
        self.cursor = NIL;
    }

    /// A one-bucket stand-in for a dormant level: an *open* root holding a
    /// clone of the shared tail summary (which is exactly what the eager
    /// formulation's level would contain before its threshold is reached).
    fn from_tail(index: u32, root: DyadicInterval, tail: &BucketStore<A>) -> Self {
        let mut level = Self::new(index, root);
        let root_slot = level.root_slot();
        level.arena.stores[root_slot as usize] = tail.clone();
        level
    }

    /// Evict buckets with the largest left endpoint until the level fits its
    /// budget again, lowering the watermark. O(log α) per victim.
    fn evict_overflow(&mut self, alpha: usize) {
        while self.live > alpha {
            let key = *self
                .order
                .iter()
                .next_back()
                .expect("live > alpha >= 1, so non-empty");
            self.order.remove(&key);
            let (lo, _, slot) = key;
            self.arena.evict(slot);
            // The victim is the deepest node with the largest left endpoint,
            // so if it is in the leaf tiling its entry is its own; interior
            // victims (whose children went first) have no entry left.
            self.leaves.remove_if(lo, slot);
            self.live -= 1;
            self.cursor = NIL;
            self.y_bound = Some(match self.y_bound {
                None => lo,
                Some(b) => b.min(lo),
            });
        }
    }

    /// Serialise the level's live state (snapshot persistence): watermark,
    /// every live slot **in slot order** — compose iterates slots in that
    /// order, so preserving it keeps restored query composition bit-identical
    /// — and the leaf tiling, with slots renumbered densely so tombstones
    /// cost nothing on the wire.
    fn encode_state(&self, w: &mut ByteWriter)
    where
        A::Sketch: StateCodec,
    {
        w.put_u32(self.index);
        w.put_opt_u64(self.y_bound);
        w.put_len(self.live);
        let mut remap: Vec<u32> = vec![NIL; self.arena.meta.len()];
        let mut next = 0u32;
        for (slot, (meta, store)) in self.arena.meta.iter().zip(&self.arena.stores).enumerate() {
            if meta.is_evicted() {
                continue;
            }
            remap[slot] = next;
            next += 1;
            w.put_u64(meta.lo);
            w.put_u64(meta.hi);
            w.put_f64(meta.headroom);
            w.put_f64(meta.pending);
            w.put_bool(meta.is_closed());
            encode_store(store, w);
        }
        w.put_len(self.leaves.len());
        for (lo, slot) in self.leaves.iter() {
            w.put_u64(lo);
            w.put_u32(remap[slot as usize]);
        }
    }

    /// Rebuild a level from [`Self::encode_state`] bytes: slots are
    /// re-allocated in wire order (dense, no tombstones), the eviction set
    /// and live count rebuilt, and the cursor left invalid (it is a pure
    /// routing hint).
    fn decode_state(agg: &A, root: DyadicInterval, r: &mut ByteReader<'_>) -> CodecResult<Self>
    where
        A::Sketch: StateCodec,
    {
        let index = r.get_u32()?;
        let y_bound = r.get_opt_u64()?;
        let live = r.get_len()?;
        let mut level = Self {
            index,
            threshold: 2f64.powi(index as i32 + 1),
            arena: LevelArena::new(),
            live: 0,
            leaves: LeafIndex::default(),
            order: BTreeSet::new(),
            y_bound,
            cursor: NIL,
        };
        let mut seen = BTreeSet::new();
        for _ in 0..live {
            let lo = r.get_u64()?;
            let hi = r.get_u64()?;
            if lo > hi || hi > root.hi {
                return Err(CodecError::Corrupt(format!(
                    "level {index} bucket [{lo}, {hi}] outside the root domain"
                )));
            }
            if !seen.insert((lo, hi)) {
                return Err(CodecError::Corrupt(format!(
                    "level {index} stores interval [{lo}, {hi}] twice"
                )));
            }
            let headroom = r.get_f64()?;
            let pending = r.get_f64()?;
            let closed = r.get_bool()?;
            let store = decode_store(agg, r)?;
            let slot = level.alloc(DyadicInterval { lo, hi });
            let s = slot as usize;
            level.arena.meta[s].headroom = headroom;
            level.arena.meta[s].pending = pending;
            if closed {
                level.arena.meta[s].flags |= FLAG_CLOSED;
            }
            level.arena.stores[s] = store;
        }
        let n_leaves = r.get_len()?;
        for _ in 0..n_leaves {
            let lo = r.get_u64()?;
            let slot = r.get_u32()?;
            if slot as usize >= level.arena.meta.len() || level.arena.meta[slot as usize].lo != lo {
                return Err(CodecError::Corrupt(format!(
                    "level {index} leaf entry ({lo}, slot {slot}) does not name a stored bucket"
                )));
            }
            level.leaves.insert(lo, slot);
        }
        Ok(level)
    }

    /// Assert the level's structural invariants (test / `invariant-checks`
    /// builds only): parallel-array consistency, the leaf tiling of the
    /// reachable y-domain, predecessor-index agreement with a linear scan,
    /// and eviction-set membership matching the slot flags.
    #[cfg(any(test, feature = "invariant-checks"))]
    pub(crate) fn check_invariants(&self, root: DyadicInterval) {
        let a = &self.arena;
        let n = a.len();
        assert_eq!(
            a.stores.len(),
            n,
            "SoA meta lane and store pool diverged in length"
        );
        let live_slots: Vec<u32> = (0..n as u32).filter(|&s| !a.is_evicted(s)).collect();
        assert_eq!(live_slots.len(), self.live, "live count out of sync");
        // Eviction-set membership matches the slot flags exactly: every live
        // slot is orderable for eviction, every tombstone is in the free
        // list with its closed flag cleared.
        assert_eq!(self.order.len(), self.live);
        for &slot in &live_slots {
            assert!(
                self.order.contains(&Self::order_key(a.interval(slot), slot)),
                "live slot {slot} missing from the eviction set"
            );
        }
        let free: BTreeSet<u32> = a.free.iter().copied().collect();
        let evicted: BTreeSet<u32> = (0..n as u32).filter(|&s| a.is_evicted(s)).collect();
        assert_eq!(free, evicted, "free list does not match tombstoned slots");
        for &slot in &evicted {
            assert!(
                !a.meta[slot as usize].is_closed(),
                "evicted slot {slot} still flagged closed"
            );
        }
        // The stored leaves tile the reachable y-domain [0, min(Y_ℓ, y_max+1)).
        let reach = self.y_bound.unwrap_or(root.hi + 1).min(root.hi + 1);
        let mut cover = 0u64;
        for (lo, slot) in self.leaves.iter() {
            assert!(!a.is_evicted(slot), "leaf map points at a tombstone");
            assert_eq!(a.meta[slot as usize].lo, lo, "leaf map key disagrees with the slot");
            if cover >= reach {
                break;
            }
            assert_eq!(lo, cover, "leaf tiling has a gap at {cover}");
            cover = a.meta[slot as usize].hi + 1;
        }
        assert!(cover >= reach, "leaf tiling stops at {cover}, before the watermark {reach}");
        // The predecessor index agrees with a linear scan over the arena:
        // for each leaf boundary, the deepest live slot containing y is the
        // leaf the routing lookup returns.
        for (lo, slot) in self.leaves.iter() {
            for y in [lo, a.meta[slot as usize].hi] {
                if y >= reach {
                    continue;
                }
                let mut deepest: Option<u32> = None;
                for &s in &live_slots {
                    if a.meta[s as usize].contains(y) {
                        deepest = match deepest {
                            Some(d) if a.interval(d).len() <= a.interval(s).len() => Some(d),
                            _ => Some(s),
                        };
                    }
                }
                assert_eq!(deepest, Some(slot), "linear scan disagrees with leaf map at y={y}");
                let routed = self.leaves.predecessor(y);
                assert_eq!(routed, Some(slot), "predecessor lookup disagrees at y={y}");
            }
        }
        if self.cursor != NIL {
            assert!(!a.is_evicted(self.cursor), "cursor points at a tombstone");
            assert_eq!(
                self.leaves.get(a.meta[self.cursor as usize].lo),
                Some(self.cursor),
                "cursor is not a stored leaf"
            );
        }
    }
}

/// The shared summary standing in for every not-yet-materialized level: all
/// their roots are open (the stream's aggregate has not reached their
/// thresholds), so they would each hold exactly this store.
#[derive(Debug, Clone)]
struct TailState<A: CorrelatedAggregate> {
    store: BucketStore<A>,
    /// Weight added since the last real estimate (headroom gating, as in the
    /// arena slots, against the smallest unmaterialized level's threshold).
    pending_weight: f64,
    headroom: f64,
}

impl<A: CorrelatedAggregate> TailState<A> {
    fn new() -> Self {
        Self {
            store: BucketStore::new(),
            pending_weight: 0.0,
            headroom: 0.0,
        }
    }
}

/// The dyadic-level engine: every materialized level, the packed watermark
/// array the insert loop skips on, and the shared tail summary for dormant
/// levels — the entire per-level state of a
/// [`CorrelatedSketch`](crate::framework::CorrelatedSketch) apart from the
/// singleton level, behind a narrow update/merge/read API.
#[derive(Debug, Clone)]
pub(crate) struct LevelEngine<A: CorrelatedAggregate> {
    /// Materialized levels `1 ..= levels.len()`; levels above that are
    /// represented by `tail`.
    levels: Vec<Level<A>>,
    /// `levels[i].y_bound` (with `u64::MAX` for `+∞`), packed flat so the
    /// per-insert level loop can skip watermarked-out levels from one or two
    /// cache lines instead of touching every `Level` struct.
    level_bounds: Vec<u64>,
    /// Shared summary for the dormant levels `levels.len()+1 ..= max_level`.
    tail: TailState<A>,
    /// Largest level index `ℓ_max` the configuration calls for.
    max_level: u32,
    /// The root dyadic interval `[0, padded y_max]`.
    root: DyadicInterval,
}

impl<A: CorrelatedAggregate> LevelEngine<A> {
    /// An empty engine: no materialized levels, an empty tail.
    pub(crate) fn new(root: DyadicInterval, max_level: u32) -> Self {
        Self {
            levels: Vec::new(),
            level_bounds: Vec::new(),
            tail: TailState::new(),
            max_level,
            root,
        }
    }

    /// The materialized levels, smallest index first.
    pub(crate) fn levels(&self) -> &[Level<A>] {
        &self.levels
    }

    /// The root dyadic interval.
    pub(crate) fn root(&self) -> DyadicInterval {
        self.root
    }

    /// True iff dormant levels remain (the tail store stands in for them).
    pub(crate) fn has_dormant(&self) -> bool {
        (self.levels.len() as u32) < self.max_level
    }

    /// Number of dormant levels represented by the shared tail.
    pub(crate) fn dormant_count(&self) -> usize {
        (self.max_level as usize).saturating_sub(self.levels.len())
    }

    /// The shared tail summary (an open root over the whole stream).
    pub(crate) fn tail_store(&self) -> &BucketStore<A> {
        &self.tail.store
    }

    /// Process one stream element on every materialized level and the tail.
    pub(crate) fn update(
        &mut self,
        agg: &A,
        alpha: usize,
        x: u64,
        y: u64,
        weight: i64,
        prepared: &PreparedOf<A>,
    ) {
        for (level, bound) in self.levels.iter_mut().zip(self.level_bounds.iter_mut()) {
            // The packed watermark check skips evicted-out levels without
            // touching their (much larger) Level structs.
            if y >= *bound {
                continue;
            }
            level.update(agg, alpha, x, y, weight, prepared);
            *bound = level.y_bound.unwrap_or(u64::MAX);
        }
        self.update_tail(agg, x, weight, prepared);
    }

    /// Process a batch of unit-weight tuples, level-major: each level's
    /// arena is walked for the whole batch at once, which keeps one level's
    /// slots hot in cache instead of cycling through every level per tuple.
    /// Level states are independent of one another, so this produces exactly
    /// the same final structure as tuple-major processing.
    pub(crate) fn update_batch(
        &mut self,
        agg: &A,
        alpha: usize,
        tuples: &[(u64, u64)],
        batch: &BatchOf<A>,
    ) {
        for (level, bound) in self.levels.iter_mut().zip(self.level_bounds.iter_mut()) {
            level.apply_batch(agg, alpha, tuples, batch, 0);
            *bound = level.y_bound.unwrap_or(u64::MAX);
        }
        // The tail is sequential: a level materialized at tuple i must still
        // receive tuples i+1.. through the normal level path. Record where
        // each new level came into existence, then replay the suffixes.
        let mut born_at: Vec<(usize, usize)> = Vec::new(); // (level slot, first unseen tuple)
        self.update_tail_batch(agg, tuples, batch, &mut born_at);
        for (slot, from) in born_at {
            let level = &mut self.levels[slot];
            level.apply_batch(agg, alpha, tuples, batch, from);
            self.level_bounds[slot] = level.y_bound.unwrap_or(u64::MAX);
        }
    }

    /// Feed the shared tail store (standing in for every dormant level) and
    /// materialize levels whose threshold the stream's estimate has crossed.
    fn update_tail(&mut self, agg: &A, x: u64, weight: i64, prepared: &PreparedOf<A>) {
        if !self.has_dormant() {
            return; // every level is materialized
        }
        let was_exact = self.tail.store.is_exact();
        self.tail.store.update_prepared(agg, x, weight, prepared);
        self.tail.pending_weight += weight as f64;
        if was_exact && !self.tail.store.is_exact() {
            // Representation change: the sketched estimate need not match the
            // exact value the headroom was computed from.
            self.tail.headroom = 0.0;
        }
        if self.tail.pending_weight >= self.tail.headroom {
            self.materialize_crossed_levels(agg);
        }
    }

    /// Batch counterpart of [`Self::update_tail`]: apply headroom-bounded
    /// chunks of the batch through the flat prepared layout, recording in
    /// `born_at` each level materialized mid-batch together with the index
    /// of the first tuple it has not yet seen.
    fn update_tail_batch(
        &mut self,
        agg: &A,
        tuples: &[(u64, u64)],
        batch: &BatchOf<A>,
        born_at: &mut Vec<(usize, usize)>,
    ) {
        let n = tuples.len();
        let mut i = 0;
        while i < n && self.has_dormant() {
            if self.tail.store.is_exact() {
                // Tuple-at-a-time: a conversion forces an immediate re-check.
                self.tail.store.update(agg, tuples[i].0, 1);
                self.tail.pending_weight += 1.0;
                if !self.tail.store.is_exact() {
                    self.tail.headroom = 0.0;
                }
                if self.tail.pending_weight >= self.tail.headroom {
                    let before = self.levels.len();
                    self.materialize_crossed_levels(agg);
                    for slot in before..self.levels.len() {
                        born_at.push((slot, i + 1));
                    }
                }
                i += 1;
            } else {
                let gap = self.tail.headroom - self.tail.pending_weight;
                let until_check = if gap <= 1.0 { 1 } else { gap.ceil() as usize };
                let j = i.saturating_add(until_check).min(n);
                self.tail.store.update_batch_range(agg, tuples, batch, i..j);
                self.tail.pending_weight += (j - i) as f64;
                if self.tail.pending_weight >= self.tail.headroom {
                    let before = self.levels.len();
                    self.materialize_crossed_levels(agg);
                    for slot in before..self.levels.len() {
                        born_at.push((slot, j));
                    }
                }
                i = j;
            }
        }
    }

    /// Re-estimate the tail and materialize every dormant level whose closing
    /// threshold `2^{ℓ+1}` the estimate has reached. A materialized level
    /// starts with a *closed* root holding a clone of the tail store —
    /// exactly the state the eager per-level loop would have produced, since
    /// an open root sees every stream element.
    fn materialize_crossed_levels(&mut self, agg: &A) {
        loop {
            let next_index = self.levels.len() as u32 + 1;
            if next_index > self.max_level {
                break;
            }
            let threshold = 2f64.powi(next_index as i32 + 1);
            let estimate = self.tail.store.estimate(agg);
            if estimate >= threshold {
                let mut level = Level::new(next_index, self.root);
                let root_slot = level.root_slot() as usize;
                level.arena.stores[root_slot] = self.tail.store.clone();
                level.arena.meta[root_slot].flags |= FLAG_CLOSED;
                self.levels.push(level);
                self.level_bounds.push(u64::MAX);
                // The estimate may have crossed several thresholds at once.
                continue;
            }
            self.tail.headroom = agg.weight_headroom(estimate, threshold);
            self.tail.pending_weight = 0.0;
            break;
        }
    }

    /// Merge `other` into `self` (Property V, lifted to whole level sets):
    /// same-index levels are union-merged in place, a level materialized in
    /// only one input absorbs the other's shared tail (which is exactly that
    /// input's dormant level), and the tails merge with the materialization
    /// check re-run — the combined stream's estimate may have crossed
    /// thresholds neither input had reached.
    pub(crate) fn merge_from(&mut self, agg: &A, alpha: usize, other: &Self) -> Result<()> {
        debug_assert_eq!(self.max_level, other.max_level);
        debug_assert_eq!(self.root, other.root);
        let both = self.levels.len().min(other.levels.len());
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.absorb(b, agg, alpha)?;
        }
        // Levels only self has materialized: other's dormant level is exactly
        // its shared tail — one open root over other's whole stream.
        for level in self.levels.iter_mut().skip(both) {
            level.absorb_tail(&other.tail.store, agg)?;
        }
        // Levels only other has materialized: self's dormant level is its
        // (pre-merge) shared tail.
        for i in self.levels.len()..other.levels.len() {
            let mut level = Level::from_tail(i as u32 + 1, self.root, &self.tail.store);
            level.absorb(&other.levels[i], agg, alpha)?;
            self.levels.push(level);
        }
        self.level_bounds = self
            .levels
            .iter()
            .map(|l| l.y_bound.unwrap_or(u64::MAX))
            .collect();

        // Shared tail: only meaningful while dormant levels remain, in which
        // case both inputs still had live tails (levels.len() < max_level for
        // both). Force a fresh estimate and materialize crossed levels.
        if self.has_dormant() {
            self.tail.store.merge_from(agg, &other.tail.store)?;
            self.tail.pending_weight = 0.0;
            self.tail.headroom = 0.0;
            self.materialize_crossed_levels(agg);
        }
        Ok(())
    }

    /// Space accounting over every dyadic level and the shared tail:
    /// `(buckets, stored tuples, bytes, levels with evictions)`. Dormant
    /// levels share one open root bucket; the backing store is physically
    /// stored (and therefore counted) once.
    pub(crate) fn space_accounting(&self) -> (usize, usize, usize, usize) {
        let mut buckets = 0usize;
        let mut tuples = 0usize;
        let mut bytes = 0usize;
        let mut levels_with_evictions = 0usize;
        for level in &self.levels {
            buckets += level.live;
            for (_, store) in level.live_buckets() {
                tuples += store.stored_tuples();
                bytes += store.space_bytes();
            }
            if level.y_bound.is_some() {
                levels_with_evictions += 1;
            }
        }
        let dormant = self.dormant_count();
        if dormant > 0 {
            buckets += dormant;
            tuples += self.tail.store.stored_tuples();
            bytes += self.tail.store.space_bytes();
        }
        (buckets, tuples, bytes, levels_with_evictions)
    }

    /// Serialise the engine (snapshot persistence): every materialized level
    /// in index order plus the shared tail and its gating state.
    pub(crate) fn encode_state(&self, w: &mut ByteWriter)
    where
        A::Sketch: StateCodec,
    {
        w.put_len(self.levels.len());
        for level in &self.levels {
            level.encode_state(w);
        }
        encode_store(&self.tail.store, w);
        w.put_f64(self.tail.pending_weight);
        w.put_f64(self.tail.headroom);
    }

    /// Rebuild an engine from [`Self::encode_state`] bytes for a structure
    /// with the given root interval and level budget (both derived from the
    /// decoded configuration, never trusted from the payload alone).
    pub(crate) fn decode_state(
        agg: &A,
        root: DyadicInterval,
        max_level: u32,
        r: &mut ByteReader<'_>,
    ) -> CodecResult<Self>
    where
        A::Sketch: StateCodec,
    {
        let n = r.get_len()?;
        if n > max_level as usize {
            return Err(CodecError::Corrupt(format!(
                "snapshot has {n} materialized levels, configuration allows {max_level}"
            )));
        }
        let mut levels = Vec::with_capacity(n);
        for i in 0..n {
            let level = Level::decode_state(agg, root, r)?;
            if level.index != i as u32 + 1 {
                return Err(CodecError::Corrupt(format!(
                    "level indices not contiguous: found {} at position {i}",
                    level.index
                )));
            }
            levels.push(level);
        }
        let store = decode_store(agg, r)?;
        let pending_weight = r.get_f64()?;
        let headroom = r.get_f64()?;
        let level_bounds = levels
            .iter()
            .map(|l: &Level<A>| l.y_bound.unwrap_or(u64::MAX))
            .collect();
        Ok(Self {
            levels,
            level_bounds,
            tail: TailState {
                store,
                pending_weight,
                headroom,
            },
            max_level,
            root,
        })
    }

    /// Assert the engine's structural invariants (test / `invariant-checks`
    /// builds only): packed bounds mirror the level watermarks, level
    /// indices are contiguous, and every level passes
    /// [`Level::check_invariants`].
    #[cfg(any(test, feature = "invariant-checks"))]
    pub(crate) fn check_invariants(&self) {
        assert_eq!(self.levels.len(), self.level_bounds.len());
        assert!(self.levels.len() as u32 <= self.max_level);
        for (i, (level, &bound)) in self.levels.iter().zip(&self.level_bounds).enumerate() {
            assert_eq!(level.index, i as u32 + 1, "level indices must be contiguous");
            assert_eq!(
                bound,
                level.y_bound.unwrap_or(u64::MAX),
                "packed bound out of sync with level {}",
                level.index
            );
            level.check_invariants(self.root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f2::F2Aggregate;

    fn agg() -> F2Aggregate {
        F2Aggregate::new(0.3, 0.1, 7)
    }

    fn prepared(agg: &F2Aggregate, x: u64, w: i64) -> PreparedOf<F2Aggregate> {
        let mut p = PreparedOf::<F2Aggregate>::default();
        agg.new_sketch().prepare_into(x, w, &mut p);
        p
    }

    #[test]
    fn level_routes_splits_and_evicts_with_valid_invariants() {
        let agg = agg();
        let root = DyadicInterval::root(255);
        let mut level = Level::new(1, root);
        for i in 0..2_000u64 {
            let (x, y) = (i % 40, (i * 37) % 256);
            let p = prepared(&agg, x, 1);
            level.update(&agg, 8, x, y, 1, &p);
        }
        assert!(level.live <= 8, "eviction must keep the level within alpha");
        assert!(level.y_bound.is_some(), "alpha = 8 must force evictions here");
        level.check_invariants(root);
    }

    #[test]
    fn absorb_unions_trees_and_keeps_invariants() {
        let agg = agg();
        let root = DyadicInterval::root(1023);
        let mut a = Level::new(2, root);
        let mut b = Level::new(2, root);
        for i in 0..1_500u64 {
            let (x, y) = (i % 25, (i * 13) % 1024);
            let p = prepared(&agg, x, 1);
            if i % 2 == 0 {
                a.update(&agg, 32, x, y, 1, &p);
            } else {
                b.update(&agg, 32, x, y, 1, &p);
            }
        }
        a.absorb(&b, &agg, 32).unwrap();
        a.check_invariants(root);
        assert!(a.live <= 32);
        // The merged level summarises both inputs: total stored weight at
        // least either side's.
        let merged_tuples: usize = a.live_buckets().map(|(_, s)| s.stored_tuples()).sum();
        assert!(merged_tuples > 0);
    }

    #[test]
    fn absorb_node_set_is_direction_independent() {
        let agg = agg();
        let root = DyadicInterval::root(4095);
        let build = |mult: u64, n: u64| {
            let mut level = Level::new(3, root);
            for i in 0..n {
                let (x, y) = (i % 40, (i * mult) % 4096);
                let p = prepared(&agg, x, 1);
                level.update(&agg, 256, x, y, 1, &p);
            }
            level
        };
        // No evictions at this budget, so the union must be exact: the same
        // node set (and leaf tiling) whichever side absorbs the other.
        let (a, b) = (build(37, 2_000), build(11, 600));
        let mut ab = a.clone();
        ab.absorb(&b, &agg, 256).unwrap();
        let mut ba = b.clone();
        ba.absorb(&a, &agg, 256).unwrap();
        ab.check_invariants(root);
        ba.check_invariants(root);
        let nodes = |l: &Level<F2Aggregate>| -> Vec<(DyadicInterval, usize)> {
            let mut v: Vec<_> = l.live_buckets().map(|(iv, s)| (iv, s.stored_tuples())).collect();
            v.sort_unstable_by_key(|&(iv, _)| (iv.lo, iv.len()));
            v
        };
        assert_eq!(nodes(&ab), nodes(&ba));
        let leaves = |l: &Level<F2Aggregate>| -> Vec<(u64, DyadicInterval)> {
            l.leaves.iter().map(|(lo, s)| (lo, l.arena.interval(s))).collect()
        };
        assert_eq!(leaves(&ab), leaves(&ba));
        // In-place absorb kept everything either side stored.
        let tuples = |l: &Level<F2Aggregate>| -> usize {
            l.live_buckets().map(|(_, s)| s.stored_tuples()).sum()
        };
        assert!(tuples(&ab) >= tuples(&a).max(tuples(&b)));
    }

    #[test]
    fn absorb_adopts_the_lower_watermark_and_drops_unreachable_nodes() {
        let agg = agg();
        let root = DyadicInterval::root(255);
        let mut a = Level::new(1, root);
        let mut b = Level::new(1, root);
        for i in 0..2_000u64 {
            let (x, y) = (i % 40, (i * 37) % 256);
            let p = prepared(&agg, x, 1);
            a.update(&agg, 1024, x, y, 1, &p); // no evictions: budget is ample
            b.update(&agg, 8, x, y, 1, &p); // tiny budget: forced evictions
        }
        assert_eq!(a.y_bound, None);
        let bound = b.y_bound.expect("alpha = 8 must force evictions");
        // Ample post-merge budget, so no further eviction lowers the
        // watermark past the one inherited from `b`.
        a.absorb(&b, &agg, 1024).unwrap();
        a.check_invariants(root);
        assert_eq!(a.y_bound, Some(bound));
        for (iv, _) in a.live_buckets() {
            assert!(iv.lo < bound, "node at {iv:?} is unreachable past {bound}");
        }
    }

    #[test]
    fn absorb_tail_feeds_the_root_and_recloses() {
        let agg = agg();
        let root = DyadicInterval::root(1023);
        let mut level = Level::new(2, root);
        for i in 0..500u64 {
            let (x, y) = (i % 20, (i * 13) % 1024);
            let p = prepared(&agg, x, 1);
            level.update(&agg, 64, x, y, 1, &p);
        }
        let before: usize = level.live_buckets().map(|(_, s)| s.stored_tuples()).sum();
        let node_count = level.live;
        // A dormant level's stand-in: a tail store with some weight.
        let mut tail: BucketStore<F2Aggregate> = BucketStore::new();
        for x in 0..30u64 {
            tail.update(&agg, x, 2);
        }
        level.absorb_tail(&tail, &agg).unwrap();
        level.check_invariants(root);
        assert_eq!(level.live, node_count, "absorbing a tail adds no node");
        let after: usize = level.live_buckets().map(|(_, s)| s.stored_tuples()).sum();
        assert!(after >= before, "root store must have grown: {before} -> {after}");
        // The root (largest span at endpoint 0) must now be closed: the tail
        // pushed its estimate far past the level-2 threshold of 8.
        let (_, _, root_slot) = *level.order.range((0, 0, 0)..(1, 0, 0)).next().unwrap();
        assert!(level.arena.meta[root_slot as usize].is_closed());
    }

    #[test]
    fn engine_materializes_levels_as_estimates_grow() {
        let agg = agg();
        let root = DyadicInterval::root(1023);
        let mut engine = LevelEngine::new(root, 20);
        assert!(engine.has_dormant());
        assert_eq!(engine.dormant_count(), 20);
        for i in 0..3_000u64 {
            let x = i % 50;
            let p = prepared(&agg, x, 1);
            engine.update(&agg, 64, x, (i * 11) % 1024, 1, &p);
        }
        assert!(
            !engine.levels().is_empty(),
            "3k tuples over 50 ids must cross the first thresholds"
        );
        assert!(engine.has_dormant(), "top levels stay dormant");
        engine.check_invariants();
    }

    #[test]
    fn engine_batch_path_equals_scalar_path() {
        let agg = agg();
        let root = DyadicInterval::root(4095);
        let mut scalar = LevelEngine::new(root, 30);
        let mut batched = LevelEngine::new(root, 30);
        let mut tuples: Vec<(u64, u64)> = Vec::new();
        let mut state = 11u64;
        for _ in 0..4_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            tuples.push(((state >> 33) % 200, (state >> 13) % 4096));
        }
        for &(x, y) in &tuples {
            let p = prepared(&agg, x, 1);
            scalar.update(&agg, 48, x, y, 1, &p);
        }
        let proto = agg.new_sketch();
        for chunk in tuples.chunks(512) {
            let items: Vec<(u64, i64)> = chunk.iter().map(|&(x, _)| (x, 1)).collect();
            let mut batch = BatchOf::<F2Aggregate>::default();
            proto.prepare_batch_into(&items, &mut batch);
            batched.update_batch(&agg, 48, chunk, &batch);
        }
        assert_eq!(scalar.levels().len(), batched.levels().len());
        for (a, b) in scalar.levels().iter().zip(batched.levels()) {
            assert_eq!(a.live, b.live);
            assert_eq!(a.y_bound, b.y_bound);
            assert_eq!(a.leaves, b.leaves);
            let av: Vec<_> = a.live_buckets().map(|(iv, s)| (iv, s.stored_tuples())).collect();
            let bv: Vec<_> = b.live_buckets().map(|(iv, s)| (iv, s.stored_tuples())).collect();
            assert_eq!(av, bv);
        }
        scalar.check_invariants();
        batched.check_invariants();
    }
}
