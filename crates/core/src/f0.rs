//! Correlated distinct counting `F_0` (Section 3.2 of the paper).
//!
//! The paper adapts the Gibbons–Tirthapura distinct sampler: maintain samples
//! `S_0, S_1, …, S_k` (`k = log m`); item `(x, y)` is placed in level `i` iff
//! `h(x) < 2^{-i}`. Each level has a capacity `α`; instead of the FIFO
//! eviction of the sliding-window algorithm, the correlated variant keeps the
//! entries with the **smallest y values** (a priority queue keyed by y), and
//! each retained identifier remembers the smallest y it has been seen with.
//!
//! A query for `|{x : (x, y) ∈ S, y ≤ c}|` picks the smallest level that has
//! not evicted any entry with y ≤ c (tracked by a per-level watermark, the
//! analogue of `Y_ℓ`), counts the sampled identifiers with `y_min ≤ c`, and
//! scales by `2^{level}`.

use crate::compose::{first_answering, min_watermark};
use crate::config::DEFAULT_SEED;
use crate::error::{CoreError, Result};
use crate::snapshot::{self, SnapshotKind};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use cora_sketch::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::{BTreeSet, HashMap};

/// One sampling level: identifiers sampled at this level, keyed for y-priority
/// eviction.
#[derive(Debug, Clone)]
struct SampleLevel {
    /// item -> smallest y seen for that item (at this level).
    by_item: HashMap<u64, u64>,
    /// (y, item) pairs ordered by y for eviction of the largest y.
    by_y: BTreeSet<(u64, u64)>,
    /// Smallest y ever evicted from this level (`None` = nothing evicted).
    evicted_watermark: Option<u64>,
}

impl SampleLevel {
    fn new() -> Self {
        Self {
            by_item: HashMap::new(),
            by_y: BTreeSet::new(),
            evicted_watermark: None,
        }
    }

    /// Merge another level's sample into this one (Property V for the
    /// distinct sampler): union the `(item, min-y)` maps keeping the smaller
    /// y per item, take the lower eviction watermark, and re-enforce the
    /// capacity (which may lower the watermark further, exactly as a
    /// sequential overflow would).
    fn merge_from(&mut self, other: &Self, capacity: usize) {
        for (&item, &y) in &other.by_item {
            self.insert(item, y, capacity);
        }
        self.evicted_watermark = min_watermark(self.evicted_watermark, other.evicted_watermark);
    }

    /// Insert / refresh an item with a y value, then enforce the capacity.
    fn insert(&mut self, item: u64, y: u64, capacity: usize) {
        match self.by_item.get(&item) {
            Some(&existing) if existing <= y => {}
            Some(&existing) => {
                self.by_y.remove(&(existing, item));
                self.by_y.insert((y, item));
                self.by_item.insert(item, y);
            }
            None => {
                self.by_item.insert(item, y);
                self.by_y.insert((y, item));
            }
        }
        while self.by_item.len() > capacity {
            let &(largest_y, victim) = self
                .by_y
                .iter()
                .next_back()
                .expect("len > capacity >= 1, so non-empty");
            self.by_y.remove(&(largest_y, victim));
            self.by_item.remove(&victim);
            self.evicted_watermark = Some(match self.evicted_watermark {
                None => largest_y,
                Some(w) => w.min(largest_y),
            });
        }
    }

    /// Number of retained identifiers with y ≤ c.
    fn count_upto(&self, c: u64) -> usize {
        // by_y is ordered by (y, item); range over y <= c.
        self.by_y.range(..=(c, u64::MAX)).count()
    }
}

/// Correlated distinct-count sketch (one hash function / one estimator
/// instance). [`CorrelatedF0`] combines several for the (ε, δ) guarantee.
#[derive(Debug, Clone)]
struct CorrelatedDistinctSampler {
    hash: PolynomialHash,
    levels: Vec<SampleLevel>,
    capacity: usize,
}

impl CorrelatedDistinctSampler {
    fn new(capacity: usize, num_levels: usize, seed: u64) -> Self {
        Self {
            hash: PolynomialHash::new(2, derive_seed(seed, 0xC0F0)),
            levels: (0..num_levels).map(|_| SampleLevel::new()).collect(),
            capacity,
        }
    }

    /// Deepest level this item belongs to (level 0 always).
    fn item_level(&self, item: u64) -> usize {
        let h = self.hash.hash64(item);
        let max = self.levels.len() - 1;
        (h.leading_zeros() as usize).min(max)
    }

    fn insert(&mut self, item: u64, y: u64) {
        let deepest = self.item_level(item);
        let capacity = self.capacity;
        for level in self.levels.iter_mut().take(deepest + 1) {
            level.insert(item, y, capacity);
        }
    }

    fn estimate(&self, c: u64) -> Option<f64> {
        // Level selection is the same rule as Algorithm 3's: the smallest
        // level whose eviction watermark still covers the threshold.
        first_answering(&self.levels, c, |level| level.evicted_watermark)
            .map(|(i, level)| level.count_upto(c) as f64 * 2f64.powi(i as i32))
    }

    fn stored_tuples(&self) -> usize {
        self.levels.iter().map(|l| l.by_item.len()).sum()
    }
}

/// Correlated `F_0` sketch: estimates `|{x : (x, y) ∈ S, y ≤ c}|` for a
/// query-time threshold `c`, using the median over independent sampler
/// instances.
#[derive(Debug, Clone)]
pub struct CorrelatedF0 {
    samplers: Vec<CorrelatedDistinctSampler>,
    epsilon: f64,
    delta: f64,
    y_max: u64,
    seed: u64,
    items_processed: u64,
}

impl CorrelatedF0 {
    /// Build a correlated `F_0` sketch.
    ///
    /// * `epsilon`, `delta` — target accuracy / failure probability;
    /// * `x_domain_log2` — `log2` of the identifier domain size `m` (sets the
    ///   number of sampling levels, as in the paper where the number of levels
    ///   is `log m`);
    /// * `y_max` — largest y value that will be inserted.
    pub fn new(epsilon: f64, delta: f64, x_domain_log2: u32, y_max: u64) -> Result<Self> {
        Self::with_seed(epsilon, delta, x_domain_log2, y_max, DEFAULT_SEED)
    }

    /// [`CorrelatedF0::new`] with an explicit seed.
    pub fn with_seed(
        epsilon: f64,
        delta: f64,
        x_domain_log2: u32,
        y_max: u64,
        seed: u64,
    ) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in (0,1), got {epsilon}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                detail: format!("must be in (0,1), got {delta}"),
            });
        }
        if x_domain_log2 == 0 || x_domain_log2 > 63 {
            return Err(CoreError::InvalidParameter {
                name: "x_domain_log2",
                detail: format!("must be in [1, 63], got {x_domain_log2}"),
            });
        }
        // Practical sizing (see DESIGN.md): the query level retains up to
        // `capacity` sampled identifiers, giving relative error ~ 1/sqrt of
        // the retained count; a handful of independent instances are medianed.
        let capacity = ((4.0 / (epsilon * epsilon)).ceil() as usize).max(16);
        let instances = ((1.0 / delta).ln().ceil() as usize).max(3) | 1;
        let num_levels = x_domain_log2 as usize + 1;
        let samplers = (0..instances)
            .map(|i| CorrelatedDistinctSampler::new(capacity, num_levels, derive_seed(seed, i as u64)))
            .collect();
        Ok(Self {
            samplers,
            epsilon,
            delta,
            y_max,
            seed,
            items_processed: 0,
        })
    }

    /// Merge `other` into `self` (Property V lifted to the correlated
    /// distinct sampler): every sampler instance merges level-wise — items
    /// keep the smallest y either shard saw them with, watermarks drop to the
    /// lower of the two, and capacities are re-enforced. Requires identical
    /// construction parameters and seed (the samplers must share hash
    /// functions for the union to be a sample of the union stream).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.epsilon != other.epsilon
            || self.delta != other.delta
            || self.y_max != other.y_max
            || self.seed != other.seed
            || self.samplers.len() != other.samplers.len()
        {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "CorrelatedF0 parameters differ: (eps {}, delta {}, y_max {}, seed {:#x}, {} instances) \
                     vs (eps {}, delta {}, y_max {}, seed {:#x}, {} instances)",
                    self.epsilon, self.delta, self.y_max, self.seed, self.samplers.len(),
                    other.epsilon, other.delta, other.y_max, other.seed, other.samplers.len()
                ),
            });
        }
        for (s, o) in self.samplers.iter_mut().zip(&other.samplers) {
            if s.levels.len() != o.levels.len() || s.capacity != o.capacity {
                return Err(CoreError::IncompatibleMerge {
                    detail: "CorrelatedF0 sampler dimensions differ".into(),
                });
            }
            let capacity = s.capacity;
            for (level, other_level) in s.levels.iter_mut().zip(&o.levels) {
                level.merge_from(other_level, capacity);
            }
        }
        self.items_processed += other.items_processed;
        Ok(())
    }

    /// Target relative error.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Target failure probability.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of independent sampler instances (medianed at query time).
    pub fn instances(&self) -> usize {
        self.samplers.len()
    }

    /// Largest accepted y value.
    pub fn y_max(&self) -> u64 {
        self.y_max
    }

    /// Master seed the sampler hash functions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `log2` of the identifier domain this sketch was built for (one
    /// sampling level per bit, plus level 0).
    pub fn x_domain_log2(&self) -> u32 {
        (self.samplers[0].levels.len() - 1) as u32
    }

    /// Number of stream elements processed.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Process a stream element `(x, y)`.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        if y > self.y_max {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.y_max,
            });
        }
        self.items_processed += 1;
        for s in &mut self.samplers {
            s.insert(x, y);
        }
        Ok(())
    }

    /// Estimate the number of distinct identifiers among tuples with `y ≤ c`.
    pub fn query(&self, c: u64) -> Result<f64> {
        let c = c.min(self.y_max);
        let mut estimates: Vec<f64> = Vec::with_capacity(self.samplers.len());
        for s in &self.samplers {
            if let Some(e) = s.estimate(c) {
                estimates.push(e);
            }
        }
        if estimates.is_empty() {
            return Err(CoreError::QueryFailed { threshold: c });
        }
        estimates.sort_by(|a, b| a.total_cmp(b));
        Ok(estimates[estimates.len() / 2])
    }

    /// Total stored tuples across all samplers and levels — the unit reported
    /// in the paper's Figures 6 and 7.
    pub fn stored_tuples(&self) -> usize {
        self.samplers.iter().map(|s| s.stored_tuples()).sum()
    }

    /// Serialise the sketch into a versioned, checksummed snapshot frame
    /// (see [`crate::snapshot`]). The construction parameters — seed
    /// included — travel in the payload, so [`Self::restore_from`] needs only
    /// the bytes, answers queries bit-identically, and stays
    /// merge-compatible with same-parameter sketches.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`Self::snapshot`], appending the frame to a caller-provided buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        w.put_f64(self.epsilon);
        w.put_f64(self.delta);
        w.put_u64(self.y_max);
        w.put_u64(self.seed);
        w.put_u32((self.samplers[0].levels.len() - 1) as u32);
        w.put_u64(self.items_processed);
        w.put_len(self.samplers.len());
        for sampler in &self.samplers {
            w.put_len(sampler.levels.len());
            for level in &sampler.levels {
                w.put_opt_u64(level.evicted_watermark);
                // Entries sorted by item: map order is arbitrary, wire order
                // must not be.
                let mut entries: Vec<(u64, u64)> =
                    level.by_item.iter().map(|(&item, &y)| (item, y)).collect();
                entries.sort_unstable();
                w.put_len(entries.len());
                for (item, y) in entries {
                    w.put_u64(item);
                    w.put_u64(y);
                }
            }
        }
        snapshot::seal_frame_into(SnapshotKind::F0, w.as_bytes(), out);
    }

    /// Rebuild a sketch from [`Self::snapshot`] bytes (magic, version, kind,
    /// and checksum are validated before any state is interpreted).
    pub fn restore_from(bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::F0)?;
        let mut r = ByteReader::new(payload);
        let epsilon = r.get_f64()?;
        let delta = r.get_f64()?;
        let y_max = r.get_u64()?;
        let seed = r.get_u64()?;
        let x_domain_log2 = r.get_u32()?;
        let mut sketch = Self::with_seed(epsilon, delta, x_domain_log2, y_max, seed)?;
        sketch.items_processed = r.get_u64()?;
        let corrupt = |detail: String| CoreError::from(CodecError::Corrupt(detail));
        let n = r.get_len()?;
        if n != sketch.samplers.len() {
            return Err(corrupt(format!(
                "snapshot has {n} sampler instances, parameters derive {}",
                sketch.samplers.len()
            )));
        }
        for sampler in &mut sketch.samplers {
            let levels = r.get_len()?;
            if levels != sampler.levels.len() {
                return Err(corrupt(format!(
                    "snapshot sampler has {levels} levels, parameters derive {}",
                    sampler.levels.len()
                )));
            }
            for level in &mut sampler.levels {
                level.evicted_watermark = r.get_opt_u64()?;
                let m = r.get_len()?;
                if m > sampler.capacity {
                    return Err(corrupt(format!(
                        "snapshot level holds {m} entries, capacity is {}",
                        sampler.capacity
                    )));
                }
                let mut prev: Option<u64> = None;
                for _ in 0..m {
                    let item = r.get_u64()?;
                    let y = r.get_u64()?;
                    if prev.is_some_and(|p| p >= item) {
                        return Err(corrupt("sampler entries out of order".into()));
                    }
                    prev = Some(item);
                    level.by_item.insert(item, y);
                    level.by_y.insert((y, item));
                }
            }
        }
        r.expect_end()?;
        Ok(sketch)
    }

    /// Approximate heap bytes (each stored entry is an `(item, y)` pair plus
    /// its index entry).
    pub fn space_bytes(&self) -> usize {
        self.stored_tuples() * 2 * std::mem::size_of::<(u64, u64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(CorrelatedF0::new(0.0, 0.1, 20, 100).is_err());
        assert!(CorrelatedF0::new(0.1, 0.0, 20, 100).is_err());
        assert!(CorrelatedF0::new(0.1, 0.1, 0, 100).is_err());
        assert!(CorrelatedF0::new(0.1, 0.1, 64, 100).is_err());
        assert!(CorrelatedF0::new(0.1, 0.1, 20, 100).is_ok());
    }

    #[test]
    fn rejects_out_of_range_y() {
        let mut s = CorrelatedF0::new(0.2, 0.1, 10, 100).unwrap();
        assert!(matches!(s.insert(1, 101), Err(CoreError::YOutOfRange { .. })));
        assert!(s.insert(1, 100).is_ok());
    }

    #[test]
    fn empty_query_is_zero() {
        let s = CorrelatedF0::new(0.2, 0.1, 10, 1000).unwrap();
        assert_eq!(s.query(500).unwrap(), 0.0);
    }

    #[test]
    fn exact_when_small() {
        let mut s = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 3).unwrap();
        for x in 0..100u64 {
            s.insert(x, x * 10).unwrap();
        }
        // All 100 identifiers fit in level 0, so counts are exact.
        assert_eq!(s.query(1000).unwrap(), 100.0);
        assert_eq!(s.query(495).unwrap(), 50.0);
        assert_eq!(s.query(0).unwrap(), 1.0);
    }

    #[test]
    fn duplicates_keep_smallest_y() {
        let mut s = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 3).unwrap();
        s.insert(7, 900).unwrap();
        s.insert(7, 100).unwrap();
        s.insert(7, 500).unwrap();
        // The identifier's smallest y is 100, so it is counted from c = 100 on.
        assert_eq!(s.query(99).unwrap(), 0.0);
        assert_eq!(s.query(100).unwrap(), 1.0);
        assert_eq!(s.query(1000).unwrap(), 1.0);
    }

    #[test]
    fn merge_matches_sequential_on_small_streams() {
        // Below every level's capacity the sampler state is a deterministic
        // function of the (item, min-y) multiset, so shard-then-merge must
        // answer every threshold exactly like sequential ingest.
        let build = || CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 3).unwrap();
        let mut seq = build();
        let mut left = build();
        let mut right = build();
        for x in 0..120u64 {
            let y = (x * 7) % 1001;
            seq.insert(x, y).unwrap();
            if x % 2 == 0 {
                left.insert(x, y).unwrap();
            } else {
                right.insert(x, y).unwrap();
            }
        }
        left.merge_from(&right).unwrap();
        assert_eq!(left.items_processed(), seq.items_processed());
        for c in (0..=1000u64).step_by(100) {
            assert_eq!(left.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn merge_keeps_smallest_y_across_shards() {
        let build = || CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 3).unwrap();
        let mut a = build();
        let mut b = build();
        a.insert(7, 900).unwrap();
        b.insert(7, 100).unwrap();
        a.merge_from(&b).unwrap();
        assert_eq!(a.query(99).unwrap(), 0.0);
        assert_eq!(a.query(100).unwrap(), 1.0);
    }

    #[test]
    fn merge_rejects_mismatched_parameters() {
        let mut a = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 3).unwrap();
        let seed = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 4).unwrap();
        let eps = CorrelatedF0::with_seed(0.3, 0.1, 16, 1000, 3).unwrap();
        let domain = CorrelatedF0::with_seed(0.2, 0.1, 16, 2000, 3).unwrap();
        for other in [&seed, &eps, &domain] {
            assert!(matches!(
                a.merge_from(other),
                Err(CoreError::IncompatibleMerge { .. })
            ));
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut s = CorrelatedF0::with_seed(0.2, 0.05, 18, 1 << 18, 11).unwrap();
        for x in 0..30_000u64 {
            s.insert(x % 9_000, (x * 7) % (1 << 18)).unwrap();
        }
        let bytes = s.snapshot();
        let restored = CorrelatedF0::restore_from(&bytes).unwrap();
        assert_eq!(restored.items_processed(), s.items_processed());
        assert_eq!(restored.stored_tuples(), s.stored_tuples());
        for c in (0..=(1u64 << 18)).step_by(1 << 13) {
            assert_eq!(restored.query(c).unwrap(), s.query(c).unwrap(), "c={c}");
        }
        // Restored sketches stay merge-compatible with live shards.
        let mut shard = CorrelatedF0::with_seed(0.2, 0.05, 18, 1 << 18, 11).unwrap();
        for x in 0..500u64 {
            shard.insert(10_000 + x, x).unwrap();
        }
        let mut a = s.clone();
        let mut b = restored;
        a.merge_from(&shard).unwrap();
        b.merge_from(&shard).unwrap();
        for c in (0..=(1u64 << 18)).step_by(1 << 14) {
            assert_eq!(a.query(c).unwrap(), b.query(c).unwrap(), "c={c}");
        }
        assert_eq!(s.snapshot(), bytes, "identical state must snapshot identically");
    }

    #[test]
    fn snapshot_rejects_corruption_and_wrong_kind() {
        let mut s = CorrelatedF0::with_seed(0.3, 0.1, 12, 1000, 3).unwrap();
        for x in 0..200u64 {
            s.insert(x, x % 1000).unwrap();
        }
        let bytes = s.snapshot();
        let mut corrupt = bytes.clone();
        corrupt[20] ^= 1;
        assert!(matches!(
            CorrelatedF0::restore_from(&corrupt),
            Err(CoreError::Snapshot { .. })
        ));
        assert!(CorrelatedF0::restore_from(&bytes[..bytes.len() - 4]).is_err());
        // A rarity frame is not an F0 frame.
        let rarity = crate::rarity::CorrelatedRarity::with_seed(0.3, 12, 1000, 3)
            .unwrap()
            .snapshot();
        assert!(CorrelatedF0::restore_from(&rarity).is_err());
    }

    #[test]
    fn accuracy_on_large_uniform_stream() {
        let epsilon = 0.15;
        let y_max = 1_000_000u64;
        let mut s = CorrelatedF0::with_seed(epsilon, 0.05, 20, y_max, 11).unwrap();
        // 60k distinct identifiers, y uniform; each identifier's y is x * 16,
        // so the correlated distinct count at threshold c is ~c/16.
        let n = 60_000u64;
        for x in 0..n {
            s.insert(x, (x * 16) % (y_max + 1)).unwrap();
        }
        for &c in &[y_max / 8, y_max / 2, y_max] {
            let truth = ((c / 16) + 1).min(n) as f64;
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err < 2.5 * epsilon,
                "c = {c}: estimate {est}, truth {truth}, err {err}"
            );
        }
    }

    #[test]
    fn eviction_pushes_queries_to_deeper_levels_but_stays_accurate() {
        let epsilon = 0.2;
        let mut s = CorrelatedF0::with_seed(epsilon, 0.05, 20, 1 << 20, 17).unwrap();
        let n = 100_000u64;
        for x in 0..n {
            // y correlated with x so low thresholds select few identifiers.
            s.insert(x, (x * 7) % (1 << 20)).unwrap();
        }
        let c = 1 << 19; // half the domain -> about half the identifiers
        let truth = (n / 2) as f64;
        let est = s.query(c).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 2.5 * epsilon, "estimate {est}, truth {truth}, err {err}");
        // Space must be far below the number of distinct identifiers.
        assert!(
            s.stored_tuples() < (n as usize) / 2,
            "sampler stores {} tuples for {} distinct items",
            s.stored_tuples(),
            n
        );
    }

    #[test]
    fn space_is_bounded_by_capacity_times_levels() {
        let mut s = CorrelatedF0::with_seed(0.3, 0.2, 20, 1 << 20, 5).unwrap();
        for x in 0..200_000u64 {
            s.insert(x, x % (1 << 20)).unwrap();
        }
        let cap = ((4.0_f64 / (0.3 * 0.3)).ceil() as usize).max(16);
        let bound = s.instances() * 21 * cap;
        assert!(s.stored_tuples() <= bound);
        assert!(s.space_bytes() >= s.stored_tuples());
        assert_eq!(s.items_processed(), 200_000);
    }
}
