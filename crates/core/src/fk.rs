//! Correlated higher frequency moments `F_k`, `k ≥ 2` (Section 3.1,
//! Theorem 3 of the paper).
//!
//! Constants from Lemmas 6 and 8: `c1(j) = j^k` and `c2(ε) = (ε/(9k))^k`.
//! The per-bucket whole-stream sketch is the subsampling `F_k` estimator from
//! `cora-sketch` (the Indyk–Woodruff stand-in documented in DESIGN.md).

use crate::aggregate::CorrelatedAggregate;
use crate::config::{CorrelatedConfig, DEFAULT_SEED};
use crate::error::{CoreError, Result};
use crate::framework::CorrelatedSketch;
use cora_sketch::{ExactFrequencies, FkSketch};

/// Descriptor for the correlated `F_k` aggregate.
#[derive(Debug, Clone)]
pub struct FkAggregate {
    k: u32,
    /// Per-bucket SpaceSaving capacity.
    capacity: usize,
    /// Number of subsampling levels inside each per-bucket sketch.
    levels: usize,
    seed: u64,
}

impl FkAggregate {
    /// Create an `F_k` aggregate (`k ≥ 2`) with per-bucket sketches targeting
    /// relative error `epsilon/2`.
    pub fn new(k: u32, epsilon: f64, seed: u64) -> Result<Self> {
        if k < 2 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                detail: format!("correlated F_k requires k >= 2, got {k}"),
            });
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in (0,1), got {epsilon}"),
            });
        }
        let upsilon = epsilon / 2.0;
        let capacity = ((8.0 / (upsilon * upsilon)).ceil() as usize).clamp(32, 1 << 14);
        Ok(Self {
            k,
            capacity,
            levels: 24,
            seed,
        })
    }

    /// The moment order `k`.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl CorrelatedAggregate for FkAggregate {
    type Sketch = FkSketch;

    fn name(&self) -> String {
        format!("F{}", self.k)
    }

    fn c1(&self, j: f64) -> f64 {
        // Lemma 6: F_k(∪ S_i) <= j^k max F_k(S_i).
        j.powi(self.k as i32)
    }

    fn c2(&self, eps: f64) -> f64 {
        // Lemma 8: c2(ε) = (ε/(9k))^k.
        (eps / (9.0 * f64::from(self.k))).powi(self.k as i32)
    }

    fn f_max_log2(&self, max_stream_len: u64) -> u32 {
        // F_k <= n^k for unit weights.
        (self.k * (64 - max_stream_len.leading_zeros())).clamp(4, 126)
    }

    fn new_sketch(&self) -> FkSketch {
        FkSketch::with_dimensions(self.k, self.capacity, self.levels, self.seed)
    }

    fn sketch_size_hint(&self) -> usize {
        // The per-bucket sketch's dominant cost is its level-0 summary; deeper
        // levels hold geometrically fewer items in expectation.
        self.capacity * 2
    }

    fn exact_value(&self, freqs: &ExactFrequencies) -> f64 {
        freqs.frequency_moment(self.k)
    }

    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        // ‖f + g‖_k ≤ ‖f‖_k + ‖g‖_k ≤ F_k^{1/k} + ‖g‖₁: the true moment
        // stays below the threshold while the added weight is below
        // threshold^{1/k} − F_k^{1/k}. The per-bucket subsampling sketch's
        // estimate tracks the true value only up to its own relative error,
        // so for sketched F_k buckets this is an amortization heuristic: a
        // close can be delayed by at most one headroom window, which the
        // aggregate's loose error budget absorbs.
        let k = f64::from(self.k);
        (threshold.max(0.0).powf(1.0 / k) - value.max(0.0).powf(1.0 / k)).max(0.0)
    }
}

/// A correlated `F_k` sketch: answers `F_k({x : y ≤ c})` for query-time `c`.
pub type CorrelatedFk = CorrelatedSketch<FkAggregate>;

/// Build a correlated `F_k` sketch (`k ≥ 2`).
pub fn correlated_fk(
    k: u32,
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
) -> Result<CorrelatedFk> {
    correlated_fk_seeded(k, epsilon, delta, y_max, max_stream_len, DEFAULT_SEED)
}

/// [`correlated_fk`] with an explicit seed.
pub fn correlated_fk_seeded(
    k: u32,
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
    seed: u64,
) -> Result<CorrelatedFk> {
    let agg = FkAggregate::new(k, epsilon, seed)?;
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(seed);
    CorrelatedSketch::new(agg, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_sketch::StreamSketch as _;

    #[test]
    fn parameter_validation() {
        assert!(FkAggregate::new(1, 0.2, 1).is_err());
        assert!(FkAggregate::new(3, 0.0, 1).is_err());
        assert!(FkAggregate::new(3, 0.2, 1).is_ok());
        assert!(correlated_fk(1, 0.2, 0.1, 100, 1000).is_err());
    }

    #[test]
    fn constants_follow_lemmas() {
        let agg = FkAggregate::new(3, 0.2, 1).unwrap();
        assert_eq!(agg.c1(2.0), 8.0);
        let c2 = agg.c2(0.27);
        assert!((c2 - (0.01f64).powi(3)).abs() < 1e-12);
        assert_eq!(agg.name(), "F3");
        assert_eq!(agg.k(), 3);
    }

    #[test]
    fn f_max_scales_with_k() {
        let f3 = FkAggregate::new(3, 0.2, 1).unwrap();
        let f4 = FkAggregate::new(4, 0.2, 1).unwrap();
        assert!(f4.f_max_log2(1 << 20) > f3.f_max_log2(1 << 20));
    }

    #[test]
    fn correlated_f3_tracks_exact_on_skewed_stream() {
        let y_max = 2047u64;
        let mut s = correlated_fk_seeded(3, 0.25, 0.1, y_max, 100_000, 11).unwrap();
        let mut tuples = Vec::new();
        let mut state = 5u64;
        for i in 0..30_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Zipf-ish identifiers: small ids occur much more often.
            let r = (state >> 33) % 1000;
            let x = (1000.0 / ((r + 1) as f64)).floor() as u64;
            let y = (state >> 13) % (y_max + 1);
            tuples.push((x, y));
            s.insert(x, y).unwrap();
            let _ = i;
        }
        for &c in &[y_max / 4, y_max / 2, y_max] {
            let mut exact = ExactFrequencies::new();
            for &(x, y) in &tuples {
                if y <= c {
                    exact.insert(x);
                }
            }
            let truth = exact.frequency_moment(3);
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err < 0.4,
                "correlated F3 at c={c}: est {est}, truth {truth}, err {err}"
            );
        }
    }

    #[test]
    fn exact_value_matches_direct_moment() {
        let agg = FkAggregate::new(4, 0.3, 1).unwrap();
        let mut f = ExactFrequencies::new();
        f.update(1, 2);
        f.update(2, 3);
        assert_eq!(agg.exact_value(&f), 16.0 + 81.0);
    }
}
