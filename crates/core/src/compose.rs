//! The unified query core: watermark arithmetic, level selection,
//! generation-validated memo caches, and Algorithm 3's query-time
//! composition.
//!
//! Every correlated structure in this crate answers a query the same way:
//! pick the smallest level whose **eviction watermark** still covers the
//! threshold `c`, then read that level (composing bucket summaries for the
//! framework sketch, counting retained samples for the distinct-sampling
//! structures). This module owns that shared machinery so
//! [`CorrelatedSketch`](crate::framework::CorrelatedSketch),
//! [`CorrelatedF0`](crate::f0::CorrelatedF0),
//! [`CorrelatedRarity`](crate::rarity::CorrelatedRarity) and
//! [`CorrelatedHeavyHitters`](crate::heavy_hitters::CorrelatedHeavyHitters)
//! run one code path instead of four re-implementations:
//!
//! * `min_watermark` / `watermark_answers` / `first_answering` — the
//!   watermark algebra (`None` = `+∞`, merges take the minimum, a level
//!   answers `c` iff its watermark exceeds it);
//! * [`GenCache`] — a small memo cache validated by an update *generation*:
//!   one instance backs the framework's per-threshold compositions, the
//!   heavy-hitters candidate lists, and `cora_stream::sharded`'s merged
//!   composite (where the generation is the vector of per-shard batch
//!   counters and staleness up to `merge_every_k` batches is admissible);
//! * `compose_for_threshold` / `query_level` — Algorithm 3 against the level
//!   engine (`crate::levels`): compose every bucket of the selected level
//!   whose dyadic span lies entirely inside `[0, c]`.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::error::{CoreError, Result};
use crate::levels::LevelEngine;
use crate::singleton::SingletonLevel;
use std::sync::Mutex;

/// Number of `(threshold, composed value)` pairs kept by the query caches.
pub(crate) const COMPOSE_CACHE_CAPACITY: usize = 16;

/// Combine two eviction watermarks, where `None` means "nothing evicted yet"
/// (an unbounded watermark, i.e. `+∞`): the merged structure can only answer
/// what *both* inputs can, so the result is the smaller bound.
///
/// Note `Option::min` would be wrong here — `None < Some(_)` in the derived
/// order, collapsing "unbounded" to "most restricted".
pub(crate) fn min_watermark(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (None, None) => None,
        (Some(w), None) | (None, Some(w)) => Some(w),
        (Some(x), Some(y)) => Some(x.min(y)),
    }
}

/// True iff a level with eviction watermark `w` can still answer queries with
/// threshold `c` (nothing relevant to `[0, c]` was ever evicted).
#[inline]
pub(crate) fn watermark_answers(w: Option<u64>, c: u64) -> bool {
    match w {
        None => true,
        Some(bound) => bound > c,
    }
}

/// The first level (smallest index) whose eviction watermark still answers
/// `c` — the level-selection rule shared by Algorithm 3 and the
/// distinct-sampling structures (`F_0`, rarity).
#[inline]
pub(crate) fn first_answering<T>(
    levels: &[T],
    c: u64,
    watermark: impl Fn(&T) -> Option<u64>,
) -> Option<(usize, &T)> {
    levels
        .iter()
        .enumerate()
        .find(|(_, level)| watermark_answers(watermark(level), c))
}

/// A small keyed memo cache validated by an update **generation**: entries
/// are only served while the cached generation is admissible for the
/// caller's, and inserting under a new generation drops every stale entry.
///
/// The generation type is caller-defined: the framework uses its
/// `items_processed` counter, the sharded front-end the vector of per-shard
/// batch counters. Capacity eviction is FIFO.
#[derive(Debug)]
pub struct GenCache<G, K, V> {
    generation: Option<G>,
    entries: Vec<(K, V)>,
    capacity: usize,
}

impl<G: PartialEq, K: PartialEq, V> GenCache<G, K, V> {
    /// An empty cache holding at most `capacity` entries per generation.
    pub fn new(capacity: usize) -> Self {
        Self {
            generation: None,
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// The entry under `key`, provided the cached generation equals
    /// `generation`.
    pub fn get(&self, generation: &G, key: &K) -> Option<&V> {
        self.get_if(|cached| cached == generation, key)
    }

    /// The entry under `key`, provided `admit` accepts the cached generation
    /// — the hook behind stale-tolerant reads such as `merge_every_k` in
    /// `cora_stream::sharded`.
    pub fn get_if(&self, admit: impl FnOnce(&G) -> bool, key: &K) -> Option<&V> {
        match &self.generation {
            Some(cached) if admit(cached) => {
                self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Store `value` under `(generation, key)` and return a reference to it.
    /// A generation change clears every existing entry first.
    pub fn insert(&mut self, generation: G, key: K, value: V) -> &V {
        if self.generation.as_ref() != Some(&generation) {
            self.generation = Some(generation);
            self.entries.clear();
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
        let (_, stored) = self.entries.last().expect("just pushed");
        stored
    }

    /// Drop every entry (used after merges, which invalidate any memo).
    pub fn clear(&mut self) {
        self.generation = None;
        self.entries.clear();
    }
}

/// Lock a [`GenCache`] mutex, ignoring poisoning (the caches hold pure memo
/// state, always valid to read).
fn lock<G, K, V>(cache: &Mutex<GenCache<G, K, V>>) -> std::sync::MutexGuard<'_, GenCache<G, K, V>> {
    cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serve `read(&value)` for `key` out of a generation-validated cache,
/// building (and memoizing) the value with `build` on a miss. `read` runs
/// while the cache lock is held, so it must not call back into the same
/// cache.
pub(crate) fn cached_query<G, K, V, R>(
    cache: &Mutex<GenCache<G, K, V>>,
    generation: G,
    key: K,
    build: impl FnOnce() -> Result<V>,
    read: impl FnOnce(&V) -> R,
) -> Result<R>
where
    G: PartialEq + Clone,
    K: PartialEq,
{
    let stored = generation.clone();
    cached_query_if(cache, move |cached| *cached == generation, stored, key, build, read)
}

/// [`cached_query`] with a caller-supplied admission predicate on the cached
/// generation: `admit` decides whether a cached value is still fresh enough
/// to serve, and `generation` is what a rebuilt value is stored under.
pub(crate) fn cached_query_if<G, K, V, R>(
    cache: &Mutex<GenCache<G, K, V>>,
    admit: impl Fn(&G) -> bool,
    generation: G,
    key: K,
    build: impl FnOnce() -> Result<V>,
    read: impl FnOnce(&V) -> R,
) -> Result<R>
where
    G: PartialEq,
    K: PartialEq,
{
    {
        let cache = lock(cache);
        if let Some(value) = cache.get_if(&admit, &key) {
            return Ok(read(value));
        }
    }
    let value = build()?;
    let mut cache = lock(cache);
    Ok(read(cache.insert(generation, key, value)))
}

/// Compose the summaries Algorithm 3 uses for threshold `c` into one store:
/// level 0 (exact singletons) if its watermark allows, otherwise the
/// smallest answering dyadic level with every bucket whose span lies inside
/// `[0, c]` merged, otherwise the shared tail standing in for the dormant
/// levels. `c` must already be clamped to the padded y domain.
pub(crate) fn compose_for_threshold<A: CorrelatedAggregate>(
    agg: &A,
    singletons: &SingletonLevel<A>,
    engine: &LevelEngine<A>,
    c: u64,
) -> Result<BucketStore<A>> {
    if watermark_answers(singletons.y_bound(), c) {
        let mut acc: BucketStore<A> = BucketStore::new();
        for (_, store) in singletons.sorted_upto(c) {
            acc.merge_from(agg, store)?;
        }
        return Ok(acc);
    }
    if let Some((_, level)) = first_answering(engine.levels(), c, |l| l.y_bound()) {
        let mut acc: BucketStore<A> = BucketStore::new();
        for (interval, store) in level.live_buckets() {
            if interval.within_threshold(c) {
                acc.merge_from(agg, store)?;
            }
        }
        return Ok(acc);
    }
    // Dormant levels never evict, so the smallest of them answers any c.
    // Their only bucket is the open root, which Algorithm 3 includes exactly
    // when its whole span lies inside [0, c].
    if engine.has_dormant() {
        let mut acc: BucketStore<A> = BucketStore::new();
        if engine.root().within_threshold(c) {
            acc.merge_from(agg, engine.tail_store())?;
        }
        return Ok(acc);
    }
    Err(CoreError::QueryFailed { threshold: c })
}

/// The level Algorithm 3 would use for threshold `c` (0 = singleton level);
/// `None` if the query would fail. `c` must already be clamped.
pub(crate) fn query_level<A: CorrelatedAggregate>(
    singleton_y_bound: Option<u64>,
    engine: &LevelEngine<A>,
    c: u64,
) -> Option<u32> {
    if watermark_answers(singleton_y_bound, c) {
        return Some(0);
    }
    if let Some((_, level)) = first_answering(engine.levels(), c, |l| l.y_bound()) {
        return Some(level.index());
    }
    // The smallest dormant level (never evicted) answers everything.
    if engine.has_dormant() {
        return Some(engine.levels().len() as u32 + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_watermark_treats_none_as_unbounded() {
        assert_eq!(min_watermark(None, None), None);
        assert_eq!(min_watermark(Some(5), None), Some(5));
        assert_eq!(min_watermark(None, Some(7)), Some(7));
        assert_eq!(min_watermark(Some(5), Some(7)), Some(5));
    }

    #[test]
    fn watermark_answers_is_strict() {
        assert!(watermark_answers(None, u64::MAX));
        assert!(watermark_answers(Some(10), 9));
        assert!(!watermark_answers(Some(10), 10));
        assert!(!watermark_answers(Some(0), 0));
    }

    #[test]
    fn first_answering_picks_smallest_level() {
        let levels = [Some(5u64), Some(100), None];
        assert_eq!(first_answering(&levels, 3, |&w| w).unwrap().0, 0);
        assert_eq!(first_answering(&levels, 50, |&w| w).unwrap().0, 1);
        assert_eq!(first_answering(&levels, 10_000, |&w| w).unwrap().0, 2);
        let all_evicted = [Some(0u64), Some(1)];
        assert!(first_answering(&all_evicted, 5, |&w| w).is_none());
    }

    #[test]
    fn gen_cache_serves_and_invalidates_by_generation() {
        let mut cache: GenCache<u64, u64, &'static str> = GenCache::new(2);
        assert!(cache.get(&1, &10).is_none());
        cache.insert(1, 10, "a");
        assert_eq!(cache.get(&1, &10), Some(&"a"));
        assert!(cache.get(&2, &10).is_none(), "new generation must miss");
        // Capacity eviction is FIFO within a generation.
        cache.insert(1, 11, "b");
        cache.insert(1, 12, "c");
        assert!(cache.get(&1, &10).is_none());
        assert_eq!(cache.get(&1, &12), Some(&"c"));
        // Inserting under a new generation drops the old entries.
        cache.insert(2, 10, "d");
        assert!(cache.get(&1, &11).is_none());
        assert_eq!(cache.get(&2, &10), Some(&"d"));
        cache.clear();
        assert!(cache.get(&2, &10).is_none());
    }

    #[test]
    fn gen_cache_admission_predicate_allows_stale_reads() {
        let mut cache: GenCache<u64, (), u64> = GenCache::new(1);
        cache.insert(10, (), 42);
        // Strict freshness misses...
        assert!(cache.get(&13, &()).is_none());
        // ...but a lag-tolerant admission can still serve the stale value.
        assert_eq!(cache.get_if(|&g| 13 - g < 5, &()), Some(&42));
        assert!(cache.get_if(|&g| 13 - g < 2, &()).is_none());
    }

    #[test]
    fn cached_query_builds_once_per_generation() {
        let cache: Mutex<GenCache<u64, u64, u64>> = Mutex::new(GenCache::new(4));
        let mut builds = 0u32;
        for _ in 0..3 {
            let v = cached_query(&cache, 7, 100, || {
                builds += 1;
                Ok(55)
            }, |&v| v)
            .unwrap();
            assert_eq!(v, 55);
        }
        assert_eq!(builds, 1);
        // A new generation rebuilds.
        cached_query(&cache, 8, 100, || {
            builds += 1;
            Ok(56)
        }, |&v| v)
        .unwrap();
        assert_eq!(builds, 2);
    }
}
