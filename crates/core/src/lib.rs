//! # cora-core
//!
//! A general method for estimating **correlated aggregates** over a data
//! stream — a Rust implementation of Tirthapura & Woodruff (ICDE 2012 /
//! Algorithmica 2015).
//!
//! A correlated aggregate query `C(σ, AGG, S)` over a stream of `(x, y)`
//! tuples first applies a selection `σ = (y ≤ c)` — with `c` supplied only at
//! **query time** — and then aggregates the surviving item identifiers `x`.
//! This crate provides:
//!
//! * the **generic reduction** from correlated aggregation to whole-stream
//!   sketching ([`framework::CorrelatedSketch`], Algorithms 1–3 of the paper),
//!   parameterised by the paper's Conditions I–V ([`aggregate::CorrelatedAggregate`]);
//! * instantiations for the frequency moments: [`f2::CorrelatedF2`],
//!   [`fk::CorrelatedFk`], and the trivially-smooth [`sum::CorrelatedSum`] /
//!   [`sum::CorrelatedCount`];
//! * the distinct-sampling based [`f0::CorrelatedF0`] (Section 3.2);
//! * the Section 3.3 extensions: [`heavy_hitters::CorrelatedHeavyHitters`] and
//!   [`rarity::CorrelatedRarity`];
//! * the exact linear-storage baseline [`exact::ExactCorrelated`] used by the
//!   paper's experiments as the comparison point.
//!
//! ## Quick example
//!
//! ```
//! use cora_core::f2::correlated_f2;
//!
//! let mut sketch = correlated_f2(0.2, 0.1, 1023, 10_000).unwrap();
//! // Stream of (item, y) tuples.
//! for i in 0..1000u64 {
//!     sketch.insert(i % 50, i % 1024).unwrap();
//! }
//! // Threshold chosen only now, at query time.
//! let f2_below_200 = sketch.query(200).unwrap();
//! assert!(f2_below_200 > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod compose;
pub mod config;
pub mod dyadic;
pub mod error;
pub mod exact;
pub mod f0;
pub mod f2;
pub mod fk;
pub mod framework;
pub mod heavy_hitters;
mod levels;
pub mod rarity;
mod singleton;
pub mod snapshot;
pub mod sum;

pub use aggregate::{BucketStore, CorrelatedAggregate};
pub use compose::GenCache;
pub use config::{AlphaPolicy, CorrelatedConfig, DEFAULT_SEED};
pub use dyadic::DyadicInterval;
pub use error::{CoreError, Result};
pub use exact::ExactCorrelated;
pub use f0::CorrelatedF0;
pub use f2::{correlated_f2, correlated_f2_seeded, CorrelatedF2, F2Aggregate};
pub use fk::{correlated_fk, correlated_fk_seeded, CorrelatedFk, FkAggregate};
pub use framework::{CorrelatedSketch, SketchStats};
pub use heavy_hitters::{CorrelatedHeavyHitters, HeavyHitter};
pub use rarity::CorrelatedRarity;
pub use snapshot::{DeltaHeader, SnapshotKind, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use sum::{correlated_count, correlated_sum, CorrelatedCount, CorrelatedSum};

#[cfg(test)]
mod lib_tests {
    #[test]
    fn public_api_round_trip() {
        let mut f2 = crate::correlated_f2(0.3, 0.2, 255, 1000).unwrap();
        let mut f0 = crate::CorrelatedF0::new(0.3, 0.2, 10, 255).unwrap();
        let mut exact = crate::ExactCorrelated::new();
        for i in 0..200u64 {
            f2.insert(i % 20, i % 256).unwrap();
            f0.insert(i % 20, i % 256).unwrap();
            exact.insert(i % 20, i % 256);
        }
        assert!(f2.query(128).unwrap() > 0.0);
        assert!(f0.query(128).unwrap() > 0.0);
        assert!(exact.frequency_moment(2, 128) > 0.0);
    }
}
