//! The aggregate abstraction: the paper's Conditions I–V as a trait.
//!
//! Section 2 of the paper states five conditions an aggregation function `f`
//! must satisfy for the reduction to whole-stream sketching to apply:
//!
//! * **I** — `f(R)` is bounded by a polynomial in `|R|` (captured here by
//!   [`CorrelatedAggregate::f_max_log2`], a bound on `log2 f` used to size the
//!   number of levels);
//! * **II** — superadditivity: `f(R1 ∪ R2) ≥ f(R1) + f(R2)`;
//! * **III** — there is `c1(·)` with `f(∪ R_i) ≤ c1(j) · max_i f(R_i)` for `j`
//!   sets ([`CorrelatedAggregate::c1`]);
//! * **IV** — there is `c2(ε)` such that removing a subset with
//!   `f(B) ≤ c2(ε) f(A)` changes `f` by at most a `(1−ε)` factor
//!   ([`CorrelatedAggregate::c2`]);
//! * **V** — `f` has a composable sketching function
//!   ([`CorrelatedAggregate::new_sketch`] + the sketch's
//!   [`cora_sketch::MergeableSketch`] impl).
//!
//! Conditions II–IV are mathematical facts about `f` established once per
//! aggregate (see the instantiations in [`crate::f2`], [`crate::fk`],
//! [`crate::sum`]); the trait records the resulting constants so the generic
//! framework ([`crate::framework::CorrelatedSketch`]) can derive its bucket
//! budget and thresholds from them.

use cora_sketch::{
    Estimate, ExactFrequencies, MergeableSketch, SharedUpdate, SpaceUsage, StreamSketch,
};

/// An aggregation function usable with the correlated-aggregation framework.
///
/// Implementations are small, cloneable descriptor objects (they carry the
/// accuracy parameters and seed needed to build per-bucket sketches); the
/// actual stream state lives in the sketches they create.
pub trait CorrelatedAggregate: Clone {
    /// The whole-stream sketch type used inside each bucket (Property V).
    ///
    /// The [`SharedUpdate`] bound is what lets the framework hash each stream
    /// element once and reuse the coordinates across every bucket the element
    /// touches — sound because Property V already forces all buckets of one
    /// structure to share hash seeds.
    type Sketch: StreamSketch
        + Estimate
        + MergeableSketch
        + SharedUpdate
        + SpaceUsage
        + Clone
        + std::fmt::Debug;

    /// Human-readable name ("F2", "F_k(3)", "sum", ...) used in reports.
    fn name(&self) -> String;

    /// Condition III: `f(∪_{i=1..j} R_i) ≤ c1(j) · max_i f(R_i)`.
    fn c1(&self, j: f64) -> f64;

    /// Condition IV: if `f(B) ≤ c2(ε) · f(A)` for `B ⊆ A` then
    /// `f(A − B) ≥ (1 − ε) f(A)`.
    fn c2(&self, eps: f64) -> f64;

    /// Condition I: an upper bound on `log2 f(S)` for any stream `S` this
    /// aggregate will be asked to process, given a bound on the number of
    /// stream elements. Used to size the number of levels.
    fn f_max_log2(&self, max_stream_len: u64) -> u32;

    /// Property V: create a fresh, empty whole-stream sketch. Every sketch
    /// created by the same aggregate instance must be mergeable with every
    /// other (they share hash seeds).
    fn new_sketch(&self) -> Self::Sketch;

    /// The (approximate) number of stored tuples a fully-populated sketch from
    /// [`Self::new_sketch`] occupies. Used by the hybrid bucket store to decide
    /// when an exact frequency vector stops being the cheaper representation;
    /// it must be cheap to compute (no sketch construction).
    fn sketch_size_hint(&self) -> usize;

    /// Evaluate the aggregate exactly from a frequency vector. Used by the
    /// hybrid bucket store (exact small buckets), by the exact baseline and by
    /// the accuracy harness.
    fn exact_value(&self, freqs: &ExactFrequencies) -> f64;

    /// The *weight headroom* of a bucket: the largest total (absolute) weight
    /// that can be appended to a multiset `R` with current estimate `value`
    /// while guaranteeing the estimate stays **below** `threshold`.
    ///
    /// The framework uses this to amortize the bucket-closing threshold check
    /// of Algorithm 2: after each real estimate it stores the headroom, and
    /// subsequent inserts skip the (possibly expensive) estimate entirely
    /// until the weight added since then reaches it — one `f64` comparison on
    /// the hot path. Returning `0.0` (the default) means "no usable bound,
    /// check on every update", which preserves eager checking for aggregates
    /// that do not override this.
    ///
    /// For the frequency moments the bound follows from the triangle
    /// inequality on the ℓ_k norm: `F_k = ‖f‖_k^k`, and appending a frequency
    /// vector `g` with `‖g‖_k ≤ ‖g‖_1 = w` gives
    /// `F_k(R') ≤ (F_k(R)^{1/k} + w)^k`, so any `w < threshold^{1/k} −
    /// F_k(R)^{1/k}` cannot cross. For exactly-stored buckets (where the
    /// estimate *is* the true value) this gating is lossless. For `F_2` it is
    /// lossless for the sketched representation as well: the fast-AMS
    /// estimate is a median of per-row squared ℓ₂ norms of signed projections
    /// of the frequency vector, each row's norm grows by at most `w`, and the
    /// median is monotone under pointwise domination — so the same headroom
    /// bounds the estimate's growth. A headroom is only valid for one
    /// *representation*: the framework forces a fresh check whenever a bucket
    /// converts from exact to sketched storage, since the sketch's estimate
    /// need not match the exact value the headroom was derived from.
    fn weight_headroom(&self, value: f64, threshold: f64) -> f64 {
        let _ = (value, threshold);
        0.0
    }
}

/// A bucket's storage: exact while small, sketched once the exact
/// representation would outgrow the sketch.
///
/// The paper's level-0 structure stores singleton buckets exactly; in the same
/// spirit every bucket in this implementation starts as an exact frequency
/// vector and is converted to the aggregate's sketch the first time the exact
/// form would use more space than the sketch would. This never increases
/// space relative to the pure-sketch design, removes all estimation error from
/// small buckets (the common case at low levels, where the closing threshold
/// `2^{ℓ+1}` is tiny), and is transparent to the framework.
#[derive(Debug, Clone)]
pub enum BucketStore<A: CorrelatedAggregate> {
    /// Exact frequency vector (small buckets).
    Exact(ExactFrequencies),
    /// The aggregate's whole-stream sketch (large buckets).
    Sketched(A::Sketch),
}

impl<A: CorrelatedAggregate> BucketStore<A> {
    /// A new, empty store (starts exact).
    pub fn new() -> Self {
        BucketStore::Exact(ExactFrequencies::new())
    }

    /// Insert an item with a weight.
    pub fn update(&mut self, agg: &A, item: u64, weight: i64) {
        match self {
            BucketStore::Exact(freqs) => {
                freqs.update(item, weight);
                // Convert when the exact representation is no longer the
                // cheaper one.
                if freqs.stored_tuples() > 16
                    && freqs.stored_tuples() >= agg.sketch_size_hint().max(1)
                {
                    self.convert(agg);
                }
            }
            BucketStore::Sketched(sketch) => sketch.update(item, weight),
        }
    }

    /// Insert an item whose sketch coordinates were precomputed with
    /// [`SharedUpdate::prepare_into`] on a same-seeded sketch. Exact stores
    /// ignore the prepared coordinates (they key on the raw item); sketched
    /// stores apply them without re-hashing.
    pub fn update_prepared(
        &mut self,
        agg: &A,
        item: u64,
        weight: i64,
        prepared: &<A::Sketch as SharedUpdate>::Prepared,
    ) {
        match self {
            BucketStore::Sketched(sketch) => sketch.apply_prepared(prepared),
            BucketStore::Exact(_) => self.update(agg, item, weight),
        }
    }

    /// Apply tuples `range` of a **unit-weight** prepared batch (see
    /// [`SharedUpdate::prepare_batch_into`]; `tuples` is the `(x, y)` slice
    /// the batch was prepared from). Equivalent to calling
    /// [`Self::update_prepared`] for each tuple of the range in order.
    ///
    /// Sketched stores apply the whole range through the sketch's flat batch
    /// layout; exact stores go tuple-at-a-time (they key on the raw item),
    /// switching the remainder of the range to the batched path if the store
    /// converts to its sketched representation mid-range. Crate-private
    /// because the exact path re-derives each update as `(x, weight 1)` —
    /// the batch-ingest contract of `CorrelatedSketch::update_batch` — and a
    /// batch prepared with other weights would apply them only to sketched
    /// stores.
    pub(crate) fn update_batch_range(
        &mut self,
        agg: &A,
        tuples: &[(u64, u64)],
        batch: &<A::Sketch as SharedUpdate>::PreparedBatch,
        mut range: std::ops::Range<usize>,
    ) {
        if let BucketStore::Sketched(sketch) = self {
            sketch.apply_prepared_range(batch, range);
            return;
        }
        while let Some(i) = range.next() {
            self.update(agg, tuples[i].0, 1);
            if let BucketStore::Sketched(sketch) = self {
                if !range.is_empty() {
                    sketch.apply_prepared_range(batch, range);
                }
                return;
            }
        }
    }

    /// Force conversion to the sketched representation.
    pub fn convert(&mut self, agg: &A) {
        if let BucketStore::Exact(freqs) = self {
            let mut sketch = agg.new_sketch();
            for (item, f) in freqs.iter() {
                sketch.update(item, f);
            }
            *self = BucketStore::Sketched(sketch);
        }
    }

    /// Estimate the aggregate of the items in this store.
    pub fn estimate(&self, agg: &A) -> f64 {
        match self {
            BucketStore::Exact(freqs) => agg.exact_value(freqs),
            BucketStore::Sketched(sketch) => sketch.estimate(),
        }
    }

    /// True if this store holds an exact frequency vector.
    pub fn is_exact(&self) -> bool {
        matches!(self, BucketStore::Exact(_))
    }

    /// Merge `other` into `self` (used at query time to compose buckets).
    pub fn merge_from(&mut self, agg: &A, other: &Self) -> crate::error::Result<()> {
        match (&mut *self, other) {
            (BucketStore::Exact(a), BucketStore::Exact(b)) => {
                a.merge_from(b)?;
                Ok(())
            }
            (BucketStore::Sketched(a), BucketStore::Sketched(b)) => {
                a.merge_from(b)?;
                Ok(())
            }
            (BucketStore::Sketched(a), BucketStore::Exact(b)) => {
                for (item, f) in b.iter() {
                    a.update(item, f);
                }
                Ok(())
            }
            (BucketStore::Exact(_), BucketStore::Sketched(_)) => {
                // Promote self to a sketch, then merge sketch-to-sketch.
                self.convert(agg);
                self.merge_from(agg, other)
            }
        }
    }

    /// Number of stored tuples (counters or exact entries).
    pub fn stored_tuples(&self) -> usize {
        match self {
            BucketStore::Exact(freqs) => freqs.stored_tuples(),
            BucketStore::Sketched(sketch) => sketch.stored_tuples(),
        }
    }

    /// Approximate heap bytes.
    pub fn space_bytes(&self) -> usize {
        match self {
            BucketStore::Exact(freqs) => freqs.space_bytes(),
            BucketStore::Sketched(sketch) => sketch.space_bytes(),
        }
    }
}

impl<A: CorrelatedAggregate> Default for BucketStore<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// Thread-safety audit for the sharded ingest front-end
/// (`cora_stream::sharded`): every aggregate store shipped with this crate is
/// plain data (hash coefficients + counters), so the whole sketch stack is
/// `Send + Sync` by auto-derivation. These assertions fail to *compile* if a
/// future store picks up a non-thread-safe member (`Rc`, raw pointers,
/// un-`Sync` interior mutability), rather than failing at some distant
/// `thread::spawn`.
#[allow(dead_code)]
mod thread_safety_audit {
    fn assert_send_sync<T: Send + Sync>() {}

    fn audit() {
        assert_send_sync::<crate::framework::CorrelatedSketch<crate::f2::F2Aggregate>>();
        assert_send_sync::<crate::framework::CorrelatedSketch<crate::fk::FkAggregate>>();
        assert_send_sync::<crate::framework::CorrelatedSketch<crate::sum::SumAggregate>>();
        assert_send_sync::<crate::framework::CorrelatedSketch<crate::sum::CountAggregate>>();
        assert_send_sync::<
            crate::framework::CorrelatedSketch<crate::heavy_hitters::F2HeavyAggregate>,
        >();
        assert_send_sync::<super::BucketStore<crate::f2::F2Aggregate>>();
        assert_send_sync::<crate::f0::CorrelatedF0>();
        assert_send_sync::<crate::rarity::CorrelatedRarity>();
        assert_send_sync::<crate::heavy_hitters::CorrelatedHeavyHitters>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f2::F2Aggregate;

    fn agg() -> F2Aggregate {
        F2Aggregate::new(0.3, 0.1, 7)
    }

    #[test]
    fn store_starts_exact_and_is_accurate() {
        let agg = agg();
        let mut store: BucketStore<F2Aggregate> = BucketStore::new();
        store.update(&agg, 1, 3);
        store.update(&agg, 2, 4);
        assert!(store.is_exact());
        assert_eq!(store.estimate(&agg), 25.0);
        assert_eq!(store.stored_tuples(), 2);
    }

    #[test]
    fn store_converts_when_large() {
        let agg = agg();
        let sketch_size = agg.new_sketch().stored_tuples();
        let mut store: BucketStore<F2Aggregate> = BucketStore::new();
        for x in 0..(sketch_size as u64 + 20) {
            store.update(&agg, x, 1);
        }
        assert!(!store.is_exact(), "store should have converted to a sketch");
        assert!(store.stored_tuples() <= sketch_size);
    }

    #[test]
    fn conversion_preserves_estimate_accuracy() {
        let agg = agg();
        let mut store: BucketStore<F2Aggregate> = BucketStore::new();
        for x in 0..10u64 {
            store.update(&agg, x, 5);
        }
        let exact = store.estimate(&agg);
        store.convert(&agg);
        let sketched = store.estimate(&agg);
        let rel = (sketched - exact).abs() / exact;
        assert!(rel < 0.3, "conversion changed estimate too much: {exact} -> {sketched}");
    }

    #[test]
    fn merge_all_combinations() {
        let agg = agg();
        // exact + exact
        let mut a: BucketStore<F2Aggregate> = BucketStore::new();
        let mut b: BucketStore<F2Aggregate> = BucketStore::new();
        a.update(&agg, 1, 2);
        b.update(&agg, 1, 3);
        a.merge_from(&agg, &b).unwrap();
        assert_eq!(a.estimate(&agg), 25.0);

        // sketched + exact
        let mut s: BucketStore<F2Aggregate> = BucketStore::new();
        s.update(&agg, 7, 4);
        s.convert(&agg);
        s.merge_from(&agg, &b).unwrap();
        assert!(s.estimate(&agg) > 0.0);

        // exact + sketched (self promotes)
        let mut e: BucketStore<F2Aggregate> = BucketStore::new();
        e.update(&agg, 9, 1);
        let mut sk: BucketStore<F2Aggregate> = BucketStore::new();
        sk.update(&agg, 9, 1);
        sk.convert(&agg);
        e.merge_from(&agg, &sk).unwrap();
        assert!(!e.is_exact());
        assert!((e.estimate(&agg) - 4.0).abs() < 1.0);
    }

    #[test]
    fn default_is_empty_exact() {
        let store: BucketStore<F2Aggregate> = BucketStore::default();
        assert!(store.is_exact());
        assert_eq!(store.stored_tuples(), 0);
        assert_eq!(store.estimate(&agg()), 0.0);
    }
}
