//! Versioned, checksummed snapshot framing for the correlated structures.
//!
//! A snapshot is one self-describing binary **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"CORA"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       1     kind tag (which structure the payload describes)
//! 7       8     payload length (little-endian u64)
//! 15      n     payload (structure-specific, see the snapshot methods)
//! 15+n    8     FNV-1a 64 checksum of the payload
//! ```
//!
//! The payload carries the full construction configuration (accuracy
//! parameters, domains, **seed**) ahead of the state, so a restored structure
//! is built with exactly the hash functions the snapshot was, answers every
//! query bit-identically to the encoded one, and remains merge-compatible
//! with sketches still running in other processes (Property V needs only the
//! shared configuration, which the header preserves). Decoding validates the
//! magic, version, kind, length, and checksum **before** interpreting a
//! single payload byte, so truncated, corrupted, or foreign files are
//! rejected with [`CoreError::Snapshot`] instead of deserialising garbage.
//!
//! Sketch counter state is serialised through
//! [`cora_sketch::codec::StateCodec`]; hash coefficient tables are never
//! written — they are re-derived from the seed on restore.
//!
//! Entry points:
//!
//! * [`CorrelatedSketch::snapshot`](crate::CorrelatedSketch::snapshot) /
//!   [`restore_from`](crate::CorrelatedSketch::restore_from) — the generic
//!   framework sketch (any aggregate whose bucket sketch implements
//!   `StateCodec`, e.g. correlated `F_2`);
//! * [`CorrelatedF0`](crate::CorrelatedF0),
//!   [`CorrelatedRarity`](crate::CorrelatedRarity), and
//!   [`CorrelatedHeavyHitters`](crate::CorrelatedHeavyHitters) expose the
//!   same pair with their parameters embedded (restore takes only bytes);
//! * `cora_stream::sharded::ShardedIngest` snapshots its merged composite
//!   through the framework frame, so a restored front-end serves identical
//!   answers.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::config::{AlphaPolicy, CorrelatedConfig};
use crate::error::{CoreError, Result};
use cora_sketch::codec::{fnv1a64, ByteReader, ByteWriter, CodecError, CodecResult, StateCodec};
use cora_sketch::ExactFrequencies;

/// The four magic bytes opening every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CORA";

/// The current snapshot format version. Bumped on any incompatible payload
/// change; decoders reject snapshots from other versions.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Which structure a snapshot frame describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SnapshotKind {
    /// A generic [`CorrelatedSketch`](crate::CorrelatedSketch) (framework
    /// levels + singleton level + shared tail).
    Framework = 1,
    /// A [`CorrelatedF0`](crate::CorrelatedF0) distinct-count sketch.
    F0 = 2,
    /// A [`CorrelatedRarity`](crate::CorrelatedRarity) sketch.
    Rarity = 3,
    /// A [`CorrelatedHeavyHitters`](crate::CorrelatedHeavyHitters) sketch.
    HeavyHitters = 4,
    /// A windowed pane ring over framework sketches
    /// (`cora_stream::windowed::WindowedSketch`).
    WindowedFramework = 5,
    /// A windowed pane ring over [`CorrelatedF0`](crate::CorrelatedF0) panes
    /// (`cora_stream::windowed::WindowedF0`).
    WindowedF0 = 6,
    /// Serving-layer metadata that must travel with the sketches to keep a
    /// restored server semantically identical: the per-writer ingest
    /// sequence high-water marks that make batch replay idempotent
    /// (`cora_serve`'s snapshot bundle and write-ahead journal).
    ServeMeta = 7,
    /// An incremental **delta** container covering the tuples ingested in a
    /// generation span `(g_from, g_to]`: a replication header plus tagged
    /// inner frames, each itself a sealed snapshot of a same-seeded
    /// structure fed only that span (see [`seal_delta_into`] /
    /// [`open_delta`]). Because the sketches are mergeable (Property V),
    /// merging the delta into a base holding everything up to `g_from`
    /// yields exactly the structure for everything up to `g_to`.
    Delta = 8,
}

impl SnapshotKind {
    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SnapshotKind::Framework),
            2 => Some(SnapshotKind::F0),
            3 => Some(SnapshotKind::Rarity),
            4 => Some(SnapshotKind::HeavyHitters),
            5 => Some(SnapshotKind::WindowedFramework),
            6 => Some(SnapshotKind::WindowedF0),
            7 => Some(SnapshotKind::ServeMeta),
            8 => Some(SnapshotKind::Delta),
            _ => None,
        }
    }
}

/// Append a sealed frame (magic, version, kind, length, checksum) around
/// `payload` to a caller-provided buffer — the zero-extra-copy primitive
/// behind every `snapshot_to`. Public so out-of-crate structures (the
/// windowed pane rings in `cora-stream`) can frame their own state in the
/// same validated format.
pub fn seal_frame_into(kind: SnapshotKind, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(payload.len() + 23);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Wrap a payload in a sealed frame, as a fresh buffer.
#[cfg(test)]
pub(crate) fn seal_frame(kind: SnapshotKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    seal_frame_into(kind, payload, &mut out);
    out
}

/// Validate a frame end to end (magic, version, expected kind, exact length,
/// checksum) and return its payload. Corrupted, truncated, or foreign bytes
/// are rejected **before** any payload byte is interpreted.
pub fn open_frame(bytes: &[u8], expected: SnapshotKind) -> Result<&[u8]> {
    let err = |detail: String| CoreError::Snapshot { detail };
    if bytes.len() < 23 {
        return Err(err(format!(
            "snapshot too short to hold a frame header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(err("not a cora snapshot (bad magic)".into()));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(err(format!(
            "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
        )));
    }
    let kind = SnapshotKind::from_tag(bytes[6])
        .ok_or_else(|| err(format!("unknown snapshot kind tag {}", bytes[6])))?;
    if kind != expected {
        return Err(err(format!(
            "snapshot holds a {kind:?} structure, expected {expected:?}"
        )));
    }
    let len = u64::from_le_bytes(bytes[7..15].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 15 + len + 8 {
        return Err(err(format!(
            "snapshot length mismatch: header says {len}-byte payload, file holds {}",
            bytes.len().saturating_sub(23)
        )));
    }
    let payload = &bytes[15..15 + len];
    let stored = u64::from_le_bytes(bytes[15 + len..].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(err(format!(
            "payload checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(payload)
}

/// Serialise a bucket store (exact or sketched representation).
pub(crate) fn encode_store<A>(store: &BucketStore<A>, w: &mut ByteWriter)
where
    A: CorrelatedAggregate,
    A::Sketch: StateCodec,
{
    match store {
        BucketStore::Exact(freqs) => {
            w.put_u8(0);
            freqs.encode_state(w);
        }
        BucketStore::Sketched(sketch) => {
            w.put_u8(1);
            sketch.encode_state(w);
        }
    }
}

/// Decode a bucket store; sketched representations are decoded into a fresh
/// sketch from `agg` (same seed and dimensions by construction).
pub(crate) fn decode_store<A>(agg: &A, r: &mut ByteReader<'_>) -> CodecResult<BucketStore<A>>
where
    A: CorrelatedAggregate,
    A::Sketch: StateCodec,
{
    match r.get_u8()? {
        0 => {
            let mut freqs = ExactFrequencies::new();
            freqs.decode_state(r)?;
            Ok(BucketStore::Exact(freqs))
        }
        1 => {
            let mut sketch = agg.new_sketch();
            sketch.decode_state(r)?;
            Ok(BucketStore::Sketched(sketch))
        }
        tag => Err(CodecError::Corrupt(format!("unknown bucket-store tag {tag}"))),
    }
}

/// Serialise a [`CorrelatedConfig`] (every field, seed included). Public for
/// wrapper structures whose frames must carry a framework configuration of
/// their own (the windowed pane rings in `cora-stream`).
pub fn encode_config(config: &CorrelatedConfig, w: &mut ByteWriter) {
    w.put_f64(config.epsilon);
    w.put_f64(config.delta);
    w.put_u64(config.y_max);
    w.put_u32(config.f_max_log2);
    match config.alpha_policy {
        AlphaPolicy::Theoretical => w.put_u8(0),
        AlphaPolicy::Practical { scale } => {
            w.put_u8(1);
            w.put_f64(scale);
        }
        AlphaPolicy::Fixed(a) => {
            w.put_u8(2);
            w.put_u64(a as u64);
        }
    }
    w.put_u64(config.seed);
}

/// Decode a [`CorrelatedConfig`] written by [`encode_config`]; the decoded
/// configuration is re-validated before it is returned.
pub fn decode_config(r: &mut ByteReader<'_>) -> CodecResult<CorrelatedConfig> {
    let epsilon = r.get_f64()?;
    let delta = r.get_f64()?;
    let y_max = r.get_u64()?;
    let f_max_log2 = r.get_u32()?;
    let alpha_policy = match r.get_u8()? {
        0 => AlphaPolicy::Theoretical,
        1 => AlphaPolicy::Practical { scale: r.get_f64()? },
        2 => AlphaPolicy::Fixed(r.get_len()?),
        tag => return Err(CodecError::Corrupt(format!("unknown alpha-policy tag {tag}"))),
    };
    let seed = r.get_u64()?;
    let config = CorrelatedConfig {
        epsilon,
        delta,
        y_max,
        f_max_log2,
        alpha_policy,
        seed,
    };
    config
        .validate()
        .map_err(|e| CodecError::Corrupt(format!("snapshot configuration invalid: {e}")))?;
    Ok(config)
}

/// The replication header of a [`SnapshotKind::Delta`] container: which
/// generation span the inner frames cover and a fingerprint of the
/// producer's construction parameters. A consumer must refuse a delta whose
/// fingerprint differs from its own (different seeds or accuracy parameters
/// make the structures non-mergeable) or whose `g_from` is not its current
/// high-water generation (the delta would double-count or skip tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// The generation the consumer must already hold; `0` means the
    /// container is a **full** replacement snapshot, not an increment.
    pub g_from: u64,
    /// The generation the consumer holds after applying the container.
    pub g_to: u64,
    /// Producer-side fingerprint over every construction parameter that
    /// affects mergeability (accuracy, domains, seed). Opaque to this codec.
    pub fingerprint: u64,
}

/// Seal a delta container: the [`DeltaHeader`] plus `sections`, each a
/// `(tag, bytes)` pair where the tag names the structure (assigned by the
/// producer) and the bytes are normally themselves a sealed frame. The whole
/// container is one checksummed [`SnapshotKind::Delta`] frame, so torn or
/// corrupted deltas are rejected wholesale by [`open_delta`].
pub fn seal_delta_into(header: &DeltaHeader, sections: &[(u8, &[u8])], out: &mut Vec<u8>) {
    let mut w = ByteWriter::new();
    w.put_u64(header.g_from);
    w.put_u64(header.g_to);
    w.put_u64(header.fingerprint);
    w.put_u32(sections.len() as u32);
    for &(tag, bytes) in sections {
        w.put_u8(tag);
        w.put_u64(bytes.len() as u64);
        w.put_bytes(bytes);
    }
    seal_frame_into(SnapshotKind::Delta, w.as_bytes(), out);
}

/// The `(tag, bytes)` sections of an opened delta container, borrowing from
/// the container's bytes.
pub type DeltaSections<'a> = Vec<(u8, &'a [u8])>;

/// Open a delta container sealed by [`seal_delta_into`]: validates the outer
/// frame (magic, version, kind, length, checksum), then returns the header
/// and the `(tag, bytes)` sections. A span with `g_from > g_to` is rejected
/// here; fingerprint and base-generation checks are the consumer's job,
/// because only it knows its own parameters and high-water mark.
pub fn open_delta(bytes: &[u8]) -> Result<(DeltaHeader, DeltaSections<'_>)> {
    let payload = open_frame(bytes, SnapshotKind::Delta)?;
    let mut r = ByteReader::new(payload);
    let take = |r: &mut ByteReader<'_>, field: &str| -> Result<u64> {
        r.get_u64().map_err(|e| CoreError::Snapshot {
            detail: format!("delta header field {field}: {e}"),
        })
    };
    let g_from = take(&mut r, "g_from")?;
    let g_to = take(&mut r, "g_to")?;
    let fingerprint = take(&mut r, "fingerprint")?;
    if g_from > g_to {
        return Err(CoreError::Snapshot {
            detail: format!("delta spans a negative generation range ({g_from}, {g_to}]"),
        });
    }
    let n = r.get_u32().map_err(CoreError::from)? as usize;
    let mut sections = Vec::with_capacity(n);
    for i in 0..n {
        let e = |detail: String| CoreError::Snapshot {
            detail: format!("delta section {i}: {detail}"),
        };
        let tag = r.get_u8().map_err(|err| e(err.to_string()))?;
        let len = r.get_u64().map_err(|err| e(err.to_string()))? as usize;
        if len > r.remaining() {
            return Err(e(format!(
                "declares {len} bytes but only {} remain",
                r.remaining()
            )));
        }
        let bytes = r.take(len).map_err(|err| e(err.to_string()))?;
        sections.push((tag, bytes));
    }
    if r.remaining() != 0 {
        return Err(CoreError::Snapshot {
            detail: format!("delta has {} trailing bytes after its sections", r.remaining()),
        });
    }
    Ok((DeltaHeader { g_from, g_to, fingerprint }, sections))
}

/// Map a low-level codec error into the crate error type.
impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Snapshot {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_rejections() {
        let payload = b"hello snapshot".to_vec();
        let frame = seal_frame(SnapshotKind::F0, &payload);
        assert_eq!(open_frame(&frame, SnapshotKind::F0).unwrap(), &payload[..]);

        // Wrong kind.
        assert!(open_frame(&frame, SnapshotKind::Framework).is_err());
        // Truncated.
        assert!(open_frame(&frame[..frame.len() - 1], SnapshotKind::F0).is_err());
        assert!(open_frame(&frame[..10], SnapshotKind::F0).is_err());
        // Flipped payload byte -> checksum mismatch.
        let mut corrupt = frame.clone();
        corrupt[16] ^= 0x40;
        let e = open_frame(&corrupt, SnapshotKind::F0).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
        // Bad magic.
        let mut foreign = frame.clone();
        foreign[0] = b'X';
        assert!(open_frame(&foreign, SnapshotKind::F0).is_err());
        // Future version.
        let mut future = frame.clone();
        future[4] = 0xFF;
        let e = open_frame(&future, SnapshotKind::F0).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        // Unknown kind tag.
        let mut unknown = frame;
        unknown[6] = 99;
        assert!(open_frame(&unknown, SnapshotKind::F0).is_err());
    }

    #[test]
    fn delta_container_round_trip_and_rejections() {
        let header = DeltaHeader { g_from: 3, g_to: 7, fingerprint: 0xFEED_F00D };
        let inner = seal_frame(SnapshotKind::F0, b"inner state");
        let mut out = Vec::new();
        seal_delta_into(&header, &[(1, b"raw"), (2, &inner)], &mut out);
        let (decoded, sections) = open_delta(&out).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0], (1, &b"raw"[..]));
        assert_eq!(sections[1].0, 2);
        assert_eq!(
            open_frame(sections[1].1, SnapshotKind::F0).unwrap(),
            b"inner state"
        );

        // Empty container is legal (a heartbeat cut with no new tuples).
        let mut empty = Vec::new();
        seal_delta_into(&header, &[], &mut empty);
        assert!(open_delta(&empty).unwrap().1.is_empty());

        // Torn and corrupted containers are rejected wholesale.
        assert!(open_delta(&out[..out.len() - 1]).is_err());
        let mut corrupt = out.clone();
        corrupt[20] ^= 0x01;
        assert!(open_delta(&corrupt).is_err());
        // A non-delta frame is not a delta.
        assert!(open_delta(&inner).is_err());
        // Negative generation spans are rejected in the codec.
        let mut backwards = Vec::new();
        seal_delta_into(
            &DeltaHeader { g_from: 9, g_to: 2, fingerprint: 0 },
            &[],
            &mut backwards,
        );
        assert!(open_delta(&backwards).is_err());
        // A section length pointing past the payload is rejected.
        let mut w = ByteWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u64(0);
        w.put_u32(1);
        w.put_u8(1);
        w.put_u64(1_000_000);
        let mut oversize = Vec::new();
        seal_frame_into(SnapshotKind::Delta, w.as_bytes(), &mut oversize);
        assert!(open_delta(&oversize).is_err());
    }

    #[test]
    fn config_round_trip_all_policies() {
        for policy in [
            AlphaPolicy::Theoretical,
            AlphaPolicy::Practical { scale: 24.0 },
            AlphaPolicy::Fixed(77),
        ] {
            let config = CorrelatedConfig::new(0.23, 0.07, 4095, 40)
                .unwrap()
                .with_alpha_policy(policy)
                .with_seed(0xDEAD);
            let mut w = ByteWriter::new();
            encode_config(&config, &mut w);
            let bytes = w.into_bytes();
            let decoded = decode_config(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(decoded, config);
        }
    }

    #[test]
    fn invalid_decoded_config_is_rejected() {
        let config = CorrelatedConfig::new(0.2, 0.1, 1023, 40).unwrap();
        let mut w = ByteWriter::new();
        encode_config(&config, &mut w);
        let mut bytes = w.into_bytes();
        // Corrupt epsilon to an out-of-range bit pattern (2.0).
        bytes[..8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(decode_config(&mut ByteReader::new(&bytes)).is_err());
    }
}
