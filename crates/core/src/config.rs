//! Configuration and parameter derivation for the correlated-aggregation
//! framework (Section 2.1 of the paper).
//!
//! The paper fixes its parameters as
//!
//! ```text
//! α = 64 · c1(log y_max) / c2(ε/2)        (buckets kept per level)
//! υ = ε/2                                 (per-bucket sketch accuracy)
//! γ = δ / (4 · y_max · (ℓ_max + 1))       (per-bucket sketch failure prob.)
//! ℓ_max : 2^{ℓ_max} > f_max               (number of levels)
//! ```
//!
//! Those constants are what the correctness proof needs; they are far larger
//! than anything a practical implementation would use (for `F_2` at ε = 0.15
//! the theoretical α alone exceeds 10⁸ buckets per level). The paper's own
//! experiments (Section 5) use practical constants; since the exact values are
//! not reported, this module exposes both:
//!
//! * [`AlphaPolicy::Theoretical`] — the proof constants, usable for tiny
//!   domains and in tests that exercise the formulas;
//! * [`AlphaPolicy::Practical`] — `α = ⌈scale · log2(y_max+1) / ε⌉`, the
//!   default, with `scale = 24`. The empirical accuracy of the resulting
//!   sketch is validated against the exact baseline in the integration tests
//!   and the `accuracy_report` experiment binary (E8 in DESIGN.md).

use crate::dyadic::{pad_y_max, tree_height};
use crate::error::{CoreError, Result};

/// How to size the per-level bucket budget `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaPolicy {
    /// The constants from the paper's proof: `α = 64 · c1(log2 y_max) / c2(ε/2)`.
    Theoretical,
    /// Practical sizing: `α = ⌈scale · log2(y_max+1) / ε⌉` (clamped to ≥ 16).
    Practical {
        /// Multiplicative constant, default 24.
        scale: f64,
    },
    /// A fixed bucket budget per level (used by ablation benchmarks).
    Fixed(usize),
}

impl Default for AlphaPolicy {
    fn default() -> Self {
        AlphaPolicy::Practical { scale: 24.0 }
    }
}

/// User-facing configuration for a correlated sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedConfig {
    /// Target relative error ε ∈ (0, 1).
    pub epsilon: f64,
    /// Target failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Largest y value that will ever be inserted (padded internally to 2^β − 1).
    pub y_max: u64,
    /// Upper bound on log2 of the aggregate value over any stream this sketch
    /// will see (`2^{f_max_log2} > f_max`, Condition I). Determines `ℓ_max`.
    pub f_max_log2: u32,
    /// Bucket budget policy.
    pub alpha_policy: AlphaPolicy,
    /// Master seed for all hash functions in the structure.
    pub seed: u64,
}

impl CorrelatedConfig {
    /// Create a configuration with default alpha policy and seed.
    pub fn new(epsilon: f64, delta: f64, y_max: u64, f_max_log2: u32) -> Result<Self> {
        let cfg = Self {
            epsilon,
            delta,
            y_max,
            f_max_log2,
            alpha_policy: AlphaPolicy::default(),
            seed: DEFAULT_SEED,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the alpha policy (builder style).
    pub fn with_alpha_policy(mut self, policy: AlphaPolicy) -> Self {
        self.alpha_policy = policy;
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in (0,1), got {}", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                detail: format!("must be in (0,1), got {}", self.delta),
            });
        }
        if self.y_max == 0 {
            return Err(CoreError::InvalidParameter {
                name: "y_max",
                detail: "must be at least 1".into(),
            });
        }
        if self.f_max_log2 == 0 || self.f_max_log2 > 126 {
            return Err(CoreError::InvalidParameter {
                name: "f_max_log2",
                detail: format!("must be in [1, 126], got {}", self.f_max_log2),
            });
        }
        Ok(())
    }

    /// The padded y domain upper bound (`2^β − 1`).
    pub fn padded_y_max(&self) -> u64 {
        pad_y_max(self.y_max)
    }

    /// Height of the dyadic tree, `log2(y_max + 1)` after padding.
    pub fn log2_y(&self) -> u32 {
        tree_height(self.y_max)
    }

    /// Number of levels `ℓ_max + 1` (levels are `0 ..= ℓ_max`); `ℓ_max` is the
    /// smallest value with `2^{ℓ_max} > f_max`, i.e. `f_max_log2 + 1`.
    pub fn num_levels(&self) -> usize {
        self.f_max_log2 as usize + 2
    }

    /// Per-bucket sketch accuracy `υ = ε/2`.
    pub fn upsilon(&self) -> f64 {
        self.epsilon / 2.0
    }

    /// Per-bucket sketch failure probability
    /// `γ = δ / (4 · y_max · (ℓ_max + 1))`.
    pub fn gamma(&self) -> f64 {
        let denom = 4.0 * (self.padded_y_max() as f64) * (self.num_levels() as f64);
        (self.delta / denom).max(f64::MIN_POSITIVE)
    }

    /// Resolve the per-level bucket budget `α` for an aggregate with the given
    /// `c1(log2 y_max)` and `c2(ε/2)` values.
    pub fn alpha(&self, c1_logy: f64, c2_half_eps: f64) -> usize {
        match self.alpha_policy {
            AlphaPolicy::Theoretical => {
                let a = 64.0 * c1_logy / c2_half_eps;
                a.ceil().clamp(16.0, 1e9) as usize
            }
            AlphaPolicy::Practical { scale } => {
                let a = scale * f64::from(self.log2_y()) / self.epsilon;
                a.ceil().clamp(16.0, 1e9) as usize
            }
            AlphaPolicy::Fixed(a) => a.max(4),
        }
    }
}

/// Default master seed (arbitrary constant).
pub const DEFAULT_SEED: u64 = 0xC04A_5EED;

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CorrelatedConfig {
        CorrelatedConfig::new(0.2, 0.1, 1_000_000, 60).unwrap()
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(CorrelatedConfig::new(0.0, 0.1, 100, 40).is_err());
        assert!(CorrelatedConfig::new(0.2, 1.0, 100, 40).is_err());
        assert!(CorrelatedConfig::new(0.2, 0.1, 0, 40).is_err());
        assert!(CorrelatedConfig::new(0.2, 0.1, 100, 0).is_err());
        assert!(CorrelatedConfig::new(0.2, 0.1, 100, 200).is_err());
        assert!(CorrelatedConfig::new(0.2, 0.1, 100, 40).is_ok());
    }

    #[test]
    fn padded_domain_and_height() {
        let cfg = base();
        assert_eq!(cfg.padded_y_max(), (1 << 20) - 1);
        assert_eq!(cfg.log2_y(), 20);
    }

    #[test]
    fn level_count_covers_f_max() {
        let cfg = base();
        assert_eq!(cfg.num_levels(), 62);
    }

    #[test]
    fn upsilon_and_gamma_follow_the_paper() {
        let cfg = base();
        assert_eq!(cfg.upsilon(), 0.1);
        let gamma = cfg.gamma();
        assert!(gamma > 0.0 && gamma < cfg.delta);
        // γ = δ / (4 · y_max · levels)
        let expected = 0.1 / (4.0 * ((1u64 << 20) - 1) as f64 * 62.0);
        assert!((gamma - expected).abs() < 1e-15);
    }

    #[test]
    fn alpha_policies() {
        let cfg = base();
        // Practical default: 24 * 20 / 0.2 = 2400.
        assert_eq!(cfg.alpha(0.0, 1.0), 2400);
        let theo = cfg
            .clone()
            .with_alpha_policy(AlphaPolicy::Theoretical)
            .alpha(400.0, (0.1f64 / 18.0).powi(2));
        // 64 * 400 / (0.1/18)^2 ≈ 8.3e8 — clamped below 1e9 but enormous.
        assert!(theo > 100_000_000);
        let fixed = cfg.with_alpha_policy(AlphaPolicy::Fixed(7)).alpha(1.0, 1.0);
        assert_eq!(fixed, 7);
    }

    #[test]
    fn builder_methods() {
        let cfg = base().with_seed(99).with_alpha_policy(AlphaPolicy::Fixed(32));
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.alpha_policy, AlphaPolicy::Fixed(32));
    }

    #[test]
    fn alpha_never_degenerate() {
        let cfg = CorrelatedConfig::new(0.9, 0.5, 2, 4).unwrap();
        assert!(cfg.alpha(1.0, 0.5) >= 16);
        let tiny = cfg.with_alpha_policy(AlphaPolicy::Fixed(1));
        assert!(tiny.alpha(1.0, 0.5) >= 4);
    }
}
