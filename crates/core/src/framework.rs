//! The general correlated-aggregation framework: Algorithms 1–3 of the paper.
//!
//! A [`CorrelatedSketch`] maintains `ℓ_max + 1` levels:
//!
//! * **level 0** holds *singleton* buckets, one per distinct y value seen, each
//!   containing a summary of the items carrying exactly that y value;
//! * **level ℓ ≥ 1** holds buckets over *dyadic intervals* of the y domain,
//!   organised as a binary tree grown lazily from the root `[0, y_max]`. A
//!   bucket is updated while it is *open*; once its estimate reaches the
//!   level's threshold `2^{ℓ+1}` it is *closed* and subsequent items falling
//!   into its span are routed into its children (created on demand).
//!
//! Every level stores at most `α` buckets. On overflow, the bucket with the
//! largest left endpoint is discarded and the level's *eviction watermark*
//! `Y_ℓ` is lowered to that endpoint: the level can from then on only answer
//! queries with threshold `c < Y_ℓ`.
//!
//! A query for `f({x : y ≤ c})` picks the smallest level whose watermark is
//! still above `c`, composes the summaries of all its buckets whose span lies
//! entirely inside `[0, c]`, and returns the composed estimate (Algorithm 3).
//! The buckets that straddle `c` are exactly the ones whose omission the
//! paper's analysis charges against the level's bucket budget `α`.
//!
//! This module is the thin **coordinator**: it owns the configuration, the
//! singleton level, and the update-generation counter, and delegates
//!
//! * all dyadic-level state and the insert hot path to the
//!   structure-of-arrays level engine in `crate::levels` (bucket arenas, leaf
//!   routing, headroom-gated closing, eviction, the shared dormant-level
//!   tail, and the flat-batch ingest path);
//! * query-time composition and its memoization to the unified query core in
//!   [`crate::compose`] (Algorithm 3's level selection and bucket
//!   composition, behind a generation-validated [`GenCache`]).

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::compose::{self, GenCache};
use crate::config::CorrelatedConfig;
use crate::dyadic::DyadicInterval;
use crate::error::{CoreError, Result};
use crate::levels::{BatchOf, LevelEngine, PreparedOf};
use cora_sketch::SharedUpdate;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Statistics describing the internal state of a [`CorrelatedSketch`]; used by
/// the experiment harness and exposed for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStats {
    /// Number of singleton buckets at level 0.
    pub singleton_buckets: usize,
    /// Number of dyadic buckets summed over all levels ≥ 1.
    pub dyadic_buckets: usize,
    /// Number of levels (≥ 1) that have evicted at least one bucket.
    pub levels_with_evictions: usize,
    /// Total stored tuples (counters + exact entries) across the structure —
    /// the unit reported in the paper's space figures.
    pub stored_tuples: usize,
    /// Approximate heap footprint in bytes.
    pub space_bytes: usize,
    /// Number of stream elements processed.
    pub items_processed: u64,
}

/// The generic correlated-aggregation sketch (Algorithms 1–3).
#[derive(Debug)]
pub struct CorrelatedSketch<A: CorrelatedAggregate> {
    agg: A,
    config: CorrelatedConfig,
    alpha: usize,
    /// Level 0: singleton buckets keyed by exact y value.
    singletons: BTreeMap<u64, BucketStore<A>>,
    /// Eviction watermark `Y_0`; `None` = `+∞`.
    singleton_y_bound: Option<u64>,
    /// All dyadic levels, the packed watermark array, and the shared tail.
    engine: LevelEngine<A>,
    items_processed: u64,
    /// A pristine sketch used solely to compute shared update coordinates
    /// ([`SharedUpdate::prepare_into`] depends only on dimensions and seed).
    proto_sketch: A::Sketch,
    /// Reusable buffer for the shared coordinates of the element in flight.
    prepared_scratch: PreparedOf<A>,
    /// Reusable buffers for the batch path: the `(item, weight)` view of the
    /// batch and the flat prepared coordinates.
    batch_items: Vec<(u64, i64)>,
    batch_scratch: BatchOf<A>,
    /// Memoized query compositions per `(generation, threshold)` (interior
    /// mutability: queries take `&self`).
    compose_cache: Mutex<GenCache<u64, u64, BucketStore<A>>>,
}

impl<A: CorrelatedAggregate> Clone for CorrelatedSketch<A> {
    fn clone(&self) -> Self {
        Self {
            agg: self.agg.clone(),
            config: self.config.clone(),
            alpha: self.alpha,
            singletons: self.singletons.clone(),
            singleton_y_bound: self.singleton_y_bound,
            engine: self.engine.clone(),
            items_processed: self.items_processed,
            proto_sketch: self.proto_sketch.clone(),
            prepared_scratch: PreparedOf::<A>::default(),
            batch_items: Vec::new(),
            batch_scratch: BatchOf::<A>::default(),
            // Caches don't travel: the clone starts with a cold cache.
            compose_cache: Mutex::new(GenCache::new(compose::COMPOSE_CACHE_CAPACITY)),
        }
    }
}

impl<A: CorrelatedAggregate> CorrelatedSketch<A> {
    /// Build a correlated sketch for aggregate `agg` under `config`.
    pub fn new(agg: A, config: CorrelatedConfig) -> Result<Self> {
        config.validate()?;
        let root = DyadicInterval::root(config.y_max);
        let logy = f64::from(config.log2_y());
        let alpha = config.alpha(agg.c1(logy), agg.c2(config.epsilon / 2.0));
        let max_level = config.num_levels() as u32 - 1;
        let proto_sketch = agg.new_sketch();
        Ok(Self {
            agg,
            config,
            alpha,
            singletons: BTreeMap::new(),
            singleton_y_bound: None,
            // Levels materialize lazily as the stream's aggregate grows past
            // their thresholds; an empty sketch has none.
            engine: LevelEngine::new(root, max_level),
            items_processed: 0,
            proto_sketch,
            prepared_scratch: PreparedOf::<A>::default(),
            batch_items: Vec::new(),
            batch_scratch: BatchOf::<A>::default(),
            compose_cache: Mutex::new(GenCache::new(compose::COMPOSE_CACHE_CAPACITY)),
        })
    }

    /// The aggregate descriptor.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// The per-level bucket budget α in effect.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Number of stream elements processed so far.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Process a stream element `(x, y)` with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.update(x, y, 1)
    }

    /// Process a stream element `(x, y)` with a positive weight.
    ///
    /// Negative weights are rejected: the single-pass structure only supports
    /// the cash-register model (Section 4 of the paper proves that no small
    /// single-pass summary exists once deletions are allowed; use the
    /// multi-pass algorithm in `cora-stream` for that setting).
    pub fn update(&mut self, x: u64, y: u64, weight: i64) -> Result<()> {
        if weight < 0 {
            return Err(CoreError::InvalidParameter {
                name: "weight",
                detail: "single-pass correlated sketches require non-negative weights".into(),
            });
        }
        if y > self.config.padded_y_max() {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.config.padded_y_max(),
            });
        }
        if weight == 0 {
            return Ok(());
        }
        self.items_processed += 1;

        // Hash the element once; every sketched bucket it touches reuses the
        // coordinates (all bucket sketches share seeds by Property V).
        let mut prepared = std::mem::take(&mut self.prepared_scratch);
        self.proto_sketch.prepare_into(x, weight, &mut prepared);

        self.update_singletons(x, y, weight, &prepared);
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.update(agg, alpha, x, y, weight, &prepared);
        self.prepared_scratch = prepared;
        Ok(())
    }

    /// Process a batch of unit-weight stream elements `(x, y)`.
    ///
    /// Equivalent to calling [`insert`](Self::insert) for each tuple in order,
    /// but amortizes the per-level bookkeeping: every element's sketch
    /// coordinates are hashed once up front into one flat allocation, each
    /// level's arena is walked for the whole batch at once (level-major
    /// traversal), and runs of consecutive tuples routed to the same bucket
    /// are applied through the sketch's contiguous batch layout (see
    /// `crate::levels`). Level states are independent of one another, so
    /// this produces exactly the same final structure as per-tuple inserts.
    ///
    /// The batch is validated up front: if any `y` is out of range, an error
    /// is returned and **no** tuple of the batch is applied.
    pub fn update_batch(&mut self, tuples: &[(u64, u64)]) -> Result<()> {
        let y_max = self.config.padded_y_max();
        for &(_, y) in tuples {
            if y > y_max {
                return Err(CoreError::YOutOfRange { y, y_max });
            }
        }
        self.items_processed += tuples.len() as u64;
        // Hash every element of the batch once up front, into the sketch's
        // flat structure-of-arrays coordinate layout.
        let mut items = std::mem::take(&mut self.batch_items);
        items.clear();
        items.extend(tuples.iter().map(|&(x, _)| (x, 1i64)));
        let mut batch = std::mem::take(&mut self.batch_scratch);
        self.proto_sketch.prepare_batch_into(&items, &mut batch);

        for i in 0..tuples.len() {
            self.update_singleton_from_batch(tuples, &batch, i);
        }
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.update_batch(agg, alpha, tuples, &batch);

        self.batch_items = items;
        self.batch_scratch = batch;
        Ok(())
    }

    /// Merge `other` into `self` (Property V): the result summarises the
    /// concatenation of the two input streams.
    ///
    /// Requires the two sketches to share a configuration (accuracy
    /// parameters, y domain, level count, bucket policy, and master hash
    /// seed) — the same requirement Property V puts on per-bucket sketches,
    /// lifted to whole structures. Returns
    /// [`CoreError::IncompatibleMerge`](crate::error::CoreError) otherwise.
    ///
    /// The merge is carried out per layer: singleton stores merge entry-wise
    /// (watermark lowered, α re-enforced), dyadic levels union-merge with
    /// bucket-closing re-run, and the shared tails merge with the
    /// materialization check re-run (see the level engine in `crate::levels`).
    ///
    /// Per-bucket stores are linear summaries, so merged buckets carry the
    /// same relative error as sequentially-built ones. What composition *can*
    /// inflate is the boundary-bucket omission of Algorithm 3: a merged
    /// bucket straddling the query threshold holds up to one closed bucket's
    /// worth of weight **per input**, so merging `k` shards scales that error
    /// term by at most `k` — absorbed by the α budget's constant-factor
    /// headroom for small `k` (the sharded-ingest property tests pin this
    /// empirically).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.config != other.config {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "configurations differ: {:?} vs {:?}",
                    self.config, other.config
                ),
            });
        }
        debug_assert_eq!(self.alpha, other.alpha);

        // Level 0: entry-wise singleton merge, then re-enforce watermark + α.
        for (&y, store) in &other.singletons {
            self.singletons
                .entry(y)
                .or_default()
                .merge_from(&self.agg, store)?;
        }
        self.singleton_y_bound =
            compose::min_watermark(self.singleton_y_bound, other.singleton_y_bound);
        if let Some(bound) = self.singleton_y_bound {
            // Entries at or past the watermark can never be composed.
            self.singletons.split_off(&bound);
        }
        self.enforce_singleton_budget();

        // Dyadic levels + shared tail.
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.merge_from(agg, alpha, &other.engine)?;

        self.items_processed += other.items_processed;
        // The merged structure invalidates any memoized composition.
        self.compose_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(())
    }

    /// Level 0 processing: singleton buckets keyed by exact y value.
    fn update_singletons(&mut self, x: u64, y: u64, weight: i64, prepared: &PreparedOf<A>) {
        if let Some(bound) = self.singleton_y_bound {
            if y >= bound {
                return;
            }
        }
        self.singletons
            .entry(y)
            .or_default()
            .update_prepared(&self.agg, x, weight, prepared);
        self.enforce_singleton_budget();
    }

    /// Level 0 processing for tuple `i` of a prepared batch.
    fn update_singleton_from_batch(&mut self, tuples: &[(u64, u64)], batch: &BatchOf<A>, i: usize) {
        let (_, y) = tuples[i];
        if let Some(bound) = self.singleton_y_bound {
            if y >= bound {
                return;
            }
        }
        self.singletons
            .entry(y)
            .or_default()
            .update_batch_range(&self.agg, tuples, batch, i..i + 1);
        self.enforce_singleton_budget();
    }

    /// Enforce the α budget on level 0: discard the singletons with the
    /// largest y and lower the watermark until the level fits. Shared by the
    /// insert and merge paths so their eviction policies cannot diverge.
    fn enforce_singleton_budget(&mut self) {
        while self.singletons.len() > self.alpha {
            let (&largest_y, _) = self
                .singletons
                .iter()
                .next_back()
                .expect("len > alpha >= 1, so non-empty");
            self.singletons.remove(&largest_y);
            self.singleton_y_bound = Some(match self.singleton_y_bound {
                None => largest_y,
                Some(b) => b.min(largest_y),
            });
        }
    }

    /// Answer a correlated query: estimate `f({x : (x, y) ∈ S, y ≤ c})`
    /// (Algorithm 3).
    pub fn query(&self, c: u64) -> Result<f64> {
        self.with_composed(c, |store| store.estimate(&self.agg))
    }

    /// Compose the summaries Algorithm 3 would use for threshold `c` into a
    /// single store and return it. `query` is `estimate` over this store;
    /// richer queries (heavy hitters, Section 3.3) inspect the composed store
    /// directly.
    ///
    /// Compositions are memoized per threshold until the next update, so
    /// repeated queries against a quiescent sketch return a clone of the
    /// cached store instead of re-merging every bucket. Callers that only
    /// need to *read* the composed store should prefer
    /// [`Self::with_composed`], which skips the clone.
    pub fn compose_for_threshold(&self, c: u64) -> Result<BucketStore<A>> {
        self.with_composed(c, Clone::clone)
    }

    /// Run `f` against the composed store for threshold `c` without cloning
    /// it out of the memoization cache.
    ///
    /// This is the zero-copy read path behind [`Self::query`] and the
    /// extension queries (heavy hitters): `f` runs while the cache lock is
    /// held, so it must not call back into this sketch's query API.
    pub fn with_composed<R>(&self, c: u64, f: impl FnOnce(&BucketStore<A>) -> R) -> Result<R> {
        let c = c.min(self.config.padded_y_max());
        compose::cached_query(
            &self.compose_cache,
            self.items_processed,
            c,
            || {
                compose::compose_for_threshold(
                    &self.agg,
                    &self.singletons,
                    self.singleton_y_bound,
                    &self.engine,
                    c,
                )
            },
            f,
        )
    }

    /// The level Algorithm 3 would use for threshold `c` (0 = singleton level);
    /// `None` if the query would fail. Exposed for diagnostics and tests.
    pub fn query_level(&self, c: u64) -> Option<u32> {
        let c = c.min(self.config.padded_y_max());
        compose::query_level(self.singleton_y_bound, &self.engine, c)
    }

    /// Estimate the aggregate over the entire stream (threshold `y_max`).
    pub fn query_all(&self) -> Result<f64> {
        self.query(self.config.padded_y_max())
    }

    /// Internal statistics (space accounting, level usage).
    pub fn stats(&self) -> SketchStats {
        let singleton_tuples: usize = self.singletons.values().map(BucketStore::stored_tuples).sum();
        let singleton_bytes: usize = self.singletons.values().map(BucketStore::space_bytes).sum();
        let (dyadic_buckets, dyadic_tuples, dyadic_bytes, levels_with_evictions) =
            self.engine.space_accounting();
        SketchStats {
            singleton_buckets: self.singletons.len(),
            dyadic_buckets,
            levels_with_evictions,
            stored_tuples: singleton_tuples + dyadic_tuples,
            space_bytes: singleton_bytes + dyadic_bytes,
            items_processed: self.items_processed,
        }
    }

    /// Total stored tuples — the paper's space unit.
    pub fn stored_tuples(&self) -> usize {
        self.stats().stored_tuples
    }

    /// Assert the structure's invariants: the singleton level respects its
    /// budget and watermark, and every dyadic level passes the
    /// structure-of-arrays checks (leaf tiling, predecessor-index agreement,
    /// eviction-set consistency — see `Level::check_invariants` in
    /// `crate::levels`). Panics on violation. Compiled only under `cfg(test)`
    /// or the `invariant-checks` feature; property tests run it after merges.
    #[cfg(any(test, feature = "invariant-checks"))]
    pub fn check_invariants(&self) {
        assert!(
            self.singletons.len() <= self.alpha,
            "singleton level exceeds its bucket budget"
        );
        if let Some(bound) = self.singleton_y_bound {
            if let Some((&largest, _)) = self.singletons.iter().next_back() {
                assert!(largest < bound, "singleton stored at or past the watermark");
            }
        }
        self.engine.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlphaPolicy;
    use crate::f2::F2Aggregate;

    fn f2_sketch(epsilon: f64, y_max: u64, alpha: AlphaPolicy) -> CorrelatedSketch<F2Aggregate> {
        let config = CorrelatedConfig::new(epsilon, 0.1, y_max, 40)
            .unwrap()
            .with_alpha_policy(alpha)
            .with_seed(7);
        CorrelatedSketch::new(F2Aggregate::new(epsilon, 0.1, 7), config).unwrap()
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert_eq!(s.query(10).unwrap(), 0.0);
        assert_eq!(s.query_all().unwrap(), 0.0);
        assert_eq!(s.query_level(10), Some(0));
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn rejects_negative_weights_and_out_of_range_y() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert!(matches!(
            s.update(1, 5, -1),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            s.update(1, 5000, 1),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert!(s.update(1, 5, 0).is_ok());
        assert_eq!(s.items_processed(), 0);
    }

    #[test]
    fn update_batch_rejects_bad_y_atomically() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
        let batch = [(1u64, 3u64), (2, 5000), (3, 7)];
        assert!(matches!(
            s.update_batch(&batch),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert_eq!(s.items_processed(), 0);
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn compose_cache_is_invalidated_by_updates() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        for i in 0..3_000u64 {
            s.insert(i % 90, (i * 11) % 1024).unwrap();
        }
        let first = s.query(500).unwrap();
        // Cached repeat answers identically.
        assert_eq!(s.query(500).unwrap(), first);
        // An update must invalidate the cache: insert weight below the
        // threshold and require the answer to move.
        for _ in 0..50 {
            s.insert(12345, 100).unwrap();
        }
        let second = s.query(500).unwrap();
        assert!(
            second > first,
            "query after updates must reflect the new items: {first} -> {second}"
        );
        // compose_for_threshold returns an equivalent store from the cache.
        let store = s.compose_for_threshold(500).unwrap();
        assert_eq!(store.estimate(s.aggregate()), second);
    }

    #[test]
    fn insert_merge_and_batch_paths_preserve_invariants() {
        let mut a = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let mut b = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let mut batched = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let tuples: Vec<(u64, u64)> = (0..8_000u64).map(|i| (i % 120, (i * 37) % 4096)).collect();
        for &(x, y) in &tuples {
            a.insert(x, y).unwrap();
            b.insert(y % 64, x % 4096).unwrap();
        }
        for chunk in tuples.chunks(512) {
            batched.update_batch(chunk).unwrap();
        }
        a.check_invariants();
        b.check_invariants();
        batched.check_invariants();
        a.merge_from(&b).unwrap();
        a.check_invariants();
    }
}
