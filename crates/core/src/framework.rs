//! The general correlated-aggregation framework: Algorithms 1–3 of the paper.
//!
//! A [`CorrelatedSketch`] maintains `ℓ_max + 1` levels:
//!
//! * **level 0** holds *singleton* buckets, one per distinct y value seen, each
//!   containing a summary of the items carrying exactly that y value;
//! * **level ℓ ≥ 1** holds buckets over *dyadic intervals* of the y domain,
//!   organised as a binary tree grown lazily from the root `[0, y_max]`. A
//!   bucket is updated while it is *open*; once its estimate reaches the
//!   level's threshold `2^{ℓ+1}` it is *closed* and subsequent items falling
//!   into its span are routed into its children (created on demand).
//!
//! Every level stores at most `α` buckets. On overflow, the bucket with the
//! largest left endpoint is discarded and the level's *eviction watermark*
//! `Y_ℓ` is lowered to that endpoint: the level can from then on only answer
//! queries with threshold `c < Y_ℓ`.
//!
//! A query for `f({x : y ≤ c})` picks the smallest level whose watermark is
//! still above `c`, composes the summaries of all its buckets whose span lies
//! entirely inside `[0, c]`, and returns the composed estimate (Algorithm 3).
//! The buckets that straddle `c` are exactly the ones whose omission the
//! paper's analysis charges against the level's bucket budget `α`.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::config::CorrelatedConfig;
use crate::dyadic::DyadicInterval;
use crate::error::{CoreError, Result};
use std::collections::{BTreeMap, HashMap};

/// A bucket at some level `ℓ ≥ 1`.
#[derive(Debug, Clone)]
struct Bucket<A: CorrelatedAggregate> {
    store: BucketStore<A>,
    closed: bool,
}

impl<A: CorrelatedAggregate> Bucket<A> {
    fn new() -> Self {
        Self {
            store: BucketStore::new(),
            closed: false,
        }
    }
}

/// One level `ℓ ≥ 1` of the structure.
#[derive(Debug, Clone)]
struct Level<A: CorrelatedAggregate> {
    /// Level index `ℓ` (1-based; level 0 is the singleton level).
    index: u32,
    /// Closing threshold `2^{ℓ+1}`.
    threshold: f64,
    /// Stored buckets keyed by their dyadic interval.
    buckets: HashMap<DyadicInterval, Bucket<A>>,
    /// Eviction watermark `Y_ℓ`; `None` means `+∞` (nothing evicted yet).
    y_bound: Option<u64>,
}

impl<A: CorrelatedAggregate> Level<A> {
    fn new(index: u32, root: DyadicInterval) -> Self {
        let mut buckets = HashMap::new();
        buckets.insert(root, Bucket::new());
        Self {
            index,
            threshold: 2f64.powi(index as i32 + 1),
            buckets,
            y_bound: None,
        }
    }

    /// True iff this level can still answer queries with threshold `c`.
    fn answers(&self, c: u64) -> bool {
        match self.y_bound {
            None => true,
            Some(y) => y > c,
        }
    }
}

/// Statistics describing the internal state of a [`CorrelatedSketch`]; used by
/// the experiment harness and exposed for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStats {
    /// Number of singleton buckets at level 0.
    pub singleton_buckets: usize,
    /// Number of dyadic buckets summed over all levels ≥ 1.
    pub dyadic_buckets: usize,
    /// Number of levels (≥ 1) that have evicted at least one bucket.
    pub levels_with_evictions: usize,
    /// Total stored tuples (counters + exact entries) across the structure —
    /// the unit reported in the paper's space figures.
    pub stored_tuples: usize,
    /// Approximate heap footprint in bytes.
    pub space_bytes: usize,
    /// Number of stream elements processed.
    pub items_processed: u64,
}

/// The generic correlated-aggregation sketch (Algorithms 1–3).
#[derive(Debug, Clone)]
pub struct CorrelatedSketch<A: CorrelatedAggregate> {
    agg: A,
    config: CorrelatedConfig,
    alpha: usize,
    root: DyadicInterval,
    /// Level 0: singleton buckets keyed by exact y value.
    singletons: BTreeMap<u64, BucketStore<A>>,
    /// Eviction watermark `Y_0`; `None` = `+∞`.
    singleton_y_bound: Option<u64>,
    /// Levels `1 ..= ℓ_max`.
    levels: Vec<Level<A>>,
    items_processed: u64,
}

impl<A: CorrelatedAggregate> CorrelatedSketch<A> {
    /// Build a correlated sketch for aggregate `agg` under `config`.
    pub fn new(agg: A, config: CorrelatedConfig) -> Result<Self> {
        config.validate()?;
        let root = DyadicInterval::root(config.y_max);
        let logy = f64::from(config.log2_y());
        let alpha = config.alpha(agg.c1(logy), agg.c2(config.epsilon / 2.0));
        let levels = (1..config.num_levels() as u32)
            .map(|i| Level::new(i, root))
            .collect();
        Ok(Self {
            agg,
            config,
            alpha,
            root,
            singletons: BTreeMap::new(),
            singleton_y_bound: None,
            levels,
            items_processed: 0,
        })
    }

    /// The aggregate descriptor.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// The per-level bucket budget α in effect.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Number of stream elements processed so far.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Process a stream element `(x, y)` with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.update(x, y, 1)
    }

    /// Process a stream element `(x, y)` with a positive weight.
    ///
    /// Negative weights are rejected: the single-pass structure only supports
    /// the cash-register model (Section 4 of the paper proves that no small
    /// single-pass summary exists once deletions are allowed; use the
    /// multi-pass algorithm in `cora-stream` for that setting).
    pub fn update(&mut self, x: u64, y: u64, weight: i64) -> Result<()> {
        if weight < 0 {
            return Err(CoreError::InvalidParameter {
                name: "weight",
                detail: "single-pass correlated sketches require non-negative weights".into(),
            });
        }
        if y > self.config.padded_y_max() {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.config.padded_y_max(),
            });
        }
        if weight == 0 {
            return Ok(());
        }
        self.items_processed += 1;

        self.update_singletons(x, y, weight);
        for idx in 0..self.levels.len() {
            self.update_level(idx, x, y, weight);
        }
        Ok(())
    }

    /// Level 0 processing: singleton buckets keyed by exact y value.
    fn update_singletons(&mut self, x: u64, y: u64, weight: i64) {
        if let Some(bound) = self.singleton_y_bound {
            if y >= bound {
                return;
            }
        }
        self.singletons
            .entry(y)
            .or_default()
            .update(&self.agg, x, weight);
        while self.singletons.len() > self.alpha {
            // Discard the singleton with the largest y and lower the watermark.
            let (&largest_y, _) = self
                .singletons
                .iter()
                .next_back()
                .expect("len > alpha >= 1, so non-empty");
            self.singletons.remove(&largest_y);
            self.singleton_y_bound = Some(match self.singleton_y_bound {
                None => largest_y,
                Some(b) => b.min(largest_y),
            });
        }
    }

    /// Level `ℓ ≥ 1` processing (Algorithm 2, lines 7–21).
    fn update_level(&mut self, idx: usize, x: u64, y: u64, weight: i64) {
        let root = self.root;
        let agg = self.agg.clone();
        let alpha = self.alpha;
        let level = &mut self.levels[idx];

        if let Some(bound) = level.y_bound {
            if y >= bound {
                return;
            }
        }

        // Walk from the root to the deepest stored bucket containing y.
        let mut current = root;
        loop {
            match current.child_containing(y) {
                Some(child) if level.buckets.contains_key(&child) => current = child,
                _ => break,
            }
        }
        // The walk can only fail to find the root if it was evicted — but the
        // root has left endpoint 0, so evicting it sets Y_ℓ = 0 and the bound
        // check above already returned.
        let Some(bucket) = level.buckets.get_mut(&current) else {
            return;
        };

        if !bucket.closed {
            bucket.store.update(&agg, x, weight);
            if !current.is_unit() && bucket.store.estimate(&agg) >= level.threshold {
                bucket.closed = true;
            }
        } else {
            // Closed leaf: create the children and route the item to the one
            // containing y.
            let (left, right) = current
                .children()
                .expect("closed buckets are never unit intervals");
            level.buckets.entry(left).or_insert_with(Bucket::new);
            level.buckets.entry(right).or_insert_with(Bucket::new);
            let target = if left.contains(y) { left } else { right };
            level
                .buckets
                .get_mut(&target)
                .expect("just inserted")
                .store
                .update(&agg, x, weight);
        }

        // Overflow check: evict buckets with the largest left endpoint until
        // the level fits its budget again, lowering the watermark.
        while level.buckets.len() > alpha {
            let victim = level
                .buckets
                .keys()
                .max_by(|a, b| a.lo.cmp(&b.lo).then(b.len().cmp(&a.len())))
                .copied()
                .expect("non-empty: len > alpha >= 1");
            level.buckets.remove(&victim);
            level.y_bound = Some(match level.y_bound {
                None => victim.lo,
                Some(b) => b.min(victim.lo),
            });
        }
    }

    /// Answer a correlated query: estimate `f({x : (x, y) ∈ S, y ≤ c})`
    /// (Algorithm 3).
    pub fn query(&self, c: u64) -> Result<f64> {
        Ok(self.compose_for_threshold(c)?.estimate(&self.agg))
    }

    /// Compose the summaries Algorithm 3 would use for threshold `c` into a
    /// single store and return it. `query` is `estimate` over this store;
    /// richer queries (heavy hitters, Section 3.3) inspect the composed store
    /// directly.
    pub fn compose_for_threshold(&self, c: u64) -> Result<BucketStore<A>> {
        let c = c.min(self.config.padded_y_max());

        // Level 0 answers if its watermark is above c.
        let level0_ok = match self.singleton_y_bound {
            None => true,
            Some(bound) => bound > c,
        };
        if level0_ok {
            let mut acc: BucketStore<A> = BucketStore::new();
            for (_, store) in self.singletons.range(..=c) {
                acc.merge_from(&self.agg, store)?;
            }
            return Ok(acc);
        }

        // Otherwise the smallest level whose watermark exceeds c.
        for level in &self.levels {
            if !level.answers(c) {
                continue;
            }
            let mut acc: BucketStore<A> = BucketStore::new();
            for (interval, bucket) in &level.buckets {
                if interval.within_threshold(c) {
                    acc.merge_from(&self.agg, &bucket.store)?;
                }
            }
            return Ok(acc);
        }
        Err(CoreError::QueryFailed { threshold: c })
    }

    /// The level Algorithm 3 would use for threshold `c` (0 = singleton level);
    /// `None` if the query would fail. Exposed for diagnostics and tests.
    pub fn query_level(&self, c: u64) -> Option<u32> {
        let c = c.min(self.config.padded_y_max());
        let level0_ok = match self.singleton_y_bound {
            None => true,
            Some(bound) => bound > c,
        };
        if level0_ok {
            return Some(0);
        }
        self.levels.iter().find(|l| l.answers(c)).map(|l| l.index)
    }

    /// Estimate the aggregate over the entire stream (threshold `y_max`).
    pub fn query_all(&self) -> Result<f64> {
        self.query(self.config.padded_y_max())
    }

    /// Internal statistics (space accounting, level usage).
    pub fn stats(&self) -> SketchStats {
        let singleton_tuples: usize = self.singletons.values().map(BucketStore::stored_tuples).sum();
        let singleton_bytes: usize = self.singletons.values().map(BucketStore::space_bytes).sum();
        let mut dyadic_buckets = 0usize;
        let mut dyadic_tuples = 0usize;
        let mut dyadic_bytes = 0usize;
        let mut levels_with_evictions = 0usize;
        for level in &self.levels {
            dyadic_buckets += level.buckets.len();
            dyadic_tuples += level
                .buckets
                .values()
                .map(|b| b.store.stored_tuples())
                .sum::<usize>();
            dyadic_bytes += level
                .buckets
                .values()
                .map(|b| b.store.space_bytes())
                .sum::<usize>();
            if level.y_bound.is_some() {
                levels_with_evictions += 1;
            }
        }
        SketchStats {
            singleton_buckets: self.singletons.len(),
            dyadic_buckets,
            levels_with_evictions,
            stored_tuples: singleton_tuples + dyadic_tuples,
            space_bytes: singleton_bytes + dyadic_bytes,
            items_processed: self.items_processed,
        }
    }

    /// Total stored tuples — the paper's space unit.
    pub fn stored_tuples(&self) -> usize {
        self.stats().stored_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_sketch::StreamSketch as _;
    use crate::config::AlphaPolicy;
    use crate::f2::F2Aggregate;
    use crate::sum::{CountAggregate, SumAggregate};

    fn f2_sketch(epsilon: f64, y_max: u64, alpha: AlphaPolicy) -> CorrelatedSketch<F2Aggregate> {
        let config = CorrelatedConfig::new(epsilon, 0.1, y_max, 40)
            .unwrap()
            .with_alpha_policy(alpha)
            .with_seed(7);
        CorrelatedSketch::new(F2Aggregate::new(epsilon, 0.1, 7), config).unwrap()
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert_eq!(s.query(10).unwrap(), 0.0);
        assert_eq!(s.query_all().unwrap(), 0.0);
        assert_eq!(s.query_level(10), Some(0));
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn rejects_negative_weights_and_out_of_range_y() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert!(matches!(
            s.update(1, 5, -1),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            s.update(1, 5000, 1),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert!(s.update(1, 5, 0).is_ok());
        assert_eq!(s.items_processed(), 0);
    }

    #[test]
    fn small_stream_is_answered_exactly_from_singletons() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(128));
        // 50 distinct y values, each with a couple of items: level 0 holds all.
        for y in 0..50u64 {
            s.insert(y % 7, y).unwrap();
            s.insert(y % 5, y).unwrap();
        }
        assert_eq!(s.query_level(20), Some(0));
        // Exact correlated F2 for c = 20: items with y <= 20.
        let mut exact = cora_sketch::ExactFrequencies::new();
        for y in 0..=20u64 {
            exact.insert(y % 7);
            exact.insert(y % 5);
        }
        assert_eq!(s.query(20).unwrap(), exact.frequency_moment(2));
    }

    #[test]
    fn monotone_in_threshold() {
        let mut s = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(128));
        for i in 0..20_000u64 {
            s.insert(i % 500, i % 4096).unwrap();
        }
        let mut prev = 0.0;
        for c in (0..4096u64).step_by(256) {
            let est = s.query(c).unwrap();
            assert!(
                est >= prev * 0.8,
                "estimates should be (roughly) monotone in c: {prev} then {est}"
            );
            prev = est;
        }
    }

    #[test]
    fn accuracy_against_exact_correlated_f2() {
        let epsilon = 0.2;
        let y_max = 8191u64;
        let mut s = f2_sketch(epsilon, y_max, AlphaPolicy::default());
        let mut tuples: Vec<(u64, u64)> = Vec::new();
        // Zipf-ish x over 2000 ids, uniform y.
        let mut state = 12345u64;
        for i in 0..60_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (state >> 33) % 2000;
            let y = (state >> 17) % (y_max + 1);
            let x = x / ((i % 7) + 1); // mild skew
            tuples.push((x, y));
            s.insert(x, y).unwrap();
        }
        for &c in &[y_max / 16, y_max / 4, y_max / 2, y_max] {
            let mut exact = cora_sketch::ExactFrequencies::new();
            for &(x, y) in &tuples {
                if y <= c {
                    exact.insert(x);
                }
            }
            let truth = exact.frequency_moment(2);
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err < epsilon,
                "c = {c}: estimate {est}, truth {truth}, error {err} > {epsilon}"
            );
        }
    }

    #[test]
    fn eviction_moves_queries_to_higher_levels() {
        // Tiny alpha forces evictions; large thresholds must still be answerable.
        let mut s = f2_sketch(0.25, 65535, AlphaPolicy::Fixed(24));
        for i in 0..30_000u64 {
            s.insert(i % 300, (i * 37) % 65536).unwrap();
        }
        let stats = s.stats();
        assert!(stats.levels_with_evictions > 0, "expected evictions with alpha = 24");
        // Large thresholds are answered at some level > 0.
        let lvl = s.query_level(60_000).expect("query must still be answerable");
        assert!(lvl > 0);
        // And the answer is still reasonably accurate.
        let mut exact = cora_sketch::ExactFrequencies::new();
        for i in 0..30_000u64 {
            if (i * 37) % 65536 <= 60_000 {
                exact.insert(i % 300);
            }
        }
        let truth = exact.frequency_moment(2);
        let est = s.query(60_000).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.5, "error {err} too large even for a starved sketch");
    }

    #[test]
    fn query_failed_when_alpha_is_absurdly_small() {
        // With alpha = 4 and many distinct y values, every level eventually
        // evicts below small thresholds; a query for a tiny c can then fail
        // only if even level lmax evicted, which cannot happen (its root never
        // splits). So instead check the error path by querying below Y_0 but
        // verifying the structure falls back to a higher level rather than
        // failing. The FAIL branch is exercised directly on a doctored state
        // in `sum` tests.
        let mut s = f2_sketch(0.25, 1023, AlphaPolicy::Fixed(4));
        for i in 0..5_000u64 {
            s.insert(i % 17, i % 1024).unwrap();
        }
        assert!(s.query(512).is_ok());
    }

    #[test]
    fn sum_aggregate_is_exact_for_counts() {
        // The correlated count through the generic framework, compared against
        // a direct count. Count sketches are scalar counters, so the only
        // error source is boundary-bucket omission.
        let config = CorrelatedConfig::new(0.2, 0.1, 4095, 30)
            .unwrap()
            .with_alpha_policy(AlphaPolicy::default())
            .with_seed(3);
        let mut s = CorrelatedSketch::new(CountAggregate::new(), config).unwrap();
        let mut ys = Vec::new();
        let mut state = 99u64;
        for _ in 0..40_000u64 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let y = (state >> 20) % 4096;
            ys.push(y);
            s.insert(state % 1000, y).unwrap();
        }
        for &c in &[100u64, 1000, 2000, 4095] {
            let truth = ys.iter().filter(|&&y| y <= c).count() as f64;
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(err < 0.2, "count at c={c}: est {est}, truth {truth}");
        }
    }

    #[test]
    fn weighted_sum_aggregate_tracks_weights() {
        let config = CorrelatedConfig::new(0.2, 0.1, 1023, 40)
            .unwrap()
            .with_seed(5);
        let mut s = CorrelatedSketch::new(SumAggregate::new(), config).unwrap();
        let mut truth = 0.0;
        for i in 0..5_000u64 {
            let w = (i % 9 + 1) as i64;
            let y = (i * 13) % 1024;
            if y <= 600 {
                truth += w as f64;
            }
            s.update(i % 50, y, w).unwrap();
        }
        let est = s.query(600).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.2, "sum estimate {est} vs truth {truth}");
    }

    #[test]
    fn stats_reflect_structure() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(32));
        for i in 0..2_000u64 {
            s.insert(i % 100, i % 256).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.items_processed, 2_000);
        assert!(stats.singleton_buckets <= 32);
        assert!(stats.dyadic_buckets >= s.levels.len());
        assert!(stats.stored_tuples > 0);
        assert!(stats.space_bytes > 0);
        assert_eq!(s.stored_tuples(), stats.stored_tuples);
    }

    #[test]
    fn query_level_is_monotone_in_c() {
        let mut s = f2_sketch(0.25, 16383, AlphaPolicy::Fixed(16));
        for i in 0..20_000u64 {
            s.insert(i % 200, (i * 101) % 16384).unwrap();
        }
        let mut prev = 0u32;
        for c in (0..16384u64).step_by(1024) {
            let lvl = s.query_level(c).expect("answerable");
            assert!(lvl >= prev, "query level must not decrease with c");
            prev = lvl;
        }
    }

    #[test]
    fn clamps_threshold_to_domain() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
        for i in 0..500u64 {
            s.insert(i, i % 256).unwrap();
        }
        // c beyond the padded domain behaves like "the whole stream".
        assert_eq!(s.query(u64::MAX).unwrap(), s.query_all().unwrap());
    }
}
