//! The general correlated-aggregation framework: Algorithms 1–3 of the paper.
//!
//! A [`CorrelatedSketch`] maintains `ℓ_max + 1` levels:
//!
//! * **level 0** holds *singleton* buckets, one per distinct y value seen, each
//!   containing a summary of the items carrying exactly that y value;
//! * **level ℓ ≥ 1** holds buckets over *dyadic intervals* of the y domain,
//!   organised as a binary tree grown lazily from the root `[0, y_max]`. A
//!   bucket is updated while it is *open*; once its estimate reaches the
//!   level's threshold `2^{ℓ+1}` it is *closed* and subsequent items falling
//!   into its span are routed into its children (created on demand).
//!
//! Every level stores at most `α` buckets. On overflow, the bucket with the
//! largest left endpoint is discarded and the level's *eviction watermark*
//! `Y_ℓ` is lowered to that endpoint: the level can from then on only answer
//! queries with threshold `c < Y_ℓ`.
//!
//! A query for `f({x : y ≤ c})` picks the smallest level whose watermark is
//! still above `c`, composes the summaries of all its buckets whose span lies
//! entirely inside `[0, c]`, and returns the composed estimate (Algorithm 3).
//! The buckets that straddle `c` are exactly the ones whose omission the
//! paper's analysis charges against the level's bucket budget `α`.
//!
//! ## Hot-path engineering
//!
//! The insert path is the structure's dominant cost (every element touches
//! every level), so the levels are engineered around it:
//!
//! * each level stores its buckets in a **flat arena** (`Vec<Node>` indexed
//!   by `u32`, with a free list recycling evicted slots). The stored *leaves*
//!   of a level's dyadic tree tile the level's reachable y-domain
//!   `[0, Y_ℓ)`, so the root-to-leaf walk of the textbook formulation
//!   collapses to one predecessor lookup in a `lo → node` map, and a
//!   per-level **cursor** remembers the last touched leaf so repeated nearby
//!   y values skip even that;
//! * the bucket-closing check gates calls to the per-bucket `estimate` behind
//!   the aggregate's superadditive
//!   [`CorrelatedAggregate::weight_headroom`]: after each real estimate the
//!   bucket records how much weight it can still absorb before the estimate
//!   could reach the threshold, and inserts inside that window cost a single
//!   `f64` comparison (lossless for exactly-stored buckets and for `F_2`'s
//!   fast-AMS sketch; see the trait docs);
//! * evictions pick their victim from a `BTreeSet` ordered by
//!   `(left endpoint, depth)` — O(log α) — instead of a linear scan over the
//!   level's buckets;
//! * levels whose threshold the stream has not reached yet are **not
//!   materialized**: their roots have never closed, so each would hold an
//!   identical summary of the whole stream (all per-bucket sketches share
//!   hash seeds). One shared *tail store* stands in for all of them; when the
//!   stream's estimate crosses `2^{ℓ+1}` for the smallest unmaterialized
//!   level `ℓ`, that level is materialized with a closed root cloned from the
//!   tail. Insert cost is thus O(levels actually in use) ≈ O(log f(S)), not
//!   O(ℓ_max) = O(log f_max), and the shared summary is stored (and counted
//!   in the space figures) once instead of once per dormant level;
//! * query-time composition is memoized per `(threshold, generation)` in a
//!   small cache invalidated by any update, so repeated queries against a
//!   quiescent sketch cost one estimate instead of a full re-merge.

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::config::CorrelatedConfig;
use crate::dyadic::DyadicInterval;
use crate::error::{CoreError, Result};
use cora_sketch::SharedUpdate;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Shorthand for the prepared-update type of an aggregate's bucket sketch.
type PreparedOf<A> = <<A as CorrelatedAggregate>::Sketch as SharedUpdate>::Prepared;

/// Sentinel index for "no node" in a level's arena.
const NIL: u32 = u32::MAX;

/// Number of `(threshold, composed store)` pairs kept by the query cache.
const COMPOSE_CACHE_CAPACITY: usize = 16;

/// A bucket node in a level's arena.
#[derive(Debug, Clone)]
struct Node<A: CorrelatedAggregate> {
    interval: DyadicInterval,
    store: BucketStore<A>,
    closed: bool,
    /// Tombstone: the slot belonged to an evicted bucket and awaits reuse.
    evicted: bool,
    /// Weight the bucket can still absorb before its estimate could reach
    /// the level threshold ([`CorrelatedAggregate::weight_headroom`] at the
    /// last real check; 0 = "check on the next insert").
    headroom: f64,
    /// Total weight inserted into `store` since the last real check.
    pending_weight: f64,
}

impl<A: CorrelatedAggregate> Node<A> {
    fn fresh(interval: DyadicInterval) -> Self {
        Self {
            interval,
            store: BucketStore::new(),
            closed: false,
            evicted: false,
            headroom: 0.0,
            pending_weight: 0.0,
        }
    }
}

/// One level `ℓ ≥ 1` of the structure: a lazily-grown dyadic tree in a flat
/// arena, with the stored leaves indexed by left endpoint.
///
/// Invariant: the stored leaves tile the reachable y-domain `[0, Y_ℓ)`, so
/// the deepest stored bucket containing a reachable `y` — the bucket
/// Algorithm 2 routes the item to — is the unique leaf whose span covers `y`,
/// found by a predecessor lookup in `leaves`. (Evictions remove leaves from
/// the right and lower `Y_ℓ` to the victim's left endpoint, which keeps the
/// tiling intact; interior nodes whose children were all evicted are
/// unreachable, since the watermark already excludes their span.)
#[derive(Debug, Clone)]
struct Level<A: CorrelatedAggregate> {
    /// Level index `ℓ` (1-based; level 0 is the singleton level).
    index: u32,
    /// Closing threshold `2^{ℓ+1}`.
    threshold: f64,
    /// Node arena; evicted slots are tombstoned and recycled via `free`.
    nodes: Vec<Node<A>>,
    /// Recyclable (evicted) slots.
    free: Vec<u32>,
    /// Number of live (non-evicted) buckets.
    live: usize,
    /// Stored leaves keyed by left endpoint: the routing index.
    leaves: BTreeMap<u64, u32>,
    /// Eviction priority over live nodes, keyed `(lo, !len, index)`: the
    /// victim is the maximum — largest left endpoint first, deepest node
    /// first among equal endpoints — so victims are always leaves.
    order: BTreeSet<(u64, u64, u32)>,
    /// Eviction watermark `Y_ℓ`; `None` means `+∞` (nothing evicted yet).
    y_bound: Option<u64>,
    /// Leaf touched by the previous insert; checked before the predecessor
    /// lookup. `NIL` when invalid; any eviction invalidates it.
    cursor: u32,
}

impl<A: CorrelatedAggregate> Level<A> {
    fn new(index: u32, root: DyadicInterval) -> Self {
        let mut level = Self {
            index,
            threshold: 2f64.powi(index as i32 + 1),
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
            leaves: BTreeMap::new(),
            order: BTreeSet::new(),
            y_bound: None,
            cursor: NIL,
        };
        let root_idx = level.alloc(root);
        level.leaves.insert(root.lo, root_idx);
        level
    }

    /// Index of the root node (only valid right after `new`; used by the
    /// materialization path to seed the root store).
    fn root_index(&self) -> u32 {
        debug_assert_eq!(self.live, 1);
        *self.leaves.get(&0).expect("fresh level has its root stored")
    }

    /// True iff this level can still answer queries with threshold `c`.
    fn answers(&self, c: u64) -> bool {
        match self.y_bound {
            None => true,
            Some(y) => y > c,
        }
    }

    /// Eviction key: victim = maximum, i.e. largest `lo`, then smallest
    /// length (deepest node). The index disambiguates nothing (intervals are
    /// unique per level) but keeps the tuple self-describing.
    fn order_key(interval: DyadicInterval, idx: u32) -> (u64, u64, u32) {
        (interval.lo, u64::MAX - interval.len(), idx)
    }

    /// Allocate a fresh bucket node, recycling a tombstoned slot if possible.
    fn alloc(&mut self, interval: DyadicInterval) -> u32 {
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node::fresh(interval);
                slot
            }
            None => {
                self.nodes.push(Node::fresh(interval));
                (self.nodes.len() - 1) as u32
            }
        };
        self.order.insert(Self::order_key(interval, idx));
        self.live += 1;
        idx
    }

    /// Iterate over the live buckets of this level.
    fn live_nodes(&self) -> impl Iterator<Item = &Node<A>> {
        self.nodes.iter().filter(|n| !n.evicted)
    }

    /// Process one stream element on this level (Algorithm 2, lines 7–21).
    /// `prepared` carries the element's sketch coordinates, hashed once for
    /// the whole structure.
    fn update(
        &mut self,
        agg: &A,
        alpha: usize,
        x: u64,
        y: u64,
        weight: i64,
        prepared: &PreparedOf<A>,
    ) {
        if let Some(bound) = self.y_bound {
            if y >= bound {
                return;
            }
        }

        // Locate the stored leaf containing y: cursor hit or predecessor
        // lookup. (A live cursor always names a current leaf — splits go
        // through this path and evictions reset it.)
        let cur = match self.cursor {
            c if c != NIL && self.nodes[c as usize].interval.contains(y) => c,
            _ => {
                let Some((_, &leaf)) = self.leaves.range(..=y).next_back() else {
                    return; // y below the watermark yet no leaf: evicted root
                };
                leaf
            }
        };
        debug_assert!(self.nodes[cur as usize].interval.contains(y));

        let node = &mut self.nodes[cur as usize];
        if !node.closed {
            let was_exact = node.store.is_exact();
            node.store.update_prepared(agg, x, weight, prepared);
            node.pending_weight += weight as f64;
            if was_exact && !node.store.is_exact() {
                // The store just converted to its sketched representation,
                // whose estimate need not match the exact value the headroom
                // was computed from — force a fresh check below.
                node.headroom = 0.0;
            }
            // Gate the threshold check behind the aggregate's superadditive
            // weight headroom: while the weight added since the last real
            // estimate stays below it, the estimate provably cannot have
            // reached the threshold, so this insert costs one comparison.
            if !node.interval.is_unit() && node.pending_weight >= node.headroom {
                let estimate = node.store.estimate(agg);
                node.headroom = agg.weight_headroom(estimate, self.threshold);
                node.pending_weight = 0.0;
                if estimate >= self.threshold {
                    node.closed = true;
                }
            }
            self.cursor = cur;
        } else {
            // Closed leaf: create both children, which replace it in the leaf
            // tiling, and route the item to the one containing y. (A child is
            // only checked for closing when a later insert reaches it.)
            let (left_iv, right_iv) = self.nodes[cur as usize]
                .interval
                .children()
                .expect("closed buckets are never unit intervals");
            let left = self.alloc(left_iv);
            let right = self.alloc(right_iv);
            self.leaves.insert(left_iv.lo, left); // replaces the parent entry
            self.leaves.insert(right_iv.lo, right);
            let target = if left_iv.contains(y) { left } else { right };
            let child = &mut self.nodes[target as usize];
            let was_exact = child.store.is_exact();
            child.store.update_prepared(agg, x, weight, prepared);
            child.pending_weight += weight as f64;
            if was_exact && !child.store.is_exact() {
                child.headroom = 0.0; // re-check on the next direct insert
            }
            self.cursor = target;
        }

        if self.live > alpha {
            self.evict_overflow(alpha);
        }
    }

    /// Build the merge of two same-index levels (Property V): the node set is
    /// the union of both dyadic trees, per-interval stores are merged
    /// (summaries are composable because all bucket sketches share hash
    /// seeds), and bucket-closing is re-run on every merged node so the level
    /// respects its threshold again.
    ///
    /// Soundness: both inputs are ancestor-closed subtrees of the same dyadic
    /// tree, so their union is too, and below the merged watermark
    /// `min(Y_a, Y_b)` the union's leaves tile the reachable domain (for any
    /// reachable `y`, the deeper of the two input leaves containing `y` is
    /// the unique union leaf). Every item summarised by either input sits in
    /// exactly one merged node, so query-time composition counts it exactly
    /// once. Interior nodes inherit `closed` from either input; a leaf whose
    /// merged estimate now reaches the threshold is closed here rather than
    /// on its next insert. Nodes at or above the merged watermark can never
    /// be composed (queries require `c < Y_ℓ`) and are dropped to keep the α
    /// budget for reachable buckets.
    fn merge_of(a: &Self, b: &Self, agg: &A, alpha: usize) -> crate::error::Result<Self> {
        debug_assert_eq!(a.index, b.index);
        let y_bound = crate::dyadic::min_watermark(a.y_bound, b.y_bound);
        // Union the live nodes by interval, merging stores.
        let mut by_interval: BTreeMap<(u64, u64), (BucketStore<A>, bool)> = BTreeMap::new();
        for node in a.live_nodes().chain(b.live_nodes()) {
            if let Some(bound) = y_bound {
                if node.interval.lo >= bound {
                    continue; // unreachable past the merged watermark
                }
            }
            let key = (node.interval.lo, node.interval.len());
            match by_interval.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let (store, closed) = e.get_mut();
                    store.merge_from(agg, &node.store)?;
                    *closed |= node.closed;
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((node.store.clone(), node.closed));
                }
            }
        }
        let mut level = Self {
            index: a.index,
            threshold: a.threshold,
            nodes: Vec::with_capacity(by_interval.len()),
            free: Vec::new(),
            live: 0,
            leaves: BTreeMap::new(),
            order: BTreeSet::new(),
            y_bound,
            cursor: NIL,
        };
        let stored: BTreeSet<(u64, u64)> = by_interval.keys().copied().collect();
        for ((lo, len), (store, closed)) in by_interval {
            let interval = DyadicInterval { lo, hi: lo + (len - 1) };
            let idx = level.nodes.len() as u32;
            let mut node = Node::fresh(interval);
            // Re-run the closing check with fresh headroom: the merged
            // estimate may have crossed the threshold even if neither input
            // had (and unit intervals never close, as in `update`).
            let estimate = store.estimate(agg);
            node.closed = !interval.is_unit() && (closed || estimate >= level.threshold);
            node.headroom = agg.weight_headroom(estimate, level.threshold);
            node.pending_weight = 0.0;
            node.store = store;
            level.nodes.push(node);
            level.order.insert(Self::order_key(interval, idx));
            level.live += 1;
            // A union node routes updates (is a stored leaf) iff its left
            // child is absent from the union; at each left endpoint that
            // picks exactly the deepest stored interval.
            let is_leaf = interval.is_unit() || !stored.contains(&(lo, len / 2));
            if is_leaf {
                level.leaves.insert(lo, idx);
            }
        }
        level.evict_overflow(alpha);
        Ok(level)
    }

    /// A one-bucket stand-in for a dormant level: an *open* root holding a
    /// clone of the shared tail summary (which is exactly what the eager
    /// formulation's level would contain before its threshold is reached).
    fn from_tail(index: u32, root: DyadicInterval, tail: &BucketStore<A>) -> Self {
        let mut level = Self::new(index, root);
        let root_idx = level.root_index();
        level.nodes[root_idx as usize].store = tail.clone();
        level
    }

    /// Evict buckets with the largest left endpoint until the level fits its
    /// budget again, lowering the watermark. O(log α) per victim.
    fn evict_overflow(&mut self, alpha: usize) {
        while self.live > alpha {
            let key = *self
                .order
                .iter()
                .next_back()
                .expect("live > alpha >= 1, so non-empty");
            self.order.remove(&key);
            let (lo, _, idx) = key;
            let node = &mut self.nodes[idx as usize];
            node.evicted = true;
            node.closed = false;
            node.store = BucketStore::new(); // release the summary's heap now
            // The victim is the deepest node with the largest left endpoint,
            // so if it is in the leaf tiling its entry is its own; interior
            // victims (whose children went first) have no entry left.
            if self.leaves.get(&lo) == Some(&idx) {
                self.leaves.remove(&lo);
            }
            self.free.push(idx);
            self.live -= 1;
            self.cursor = NIL;
            self.y_bound = Some(match self.y_bound {
                None => lo,
                Some(b) => b.min(lo),
            });
        }
    }
}

/// Statistics describing the internal state of a [`CorrelatedSketch`]; used by
/// the experiment harness and exposed for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStats {
    /// Number of singleton buckets at level 0.
    pub singleton_buckets: usize,
    /// Number of dyadic buckets summed over all levels ≥ 1.
    pub dyadic_buckets: usize,
    /// Number of levels (≥ 1) that have evicted at least one bucket.
    pub levels_with_evictions: usize,
    /// Total stored tuples (counters + exact entries) across the structure —
    /// the unit reported in the paper's space figures.
    pub stored_tuples: usize,
    /// Approximate heap footprint in bytes.
    pub space_bytes: usize,
    /// Number of stream elements processed.
    pub items_processed: u64,
}

/// The shared summary standing in for every not-yet-materialized level: all
/// their roots are open (the stream's aggregate has not reached their
/// thresholds), so they would each hold exactly this store.
#[derive(Debug, Clone)]
struct TailState<A: CorrelatedAggregate> {
    store: BucketStore<A>,
    /// Weight added since the last real estimate (headroom gating, as in
    /// [`Node`], against the smallest unmaterialized level's threshold).
    pending_weight: f64,
    headroom: f64,
}

impl<A: CorrelatedAggregate> TailState<A> {
    fn new() -> Self {
        Self {
            store: BucketStore::new(),
            pending_weight: 0.0,
            headroom: 0.0,
        }
    }
}

/// Query-composition cache: composed stores per threshold, valid for a single
/// update generation (`items_processed`).
#[derive(Debug)]
struct ComposeCache<A: CorrelatedAggregate> {
    generation: u64,
    entries: Vec<(u64, BucketStore<A>)>,
}

impl<A: CorrelatedAggregate> Default for ComposeCache<A> {
    fn default() -> Self {
        Self {
            generation: 0,
            entries: Vec::new(),
        }
    }
}

/// The generic correlated-aggregation sketch (Algorithms 1–3).
#[derive(Debug)]
pub struct CorrelatedSketch<A: CorrelatedAggregate> {
    agg: A,
    config: CorrelatedConfig,
    alpha: usize,
    root: DyadicInterval,
    /// Level 0: singleton buckets keyed by exact y value.
    singletons: BTreeMap<u64, BucketStore<A>>,
    /// Eviction watermark `Y_0`; `None` = `+∞`.
    singleton_y_bound: Option<u64>,
    /// Materialized levels `1 ..= levels.len()`; levels above that are
    /// represented by `tail`.
    levels: Vec<Level<A>>,
    /// `levels[i].y_bound` (with `u64::MAX` for `+∞`), packed flat so the
    /// per-insert level loop can skip watermarked-out levels from one or two
    /// cache lines instead of touching every `Level` struct.
    level_bounds: Vec<u64>,
    /// Shared summary for the dormant levels `levels.len()+1 ..= max_level`.
    tail: TailState<A>,
    /// Largest level index `ℓ_max` the configuration calls for.
    max_level: u32,
    items_processed: u64,
    /// A pristine sketch used solely to compute shared update coordinates
    /// ([`SharedUpdate::prepare_into`] depends only on dimensions and seed).
    proto_sketch: A::Sketch,
    /// Reusable buffer for the shared coordinates of the element in flight.
    prepared_scratch: PreparedOf<A>,
    /// Memoized query compositions (interior mutability: queries take `&self`).
    compose_cache: Mutex<ComposeCache<A>>,
}

impl<A: CorrelatedAggregate> Clone for CorrelatedSketch<A> {
    fn clone(&self) -> Self {
        Self {
            agg: self.agg.clone(),
            config: self.config.clone(),
            alpha: self.alpha,
            root: self.root,
            singletons: self.singletons.clone(),
            singleton_y_bound: self.singleton_y_bound,
            levels: self.levels.clone(),
            level_bounds: self.level_bounds.clone(),
            tail: self.tail.clone(),
            max_level: self.max_level,
            items_processed: self.items_processed,
            proto_sketch: self.proto_sketch.clone(),
            prepared_scratch: PreparedOf::<A>::default(),
            // Caches don't travel: the clone starts with a cold cache.
            compose_cache: Mutex::new(ComposeCache::default()),
        }
    }
}

impl<A: CorrelatedAggregate> CorrelatedSketch<A> {
    /// Build a correlated sketch for aggregate `agg` under `config`.
    pub fn new(agg: A, config: CorrelatedConfig) -> Result<Self> {
        config.validate()?;
        let root = DyadicInterval::root(config.y_max);
        let logy = f64::from(config.log2_y());
        let alpha = config.alpha(agg.c1(logy), agg.c2(config.epsilon / 2.0));
        let max_level = config.num_levels() as u32 - 1;
        let proto_sketch = agg.new_sketch();
        Ok(Self {
            agg,
            config,
            alpha,
            root,
            singletons: BTreeMap::new(),
            singleton_y_bound: None,
            // Levels materialize lazily as the stream's aggregate grows past
            // their thresholds; an empty sketch has none.
            levels: Vec::new(),
            level_bounds: Vec::new(),
            tail: TailState::new(),
            max_level,
            items_processed: 0,
            proto_sketch,
            prepared_scratch: PreparedOf::<A>::default(),
            compose_cache: Mutex::new(ComposeCache::default()),
        })
    }

    /// The aggregate descriptor.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// The per-level bucket budget α in effect.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Number of stream elements processed so far.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Process a stream element `(x, y)` with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.update(x, y, 1)
    }

    /// Process a stream element `(x, y)` with a positive weight.
    ///
    /// Negative weights are rejected: the single-pass structure only supports
    /// the cash-register model (Section 4 of the paper proves that no small
    /// single-pass summary exists once deletions are allowed; use the
    /// multi-pass algorithm in `cora-stream` for that setting).
    pub fn update(&mut self, x: u64, y: u64, weight: i64) -> Result<()> {
        if weight < 0 {
            return Err(CoreError::InvalidParameter {
                name: "weight",
                detail: "single-pass correlated sketches require non-negative weights".into(),
            });
        }
        if y > self.config.padded_y_max() {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.config.padded_y_max(),
            });
        }
        if weight == 0 {
            return Ok(());
        }
        self.items_processed += 1;

        // Hash the element once; every sketched bucket it touches reuses the
        // coordinates (all bucket sketches share seeds by Property V).
        let mut prepared = std::mem::take(&mut self.prepared_scratch);
        self.proto_sketch.prepare_into(x, weight, &mut prepared);

        self.update_singletons(x, y, weight, &prepared);
        let (agg, alpha) = (&self.agg, self.alpha);
        for (level, bound) in self.levels.iter_mut().zip(self.level_bounds.iter_mut()) {
            // The packed watermark check skips evicted-out levels without
            // touching their (much larger) Level structs.
            if y >= *bound {
                continue;
            }
            level.update(agg, alpha, x, y, weight, &prepared);
            *bound = level.y_bound.unwrap_or(u64::MAX);
        }
        self.update_tail(x, weight, &prepared);
        self.prepared_scratch = prepared;
        Ok(())
    }

    /// Feed the shared tail store (standing in for every dormant level) and
    /// materialize levels whose threshold the stream's estimate has crossed.
    fn update_tail(&mut self, x: u64, weight: i64, prepared: &PreparedOf<A>) {
        if self.levels.len() as u32 >= self.max_level {
            return; // every level is materialized
        }
        let was_exact = self.tail.store.is_exact();
        self.tail.store.update_prepared(&self.agg, x, weight, prepared);
        self.tail.pending_weight += weight as f64;
        if was_exact && !self.tail.store.is_exact() {
            // Representation change: the sketched estimate need not match the
            // exact value the headroom was computed from.
            self.tail.headroom = 0.0;
        }
        if self.tail.pending_weight >= self.tail.headroom {
            self.materialize_crossed_levels();
        }
    }

    /// Re-estimate the tail and materialize every dormant level whose closing
    /// threshold `2^{ℓ+1}` the estimate has reached. A materialized level
    /// starts with a *closed* root holding a clone of the tail store —
    /// exactly the state the eager per-level loop would have produced, since
    /// an open root sees every stream element.
    fn materialize_crossed_levels(&mut self) {
        loop {
            let next_index = self.levels.len() as u32 + 1;
            if next_index > self.max_level {
                break;
            }
            let threshold = 2f64.powi(next_index as i32 + 1);
            let estimate = self.tail.store.estimate(&self.agg);
            if estimate >= threshold {
                let mut level = Level::new(next_index, self.root);
                let root_idx = level.root_index();
                let root_node = &mut level.nodes[root_idx as usize];
                root_node.store = self.tail.store.clone();
                root_node.closed = true;
                self.levels.push(level);
                self.level_bounds.push(u64::MAX);
                // The estimate may have crossed several thresholds at once.
                continue;
            }
            self.tail.headroom = self.agg.weight_headroom(estimate, threshold);
            self.tail.pending_weight = 0.0;
            break;
        }
    }

    /// Process a batch of unit-weight stream elements `(x, y)`.
    ///
    /// Equivalent to calling [`insert`](Self::insert) for each tuple in order,
    /// but amortizes the per-level bookkeeping: each level's arena is walked
    /// for the whole batch at once (level-major traversal), which keeps one
    /// level's nodes hot in cache instead of cycling through every level per
    /// tuple. Level states are independent of one another, so the level-major
    /// order produces exactly the same final structure as the tuple-major
    /// order.
    ///
    /// The batch is validated up front: if any `y` is out of range, an error
    /// is returned and **no** tuple of the batch is applied.
    pub fn update_batch(&mut self, tuples: &[(u64, u64)]) -> Result<()> {
        let y_max = self.config.padded_y_max();
        for &(_, y) in tuples {
            if y > y_max {
                return Err(CoreError::YOutOfRange { y, y_max });
            }
        }
        self.items_processed += tuples.len() as u64;
        // Hash every element of the batch once up front; the per-level loops
        // below reuse the coordinates.
        let prepared_batch: Vec<PreparedOf<A>> = tuples
            .iter()
            .map(|&(x, _)| {
                let mut p = PreparedOf::<A>::default();
                self.proto_sketch.prepare_into(x, 1, &mut p);
                p
            })
            .collect();
        for (&(x, y), prepared) in tuples.iter().zip(&prepared_batch) {
            self.update_singletons(x, y, 1, prepared);
        }
        let (agg, alpha) = (&self.agg, self.alpha);
        let existing = self.levels.len();
        for (level, bound) in self.levels.iter_mut().zip(self.level_bounds.iter_mut()) {
            for (&(x, y), prepared) in tuples.iter().zip(&prepared_batch) {
                if y >= *bound {
                    continue;
                }
                level.update(agg, alpha, x, y, 1, prepared);
                *bound = level.y_bound.unwrap_or(u64::MAX);
            }
        }
        // The tail is sequential: a level materialized at tuple i must still
        // receive tuples i+1.. through the normal level path. Record where
        // each new level came into existence, then replay the suffixes.
        let mut born_at: Vec<(usize, usize)> = Vec::new(); // (level slot, first unseen tuple)
        for (i, (&(x, _), prepared)) in tuples.iter().zip(&prepared_batch).enumerate() {
            let before = self.levels.len();
            self.update_tail(x, 1, prepared);
            for slot in before..self.levels.len() {
                born_at.push((slot, i + 1));
            }
        }
        let (agg, alpha) = (&self.agg, self.alpha);
        for (slot, from) in born_at {
            debug_assert!(slot >= existing);
            let level = &mut self.levels[slot];
            for (&(x, y), prepared) in tuples[from..].iter().zip(&prepared_batch[from..]) {
                level.update(agg, alpha, x, y, 1, prepared);
            }
            self.level_bounds[slot] = level.y_bound.unwrap_or(u64::MAX);
        }
        Ok(())
    }

    /// Merge `other` into `self` (Property V): the result summarises the
    /// concatenation of the two input streams.
    ///
    /// Requires the two sketches to share a configuration (accuracy
    /// parameters, y domain, level count, bucket policy, and master hash
    /// seed) — the same requirement Property V puts on per-bucket sketches,
    /// lifted to whole structures. Returns
    /// [`CoreError::IncompatibleMerge`](crate::error::CoreError) otherwise.
    ///
    /// The merge is carried out per layer:
    ///
    /// * **singleton level** — per-y stores are merged entry-wise, the
    ///   watermark drops to the smaller of the two, and the α budget is
    ///   re-enforced by evicting the largest y values;
    /// * **dyadic levels** — each pair of same-index levels is union-merged
    ///   (`Level::merge_of`); a level materialized in only one input is
    ///   merged against the other's shared tail summary (which is exactly
    ///   that input's dormant level);
    /// * **shared tail** — the tails are merged and the materialization
    ///   check re-run, since the combined stream's estimate may have crossed
    ///   thresholds neither input had reached.
    ///
    /// Per-bucket stores are linear summaries, so merged buckets carry the
    /// same relative error as sequentially-built ones. What composition *can*
    /// inflate is the boundary-bucket omission of Algorithm 3: a merged
    /// bucket straddling the query threshold holds up to one closed bucket's
    /// worth of weight **per input**, so merging `k` shards scales that error
    /// term by at most `k` — absorbed by the α budget's constant-factor
    /// headroom for small `k` (the sharded-ingest property tests pin this
    /// empirically).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.config != other.config {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "configurations differ: {:?} vs {:?}",
                    self.config, other.config
                ),
            });
        }
        debug_assert_eq!(self.alpha, other.alpha);

        // Level 0: entry-wise singleton merge, then re-enforce watermark + α.
        for (&y, store) in &other.singletons {
            self.singletons
                .entry(y)
                .or_default()
                .merge_from(&self.agg, store)?;
        }
        self.singleton_y_bound =
            crate::dyadic::min_watermark(self.singleton_y_bound, other.singleton_y_bound);
        if let Some(bound) = self.singleton_y_bound {
            // Entries at or past the watermark can never be composed.
            self.singletons.split_off(&bound);
        }
        self.enforce_singleton_budget();

        // Dyadic levels: pair up materialized levels; a level dormant in one
        // input is represented by that input's tail (open root over its whole
        // stream).
        let merged_len = self.levels.len().max(other.levels.len());
        let mut merged_levels = Vec::with_capacity(merged_len);
        for i in 0..merged_len {
            let index = i as u32 + 1;
            let level = match (self.levels.get(i), other.levels.get(i)) {
                (Some(a), Some(b)) => Level::merge_of(a, b, &self.agg, self.alpha)?,
                (Some(a), None) => {
                    let virt = Level::from_tail(index, self.root, &other.tail.store);
                    Level::merge_of(a, &virt, &self.agg, self.alpha)?
                }
                (None, Some(b)) => {
                    let virt = Level::from_tail(index, self.root, &self.tail.store);
                    Level::merge_of(&virt, b, &self.agg, self.alpha)?
                }
                (None, None) => unreachable!("i < max(levels)"),
            };
            merged_levels.push(level);
        }
        self.levels = merged_levels;
        self.level_bounds = self
            .levels
            .iter()
            .map(|l| l.y_bound.unwrap_or(u64::MAX))
            .collect();

        // Shared tail: only meaningful while dormant levels remain, in which
        // case both inputs still had live tails (levels.len() < max_level for
        // both). Force a fresh estimate and materialize crossed levels.
        if (self.levels.len() as u32) < self.max_level {
            self.tail.store.merge_from(&self.agg, &other.tail.store)?;
            self.tail.pending_weight = 0.0;
            self.tail.headroom = 0.0;
            self.materialize_crossed_levels();
        }

        self.items_processed += other.items_processed;
        // The merged structure invalidates any memoized composition.
        let mut cache = self
            .compose_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *cache = ComposeCache::default();
        Ok(())
    }

    /// Level 0 processing: singleton buckets keyed by exact y value.
    fn update_singletons(&mut self, x: u64, y: u64, weight: i64, prepared: &PreparedOf<A>) {
        if let Some(bound) = self.singleton_y_bound {
            if y >= bound {
                return;
            }
        }
        self.singletons
            .entry(y)
            .or_default()
            .update_prepared(&self.agg, x, weight, prepared);
        self.enforce_singleton_budget();
    }

    /// Enforce the α budget on level 0: discard the singletons with the
    /// largest y and lower the watermark until the level fits. Shared by the
    /// insert and merge paths so their eviction policies cannot diverge.
    fn enforce_singleton_budget(&mut self) {
        while self.singletons.len() > self.alpha {
            let (&largest_y, _) = self
                .singletons
                .iter()
                .next_back()
                .expect("len > alpha >= 1, so non-empty");
            self.singletons.remove(&largest_y);
            self.singleton_y_bound = Some(match self.singleton_y_bound {
                None => largest_y,
                Some(b) => b.min(largest_y),
            });
        }
    }

    /// Answer a correlated query: estimate `f({x : (x, y) ∈ S, y ≤ c})`
    /// (Algorithm 3).
    pub fn query(&self, c: u64) -> Result<f64> {
        self.with_composed(c, |store| store.estimate(&self.agg))
    }

    /// Compose the summaries Algorithm 3 would use for threshold `c` into a
    /// single store and return it. `query` is `estimate` over this store;
    /// richer queries (heavy hitters, Section 3.3) inspect the composed store
    /// directly.
    ///
    /// Compositions are memoized per threshold until the next update, so
    /// repeated queries against a quiescent sketch return a clone of the
    /// cached store instead of re-merging every bucket. Callers that only
    /// need to *read* the composed store should prefer
    /// [`Self::with_composed`], which skips the clone.
    pub fn compose_for_threshold(&self, c: u64) -> Result<BucketStore<A>> {
        self.with_composed(c, Clone::clone)
    }

    /// Run `f` against the composed store for threshold `c` without cloning
    /// it out of the memoization cache.
    ///
    /// This is the zero-copy read path behind [`Self::query`] and the
    /// extension queries (heavy hitters): `f` runs while the cache lock is
    /// held, so it must not call back into this sketch's query API.
    pub fn with_composed<R>(&self, c: u64, f: impl FnOnce(&BucketStore<A>) -> R) -> Result<R> {
        let c = c.min(self.config.padded_y_max());
        {
            let cache = self
                .compose_cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if cache.generation == self.items_processed {
                if let Some((_, store)) = cache.entries.iter().find(|(cc, _)| *cc == c) {
                    return Ok(f(store));
                }
            }
        }
        let store = self.compose_uncached(c)?;
        let mut cache = self
            .compose_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.generation != self.items_processed {
            cache.generation = self.items_processed;
            cache.entries.clear();
        }
        if cache.entries.len() >= COMPOSE_CACHE_CAPACITY {
            cache.entries.remove(0);
        }
        cache.entries.push((c, store));
        let (_, stored) = cache.entries.last().expect("just pushed");
        Ok(f(stored))
    }

    /// The uncached composition behind [`Self::compose_for_threshold`].
    fn compose_uncached(&self, c: u64) -> Result<BucketStore<A>> {
        // Level 0 answers if its watermark is above c.
        let level0_ok = match self.singleton_y_bound {
            None => true,
            Some(bound) => bound > c,
        };
        if level0_ok {
            let mut acc: BucketStore<A> = BucketStore::new();
            for (_, store) in self.singletons.range(..=c) {
                acc.merge_from(&self.agg, store)?;
            }
            return Ok(acc);
        }

        // Otherwise the smallest level whose watermark exceeds c.
        for level in &self.levels {
            if !level.answers(c) {
                continue;
            }
            let mut acc: BucketStore<A> = BucketStore::new();
            for node in level.live_nodes() {
                if node.interval.within_threshold(c) {
                    acc.merge_from(&self.agg, &node.store)?;
                }
            }
            return Ok(acc);
        }
        // Dormant levels never evict, so the smallest of them answers any c.
        // Their only bucket is the open root, which Algorithm 3 includes
        // exactly when its whole span lies inside [0, c].
        if (self.levels.len() as u32) < self.max_level {
            let mut acc: BucketStore<A> = BucketStore::new();
            if self.root.within_threshold(c) {
                acc.merge_from(&self.agg, &self.tail.store)?;
            }
            return Ok(acc);
        }
        Err(CoreError::QueryFailed { threshold: c })
    }

    /// The level Algorithm 3 would use for threshold `c` (0 = singleton level);
    /// `None` if the query would fail. Exposed for diagnostics and tests.
    pub fn query_level(&self, c: u64) -> Option<u32> {
        let c = c.min(self.config.padded_y_max());
        let level0_ok = match self.singleton_y_bound {
            None => true,
            Some(bound) => bound > c,
        };
        if level0_ok {
            return Some(0);
        }
        if let Some(level) = self.levels.iter().find(|l| l.answers(c)) {
            return Some(level.index);
        }
        // The smallest dormant level (never evicted) answers everything.
        if (self.levels.len() as u32) < self.max_level {
            return Some(self.levels.len() as u32 + 1);
        }
        None
    }

    /// Estimate the aggregate over the entire stream (threshold `y_max`).
    pub fn query_all(&self) -> Result<f64> {
        self.query(self.config.padded_y_max())
    }

    /// Internal statistics (space accounting, level usage).
    pub fn stats(&self) -> SketchStats {
        let singleton_tuples: usize = self.singletons.values().map(BucketStore::stored_tuples).sum();
        let singleton_bytes: usize = self.singletons.values().map(BucketStore::space_bytes).sum();
        let mut dyadic_buckets = 0usize;
        let mut dyadic_tuples = 0usize;
        let mut dyadic_bytes = 0usize;
        let mut levels_with_evictions = 0usize;
        for level in &self.levels {
            dyadic_buckets += level.live;
            for node in level.live_nodes() {
                dyadic_tuples += node.store.stored_tuples();
                dyadic_bytes += node.store.space_bytes();
            }
            if level.y_bound.is_some() {
                levels_with_evictions += 1;
            }
        }
        // Dormant levels share one open root bucket; the backing store is
        // physically stored (and therefore counted) once.
        let dormant = (self.max_level as usize).saturating_sub(self.levels.len());
        if dormant > 0 {
            dyadic_buckets += dormant;
            dyadic_tuples += self.tail.store.stored_tuples();
            dyadic_bytes += self.tail.store.space_bytes();
        }
        SketchStats {
            singleton_buckets: self.singletons.len(),
            dyadic_buckets,
            levels_with_evictions,
            stored_tuples: singleton_tuples + dyadic_tuples,
            space_bytes: singleton_bytes + dyadic_bytes,
            items_processed: self.items_processed,
        }
    }

    /// Total stored tuples — the paper's space unit.
    pub fn stored_tuples(&self) -> usize {
        self.stats().stored_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_sketch::StreamSketch as _;
    use crate::config::AlphaPolicy;
    use crate::f2::F2Aggregate;
    use crate::sum::{CountAggregate, SumAggregate};

    fn f2_sketch(epsilon: f64, y_max: u64, alpha: AlphaPolicy) -> CorrelatedSketch<F2Aggregate> {
        let config = CorrelatedConfig::new(epsilon, 0.1, y_max, 40)
            .unwrap()
            .with_alpha_policy(alpha)
            .with_seed(7);
        CorrelatedSketch::new(F2Aggregate::new(epsilon, 0.1, 7), config).unwrap()
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert_eq!(s.query(10).unwrap(), 0.0);
        assert_eq!(s.query_all().unwrap(), 0.0);
        assert_eq!(s.query_level(10), Some(0));
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn rejects_negative_weights_and_out_of_range_y() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert!(matches!(
            s.update(1, 5, -1),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            s.update(1, 5000, 1),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert!(s.update(1, 5, 0).is_ok());
        assert_eq!(s.items_processed(), 0);
    }

    #[test]
    fn small_stream_is_answered_exactly_from_singletons() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(128));
        // 50 distinct y values, each with a couple of items: level 0 holds all.
        for y in 0..50u64 {
            s.insert(y % 7, y).unwrap();
            s.insert(y % 5, y).unwrap();
        }
        assert_eq!(s.query_level(20), Some(0));
        // Exact correlated F2 for c = 20: items with y <= 20.
        let mut exact = cora_sketch::ExactFrequencies::new();
        for y in 0..=20u64 {
            exact.insert(y % 7);
            exact.insert(y % 5);
        }
        assert_eq!(s.query(20).unwrap(), exact.frequency_moment(2));
    }

    #[test]
    fn monotone_in_threshold() {
        let mut s = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(128));
        for i in 0..20_000u64 {
            s.insert(i % 500, i % 4096).unwrap();
        }
        let mut prev = 0.0;
        for c in (0..4096u64).step_by(256) {
            let est = s.query(c).unwrap();
            assert!(
                est >= prev * 0.8,
                "estimates should be (roughly) monotone in c: {prev} then {est}"
            );
            prev = est;
        }
    }

    #[test]
    fn accuracy_against_exact_correlated_f2() {
        let epsilon = 0.2;
        let y_max = 8191u64;
        let mut s = f2_sketch(epsilon, y_max, AlphaPolicy::default());
        let mut tuples: Vec<(u64, u64)> = Vec::new();
        // Zipf-ish x over 2000 ids, uniform y.
        let mut state = 12345u64;
        for i in 0..60_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (state >> 33) % 2000;
            let y = (state >> 17) % (y_max + 1);
            let x = x / ((i % 7) + 1); // mild skew
            tuples.push((x, y));
            s.insert(x, y).unwrap();
        }
        for &c in &[y_max / 16, y_max / 4, y_max / 2, y_max] {
            let mut exact = cora_sketch::ExactFrequencies::new();
            for &(x, y) in &tuples {
                if y <= c {
                    exact.insert(x);
                }
            }
            let truth = exact.frequency_moment(2);
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err < epsilon,
                "c = {c}: estimate {est}, truth {truth}, error {err} > {epsilon}"
            );
        }
    }

    #[test]
    fn eviction_moves_queries_to_higher_levels() {
        // Tiny alpha forces evictions; large thresholds must still be answerable.
        let mut s = f2_sketch(0.25, 65535, AlphaPolicy::Fixed(24));
        for i in 0..30_000u64 {
            s.insert(i % 300, (i * 37) % 65536).unwrap();
        }
        let stats = s.stats();
        assert!(stats.levels_with_evictions > 0, "expected evictions with alpha = 24");
        // Large thresholds are answered at some level > 0.
        let lvl = s.query_level(60_000).expect("query must still be answerable");
        assert!(lvl > 0);
        // And the answer is still reasonably accurate.
        let mut exact = cora_sketch::ExactFrequencies::new();
        for i in 0..30_000u64 {
            if (i * 37) % 65536 <= 60_000 {
                exact.insert(i % 300);
            }
        }
        let truth = exact.frequency_moment(2);
        let est = s.query(60_000).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.5, "error {err} too large even for a starved sketch");
    }

    #[test]
    fn query_failed_when_alpha_is_absurdly_small() {
        // With alpha = 4 and many distinct y values, every level eventually
        // evicts below small thresholds; a query for a tiny c can then fail
        // only if even level lmax evicted, which cannot happen (its root never
        // splits). So instead check the error path by querying below Y_0 but
        // verifying the structure falls back to a higher level rather than
        // failing. The FAIL branch is exercised directly on a doctored state
        // in `sum` tests.
        let mut s = f2_sketch(0.25, 1023, AlphaPolicy::Fixed(4));
        for i in 0..5_000u64 {
            s.insert(i % 17, i % 1024).unwrap();
        }
        assert!(s.query(512).is_ok());
    }

    #[test]
    fn sum_aggregate_is_exact_for_counts() {
        // The correlated count through the generic framework, compared against
        // a direct count. Count sketches are scalar counters, so the only
        // error source is boundary-bucket omission.
        let config = CorrelatedConfig::new(0.2, 0.1, 4095, 30)
            .unwrap()
            .with_alpha_policy(AlphaPolicy::default())
            .with_seed(3);
        let mut s = CorrelatedSketch::new(CountAggregate::new(), config).unwrap();
        let mut ys = Vec::new();
        let mut state = 99u64;
        for _ in 0..40_000u64 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let y = (state >> 20) % 4096;
            ys.push(y);
            s.insert(state % 1000, y).unwrap();
        }
        for &c in &[100u64, 1000, 2000, 4095] {
            let truth = ys.iter().filter(|&&y| y <= c).count() as f64;
            let est = s.query(c).unwrap();
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(err < 0.2, "count at c={c}: est {est}, truth {truth}");
        }
    }

    #[test]
    fn weighted_sum_aggregate_tracks_weights() {
        let config = CorrelatedConfig::new(0.2, 0.1, 1023, 40)
            .unwrap()
            .with_seed(5);
        let mut s = CorrelatedSketch::new(SumAggregate::new(), config).unwrap();
        let mut truth = 0.0;
        for i in 0..5_000u64 {
            let w = (i % 9 + 1) as i64;
            let y = (i * 13) % 1024;
            if y <= 600 {
                truth += w as f64;
            }
            s.update(i % 50, y, w).unwrap();
        }
        let est = s.query(600).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.2, "sum estimate {est} vs truth {truth}");
    }

    #[test]
    fn stats_reflect_structure() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(32));
        for i in 0..2_000u64 {
            s.insert(i % 100, i % 256).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.items_processed, 2_000);
        assert!(stats.singleton_buckets <= 32);
        assert!(stats.dyadic_buckets >= s.levels.len());
        assert!(stats.stored_tuples > 0);
        assert!(stats.space_bytes > 0);
        assert_eq!(s.stored_tuples(), stats.stored_tuples);
    }

    #[test]
    fn query_level_is_monotone_in_c() {
        let mut s = f2_sketch(0.25, 16383, AlphaPolicy::Fixed(16));
        for i in 0..20_000u64 {
            s.insert(i % 200, (i * 101) % 16384).unwrap();
        }
        let mut prev = 0u32;
        for c in (0..16384u64).step_by(1024) {
            let lvl = s.query_level(c).expect("answerable");
            assert!(lvl >= prev, "query level must not decrease with c");
            prev = lvl;
        }
    }

    #[test]
    fn clamps_threshold_to_domain() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
        for i in 0..500u64 {
            s.insert(i, i % 256).unwrap();
        }
        // c beyond the padded domain behaves like "the whole stream".
        assert_eq!(s.query(u64::MAX).unwrap(), s.query_all().unwrap());
    }

    #[test]
    fn update_batch_matches_scalar_inserts() {
        // The batch path must produce exactly the same structure and answers
        // as per-tuple inserts (level-major vs tuple-major traversal).
        let mut tuples: Vec<(u64, u64)> = Vec::new();
        let mut state = 7u64;
        for _ in 0..8_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            tuples.push(((state >> 33) % 400, (state >> 13) % 4096));
        }
        let mut scalar = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
        let mut batched = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
        for &(x, y) in &tuples {
            scalar.insert(x, y).unwrap();
        }
        for chunk in tuples.chunks(512) {
            batched.update_batch(chunk).unwrap();
        }
        assert_eq!(scalar.items_processed(), batched.items_processed());
        assert_eq!(scalar.stats(), batched.stats());
        for c in (0..4096u64).step_by(128) {
            assert_eq!(
                scalar.query(c).unwrap(),
                batched.query(c).unwrap(),
                "batch/scalar mismatch at c={c}"
            );
        }
    }

    #[test]
    fn update_batch_rejects_bad_y_atomically() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
        let batch = [(1u64, 3u64), (2, 5000), (3, 7)];
        assert!(matches!(
            s.update_batch(&batch),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert_eq!(s.items_processed(), 0);
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn compose_cache_is_invalidated_by_updates() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        for i in 0..3_000u64 {
            s.insert(i % 90, (i * 11) % 1024).unwrap();
        }
        let first = s.query(500).unwrap();
        // Cached repeat answers identically.
        assert_eq!(s.query(500).unwrap(), first);
        // An update must invalidate the cache: insert weight below the
        // threshold and require the answer to move.
        for _ in 0..50 {
            s.insert(12345, 100).unwrap();
        }
        let second = s.query(500).unwrap();
        assert!(
            second > first,
            "query after updates must reflect the new items: {first} -> {second}"
        );
        // compose_for_threshold returns an equivalent store from the cache.
        let store = s.compose_for_threshold(500).unwrap();
        assert_eq!(store.estimate(s.aggregate()), second);
    }

    #[test]
    fn merge_matches_sequential_on_singleton_level_streams() {
        // Small streams: everything stays in level 0 with exact stores, so
        // shard-then-merge must answer every threshold identically to the
        // sequential sketch.
        let mut seq = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
        let mut left = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
        let mut right = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
        for i in 0..200u64 {
            let (x, y) = (i % 23, (i * 37) % 180);
            seq.insert(x, y).unwrap();
            if i % 2 == 0 {
                left.insert(x, y).unwrap();
            } else {
                right.insert(x, y).unwrap();
            }
        }
        left.merge_from(&right).unwrap();
        assert_eq!(left.items_processed(), seq.items_processed());
        for c in (0..256u64).step_by(16) {
            assert_eq!(left.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn merge_is_accurate_across_materialized_levels() {
        // Large enough streams that dyadic levels materialize and buckets
        // close/split; the merged sketch must stay within the accuracy
        // envelope of the exact answer.
        let build = || f2_sketch(0.25, 8191, AlphaPolicy::default());
        let mut shards: Vec<_> = (0..4).map(|_| build()).collect();
        let mut tuples = Vec::new();
        let mut state = 99u64;
        for i in 0..40_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (state >> 33) % 700;
            let y = (state >> 15) % 8192;
            tuples.push((x, y));
            shards[(i % 4) as usize].insert(x, y).unwrap();
        }
        let mut merged = build();
        for shard in &shards {
            merged.merge_from(shard).unwrap();
        }
        assert_eq!(merged.items_processed(), 40_000);
        for &c in &[2048u64, 4096, 8191] {
            let mut exact = cora_sketch::ExactFrequencies::new();
            for &(x, y) in &tuples {
                if y <= c {
                    exact.insert(x);
                }
            }
            let truth = exact.frequency_moment(2);
            let est = merged.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            // 4-way composition can inflate the boundary-omission term; stay
            // within a couple of ε.
            assert!(err < 0.5, "c={c}: est {est}, truth {truth}, err {err}");
        }
    }

    #[test]
    fn merge_handles_dormant_vs_materialized_levels() {
        // One shard sees a large stream (levels materialized), the other a
        // tiny one (all levels dormant): the dormant side must fold into the
        // materialized side through the tail path, in both directions.
        let build = || f2_sketch(0.25, 4095, AlphaPolicy::Fixed(64));
        let mut big = build();
        let mut small = build();
        for i in 0..20_000u64 {
            big.insert(i % 300, (i * 13) % 4096).unwrap();
        }
        for i in 0..50u64 {
            small.insert(i % 7, (i * 11) % 4096).unwrap();
        }
        let mut a = big.clone();
        a.merge_from(&small).unwrap();
        let mut b = small.clone();
        b.merge_from(&big).unwrap();
        assert_eq!(a.items_processed(), 20_050);
        assert_eq!(b.items_processed(), 20_050);
        for &c in &[1024u64, 4095] {
            let qa = a.query(c).unwrap();
            let qb = b.query(c).unwrap();
            let base = big.query(c).unwrap();
            // Both merge orders summarise the same union stream; they must
            // agree with each other closely and exceed the big shard alone.
            let rel = (qa - qb).abs() / qa.max(1.0);
            assert!(rel < 0.25, "merge order disagreement at c={c}: {qa} vs {qb}");
            assert!(qa >= base * 0.95, "merged estimate lost mass: {qa} < {base}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_config_and_seed() {
        let a = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        // Different epsilon.
        let mut b = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert!(matches!(
            b.merge_from(&a),
            Err(CoreError::IncompatibleMerge { .. })
        ));
        // Different seed (same accuracy parameters).
        let config = CorrelatedConfig::new(0.3, 0.1, 1023, 40)
            .unwrap()
            .with_alpha_policy(AlphaPolicy::Fixed(64))
            .with_seed(8);
        let mut c = CorrelatedSketch::new(F2Aggregate::new(0.3, 0.1, 8), config).unwrap();
        assert!(matches!(
            c.merge_from(&a),
            Err(CoreError::IncompatibleMerge { .. })
        ));
        // Different y domain.
        let mut d = f2_sketch(0.3, 2047, AlphaPolicy::Fixed(64));
        assert!(matches!(
            d.merge_from(&a),
            Err(CoreError::IncompatibleMerge { .. })
        ));
    }

    #[test]
    fn merge_with_empty_sketch_is_identity() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        for i in 0..3_000u64 {
            s.insert(i % 90, (i * 11) % 1024).unwrap();
        }
        let empty = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        let before: Vec<f64> = (0..1024).step_by(64).map(|c| s.query(c).unwrap()).collect();
        s.merge_from(&empty).unwrap();
        let after: Vec<f64> = (0..1024).step_by(64).map(|c| s.query(c).unwrap()).collect();
        assert_eq!(before, after);
        assert_eq!(s.items_processed(), 3_000);
        // Empty absorbs non-empty too.
        let mut e = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        e.merge_from(&s).unwrap();
        assert_eq!(e.query(512).unwrap(), s.query(512).unwrap());
    }

    #[test]
    fn merged_sketch_keeps_accepting_inserts() {
        // The merged structure must remain a valid ingest target: tiling,
        // cursors and watermarks all need to survive the rebuild.
        let build = || f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
        let mut a = build();
        let mut b = build();
        let mut seq = build();
        let mut state = 5u64;
        let mut tuples = Vec::new();
        for _ in 0..12_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            tuples.push(((state >> 33) % 250, (state >> 13) % 4096));
        }
        for (i, &(x, y)) in tuples.iter().enumerate() {
            seq.insert(x, y).unwrap();
            if i < 8_000 {
                if i % 2 == 0 {
                    a.insert(x, y).unwrap();
                } else {
                    b.insert(x, y).unwrap();
                }
            }
        }
        a.merge_from(&b).unwrap();
        for &(x, y) in &tuples[8_000..] {
            a.insert(x, y).unwrap();
        }
        assert_eq!(a.items_processed(), seq.items_processed());
        for &c in &[512u64, 2048, 4095] {
            let qa = a.query(c).unwrap();
            let qs = seq.query(c).unwrap();
            let rel = (qa - qs).abs() / qs.max(1.0);
            assert!(rel < 0.35, "post-merge ingest diverged at c={c}: {qa} vs {qs}");
        }
    }

    #[test]
    fn clone_is_independent_and_equivalent() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        for i in 0..2_000u64 {
            s.insert(i % 70, (i * 19) % 1024).unwrap();
        }
        let snapshot = s.clone();
        assert_eq!(snapshot.query(700).unwrap(), s.query(700).unwrap());
        // Mutating the original must not affect the clone.
        for _ in 0..100 {
            s.insert(999, 10).unwrap();
        }
        assert!(snapshot.query(700).unwrap() < s.query(700).unwrap());
    }
}
