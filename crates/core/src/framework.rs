//! The general correlated-aggregation framework: Algorithms 1–3 of the paper.
//!
//! A [`CorrelatedSketch`] maintains `ℓ_max + 1` levels:
//!
//! * **level 0** holds *singleton* buckets, one per distinct y value seen, each
//!   containing a summary of the items carrying exactly that y value;
//! * **level ℓ ≥ 1** holds buckets over *dyadic intervals* of the y domain,
//!   organised as a binary tree grown lazily from the root `[0, y_max]`. A
//!   bucket is updated while it is *open*; once its estimate reaches the
//!   level's threshold `2^{ℓ+1}` it is *closed* and subsequent items falling
//!   into its span are routed into its children (created on demand).
//!
//! Every level stores at most `α` buckets. On overflow, the bucket with the
//! largest left endpoint is discarded and the level's *eviction watermark*
//! `Y_ℓ` is lowered to that endpoint: the level can from then on only answer
//! queries with threshold `c < Y_ℓ`.
//!
//! A query for `f({x : y ≤ c})` picks the smallest level whose watermark is
//! still above `c`, composes the summaries of all its buckets whose span lies
//! entirely inside `[0, c]`, and returns the composed estimate (Algorithm 3).
//! The buckets that straddle `c` are exactly the ones whose omission the
//! paper's analysis charges against the level's bucket budget `α`.
//!
//! This module is the thin **coordinator**: it owns the configuration, the
//! singleton level, and the update-generation counter, and delegates
//!
//! * all dyadic-level state and the insert hot path to the
//!   structure-of-arrays level engine in `crate::levels` (bucket arenas, leaf
//!   routing, headroom-gated closing, eviction, the shared dormant-level
//!   tail, and the flat-batch ingest path);
//! * query-time composition and its memoization to the unified query core in
//!   [`crate::compose`] (Algorithm 3's level selection and bucket
//!   composition, behind a generation-validated [`GenCache`]).

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::compose::{self, GenCache};
use crate::config::CorrelatedConfig;
use crate::dyadic::DyadicInterval;
use crate::error::{CoreError, Result};
use crate::levels::{BatchOf, LevelEngine, PreparedOf};
use crate::singleton::SingletonLevel;
use crate::snapshot::{self, SnapshotKind};
use cora_sketch::codec::{ByteReader, ByteWriter, CodecError, StateCodec};
use cora_sketch::SharedUpdate;
use std::sync::Mutex;

/// Statistics describing the internal state of a [`CorrelatedSketch`]; used by
/// the experiment harness and exposed for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchStats {
    /// Number of singleton buckets at level 0.
    pub singleton_buckets: usize,
    /// Number of dyadic buckets summed over all levels ≥ 1.
    pub dyadic_buckets: usize,
    /// Number of levels (≥ 1) that have evicted at least one bucket.
    pub levels_with_evictions: usize,
    /// Total stored tuples (counters + exact entries) across the structure —
    /// the unit reported in the paper's space figures.
    pub stored_tuples: usize,
    /// Approximate heap footprint in bytes.
    pub space_bytes: usize,
    /// Number of stream elements processed.
    pub items_processed: u64,
}

/// The generic correlated-aggregation sketch (Algorithms 1–3).
#[derive(Debug)]
pub struct CorrelatedSketch<A: CorrelatedAggregate> {
    agg: A,
    config: CorrelatedConfig,
    alpha: usize,
    /// Level 0: singleton buckets behind a flat fmix64 hash index keyed by
    /// exact y value (see `crate::singleton`).
    singletons: SingletonLevel<A>,
    /// All dyadic levels, the packed watermark array, and the shared tail.
    engine: LevelEngine<A>,
    items_processed: u64,
    /// A pristine sketch used solely to compute shared update coordinates
    /// ([`SharedUpdate::prepare_into`] depends only on dimensions and seed).
    proto_sketch: A::Sketch,
    /// Reusable buffer for the shared coordinates of the element in flight.
    prepared_scratch: PreparedOf<A>,
    /// Reusable buffers for the batch path: the `(item, weight)` view of the
    /// batch and the flat prepared coordinates.
    batch_items: Vec<(u64, i64)>,
    batch_scratch: BatchOf<A>,
    /// Memoized query compositions per `(generation, threshold)` (interior
    /// mutability: queries take `&self`).
    compose_cache: Mutex<GenCache<u64, u64, BucketStore<A>>>,
}

impl<A: CorrelatedAggregate> Clone for CorrelatedSketch<A> {
    fn clone(&self) -> Self {
        Self {
            agg: self.agg.clone(),
            config: self.config.clone(),
            alpha: self.alpha,
            singletons: self.singletons.clone(),
            engine: self.engine.clone(),
            items_processed: self.items_processed,
            proto_sketch: self.proto_sketch.clone(),
            prepared_scratch: PreparedOf::<A>::default(),
            batch_items: Vec::new(),
            batch_scratch: BatchOf::<A>::default(),
            // Caches don't travel: the clone starts with a cold cache.
            compose_cache: Mutex::new(GenCache::new(compose::COMPOSE_CACHE_CAPACITY)),
        }
    }
}

impl<A: CorrelatedAggregate> CorrelatedSketch<A> {
    /// Build a correlated sketch for aggregate `agg` under `config`.
    pub fn new(agg: A, config: CorrelatedConfig) -> Result<Self> {
        config.validate()?;
        let root = DyadicInterval::root(config.y_max);
        let logy = f64::from(config.log2_y());
        let alpha = config.alpha(agg.c1(logy), agg.c2(config.epsilon / 2.0));
        let max_level = config.num_levels() as u32 - 1;
        let proto_sketch = agg.new_sketch();
        Ok(Self {
            agg,
            config,
            alpha,
            singletons: SingletonLevel::new(),
            // Levels materialize lazily as the stream's aggregate grows past
            // their thresholds; an empty sketch has none.
            engine: LevelEngine::new(root, max_level),
            items_processed: 0,
            proto_sketch,
            prepared_scratch: PreparedOf::<A>::default(),
            batch_items: Vec::new(),
            batch_scratch: BatchOf::<A>::default(),
            compose_cache: Mutex::new(GenCache::new(compose::COMPOSE_CACHE_CAPACITY)),
        })
    }

    /// The aggregate descriptor.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// The per-level bucket budget α in effect.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Number of stream elements processed so far.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Process a stream element `(x, y)` with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.update(x, y, 1)
    }

    /// Process a stream element `(x, y)` with a positive weight.
    ///
    /// Negative weights are rejected: the single-pass structure only supports
    /// the cash-register model (Section 4 of the paper proves that no small
    /// single-pass summary exists once deletions are allowed; use the
    /// multi-pass algorithm in `cora-stream` for that setting).
    pub fn update(&mut self, x: u64, y: u64, weight: i64) -> Result<()> {
        if weight < 0 {
            return Err(CoreError::InvalidParameter {
                name: "weight",
                detail: "single-pass correlated sketches require non-negative weights".into(),
            });
        }
        if y > self.config.padded_y_max() {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.config.padded_y_max(),
            });
        }
        if weight == 0 {
            return Ok(());
        }
        self.items_processed += 1;

        // Hash the element once; every sketched bucket it touches reuses the
        // coordinates (all bucket sketches share seeds by Property V).
        let mut prepared = std::mem::take(&mut self.prepared_scratch);
        self.proto_sketch.prepare_into(x, weight, &mut prepared);

        self.update_singletons(x, y, weight, &prepared);
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.update(agg, alpha, x, y, weight, &prepared);
        self.prepared_scratch = prepared;
        Ok(())
    }

    /// Process a batch of unit-weight stream elements `(x, y)`.
    ///
    /// Equivalent to calling [`insert`](Self::insert) for each tuple in order,
    /// but amortizes the per-level bookkeeping: every element's sketch
    /// coordinates are hashed once up front into one flat allocation, each
    /// level's arena is walked for the whole batch at once (level-major
    /// traversal), and runs of consecutive tuples routed to the same bucket
    /// are applied through the sketch's contiguous batch layout (see
    /// `crate::levels`). Level states are independent of one another, so
    /// this produces exactly the same final structure as per-tuple inserts.
    ///
    /// The batch is validated up front: if any `y` is out of range, an error
    /// is returned and **no** tuple of the batch is applied.
    pub fn update_batch(&mut self, tuples: &[(u64, u64)]) -> Result<()> {
        let y_max = self.config.padded_y_max();
        for &(_, y) in tuples {
            if y > y_max {
                return Err(CoreError::YOutOfRange { y, y_max });
            }
        }
        self.items_processed += tuples.len() as u64;
        // Hash every element of the batch once up front, into the sketch's
        // flat structure-of-arrays coordinate layout.
        let mut items = std::mem::take(&mut self.batch_items);
        items.clear();
        items.extend(tuples.iter().map(|&(x, _)| (x, 1i64)));
        let mut batch = std::mem::take(&mut self.batch_scratch);
        self.proto_sketch.prepare_batch_into(&items, &mut batch);

        for i in 0..tuples.len() {
            self.update_singleton_from_batch(tuples, &batch, i);
        }
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.update_batch(agg, alpha, tuples, &batch);

        self.batch_items = items;
        self.batch_scratch = batch;
        Ok(())
    }

    /// Merge `other` into `self` (Property V): the result summarises the
    /// concatenation of the two input streams.
    ///
    /// Requires the two sketches to share a configuration (accuracy
    /// parameters, y domain, level count, bucket policy, and master hash
    /// seed) — the same requirement Property V puts on per-bucket sketches,
    /// lifted to whole structures. Returns
    /// [`CoreError::IncompatibleMerge`](crate::error::CoreError) otherwise.
    ///
    /// The merge is carried out per layer: singleton stores merge entry-wise
    /// (watermark lowered, α re-enforced), dyadic levels union-merge with
    /// bucket-closing re-run, and the shared tails merge with the
    /// materialization check re-run (see the level engine in `crate::levels`).
    ///
    /// Per-bucket stores are linear summaries, so merged buckets carry the
    /// same relative error as sequentially-built ones. What composition *can*
    /// inflate is the boundary-bucket omission of Algorithm 3: a merged
    /// bucket straddling the query threshold holds up to one closed bucket's
    /// worth of weight **per input**, so merging `k` shards scales that error
    /// term by at most `k` — absorbed by the α budget's constant-factor
    /// headroom for small `k` (the sharded-ingest property tests pin this
    /// empirically).
    pub fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.config != other.config {
            return Err(CoreError::IncompatibleMerge {
                detail: format!(
                    "configurations differ: {:?} vs {:?}",
                    self.config, other.config
                ),
            });
        }
        debug_assert_eq!(self.alpha, other.alpha);

        // Level 0: entry-wise singleton merge, then re-enforce watermark + α
        // (both inside the singleton level, shared with the insert path).
        self.singletons
            .merge_from(&self.agg, &other.singletons, self.alpha)?;

        // Dyadic levels + shared tail.
        let (agg, alpha) = (&self.agg, self.alpha);
        self.engine.merge_from(agg, alpha, &other.engine)?;

        self.items_processed += other.items_processed;
        // The merged structure invalidates any memoized composition.
        self.compose_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(())
    }

    /// Merge an ordered collection of same-configured sketches into one fresh
    /// composite — Property V applied left to right. This is the pane/shard
    /// composition primitive: the sharded ingest readers and the windowed
    /// pane rings in `cora-stream` both reduce their multi-part state to a
    /// single queryable structure through it.
    ///
    /// Every part must share `config` (including the seed) or the merge fails
    /// with [`CoreError::IncompatibleMerge`](crate::error::CoreError) and the
    /// partial composite is discarded.
    pub fn merge_all<'a>(
        agg: A,
        config: CorrelatedConfig,
        parts: impl IntoIterator<Item = &'a Self>,
    ) -> Result<Self>
    where
        A: 'a,
    {
        let mut composite = Self::new(agg, config)?;
        for part in parts {
            composite.merge_from(part)?;
        }
        Ok(composite)
    }

    /// Level 0 processing: singleton buckets keyed by exact y value, behind
    /// the flat hash index (one fmix64 lookup on the hot path).
    fn update_singletons(&mut self, x: u64, y: u64, weight: i64, prepared: &PreparedOf<A>) {
        if !self.singletons.admits(y) {
            return;
        }
        let slot = self.singletons.slot_of(y);
        self.singletons
            .store_mut(slot)
            .update_prepared(&self.agg, x, weight, prepared);
        self.singletons.enforce_budget(self.alpha);
    }

    /// Level 0 processing for tuple `i` of a prepared batch.
    fn update_singleton_from_batch(&mut self, tuples: &[(u64, u64)], batch: &BatchOf<A>, i: usize) {
        let (_, y) = tuples[i];
        if !self.singletons.admits(y) {
            return;
        }
        let slot = self.singletons.slot_of(y);
        self.singletons
            .store_mut(slot)
            .update_batch_range(&self.agg, tuples, batch, i..i + 1);
        self.singletons.enforce_budget(self.alpha);
    }

    /// Answer a correlated query: estimate `f({x : (x, y) ∈ S, y ≤ c})`
    /// (Algorithm 3).
    pub fn query(&self, c: u64) -> Result<f64> {
        self.with_composed(c, |store| store.estimate(&self.agg))
    }

    /// Compose the summaries Algorithm 3 would use for threshold `c` into a
    /// single store and return it. `query` is `estimate` over this store;
    /// richer queries (heavy hitters, Section 3.3) inspect the composed store
    /// directly.
    ///
    /// Compositions are memoized per threshold until the next update, so
    /// repeated queries against a quiescent sketch return a clone of the
    /// cached store instead of re-merging every bucket. Callers that only
    /// need to *read* the composed store should prefer
    /// [`Self::with_composed`], which skips the clone.
    pub fn compose_for_threshold(&self, c: u64) -> Result<BucketStore<A>> {
        self.with_composed(c, Clone::clone)
    }

    /// Run `f` against the composed store for threshold `c` without cloning
    /// it out of the memoization cache.
    ///
    /// This is the zero-copy read path behind [`Self::query`] and the
    /// extension queries (heavy hitters): `f` runs while the cache lock is
    /// held, so it must not call back into this sketch's query API.
    pub fn with_composed<R>(&self, c: u64, f: impl FnOnce(&BucketStore<A>) -> R) -> Result<R> {
        let c = c.min(self.config.padded_y_max());
        compose::cached_query(
            &self.compose_cache,
            self.items_processed,
            c,
            || compose::compose_for_threshold(&self.agg, &self.singletons, &self.engine, c),
            f,
        )
    }

    /// The level Algorithm 3 would use for threshold `c` (0 = singleton level);
    /// `None` if the query would fail. Exposed for diagnostics and tests.
    pub fn query_level(&self, c: u64) -> Option<u32> {
        let c = c.min(self.config.padded_y_max());
        compose::query_level(self.singletons.y_bound(), &self.engine, c)
    }

    /// Estimate the aggregate over the entire stream (threshold `y_max`).
    pub fn query_all(&self) -> Result<f64> {
        self.query(self.config.padded_y_max())
    }

    /// Internal statistics (space accounting, level usage).
    pub fn stats(&self) -> SketchStats {
        let singleton_tuples: usize = self
            .singletons
            .live_stores()
            .map(BucketStore::stored_tuples)
            .sum();
        let singleton_bytes: usize = self
            .singletons
            .live_stores()
            .map(BucketStore::space_bytes)
            .sum();
        let (dyadic_buckets, dyadic_tuples, dyadic_bytes, levels_with_evictions) =
            self.engine.space_accounting();
        SketchStats {
            singleton_buckets: self.singletons.len(),
            dyadic_buckets,
            levels_with_evictions,
            stored_tuples: singleton_tuples + dyadic_tuples,
            space_bytes: singleton_bytes + dyadic_bytes,
            items_processed: self.items_processed,
        }
    }

    /// Total stored tuples — the paper's space unit.
    pub fn stored_tuples(&self) -> usize {
        self.stats().stored_tuples
    }

    /// Assert the structure's invariants: the singleton level respects its
    /// budget and watermark, and every dyadic level passes the
    /// structure-of-arrays checks (leaf tiling, predecessor-index agreement,
    /// eviction-set consistency — see `Level::check_invariants` in
    /// `crate::levels`). Panics on violation. Compiled only under `cfg(test)`
    /// or the `invariant-checks` feature; property tests run it after merges.
    #[cfg(any(test, feature = "invariant-checks"))]
    pub fn check_invariants(&self) {
        self.singletons.check_invariants(self.alpha);
        self.engine.check_invariants();
    }
}

impl<A> CorrelatedSketch<A>
where
    A: CorrelatedAggregate,
    A::Sketch: StateCodec,
{
    /// Serialise the full sketch state into a versioned, checksummed snapshot
    /// frame (see [`crate::snapshot`] for the format). The frame embeds the
    /// configuration — seed included — so the restored sketch answers every
    /// query **bit-identically** and stays merge-compatible with live
    /// sketches built from the same configuration.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`Self::snapshot`], appending the frame to a caller-provided buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        self.encode_payload(&mut w);
        snapshot::seal_frame_into(SnapshotKind::Framework, w.as_bytes(), out);
    }

    /// Rebuild a sketch from [`Self::snapshot`] bytes.
    ///
    /// `agg` must be the same aggregate descriptor the snapshot was taken
    /// with (same accuracy parameters and seed — the decoded per-bucket
    /// sketch dimensions are verified against it, and the configuration in
    /// the frame header is validated before any state is interpreted).
    pub fn restore_from(agg: A, bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::Framework)?;
        let mut r = ByteReader::new(payload);
        let sketch = Self::decode_payload(agg, &mut r)?;
        r.expect_end().map_err(CoreError::from)?;
        Ok(sketch)
    }

    /// Fingerprint of the aggregate's per-bucket sketch family: the encoded
    /// state of a fresh, empty sketch covers its dimensions and seed, so two
    /// aggregates share a fingerprint iff their sketches are mergeable. This
    /// catches a wrong-seed restore even when every serialised bucket is
    /// still exact (no sketched store around to carry the seed itself).
    fn agg_fingerprint(agg: &A) -> u64 {
        let mut w = ByteWriter::new();
        agg.new_sketch().encode_state(&mut w);
        cora_sketch::codec::fnv1a64(w.as_bytes())
    }

    /// Encode the frame payload (configuration + aggregate fingerprint +
    /// level state). Crate-public so wrapper structures (heavy hitters) can
    /// embed a framework payload inside their own frames.
    pub(crate) fn encode_payload(&self, w: &mut ByteWriter) {
        snapshot::encode_config(&self.config, w);
        w.put_str(&self.agg.name());
        w.put_u64(Self::agg_fingerprint(&self.agg));
        w.put_u64(self.alpha as u64);
        w.put_u64(self.items_processed);
        self.singletons.encode_state(w);
        self.engine.encode_state(w);
    }

    /// Decode a payload written by [`Self::encode_payload`].
    pub(crate) fn decode_payload(agg: A, r: &mut ByteReader<'_>) -> Result<Self> {
        let config = snapshot::decode_config(r)?;
        let mut sketch = Self::new(agg, config)?;
        let corrupt = |detail: String| CoreError::from(CodecError::Corrupt(detail));
        let name = r.get_str().map_err(CoreError::from)?;
        if name != sketch.agg.name() {
            return Err(corrupt(format!(
                "snapshot is for aggregate {name:?}, restoring into {:?}",
                sketch.agg.name()
            )));
        }
        let fingerprint = r.get_u64().map_err(CoreError::from)?;
        if fingerprint != Self::agg_fingerprint(&sketch.agg) {
            return Err(corrupt(
                "aggregate mismatch: the snapshot's per-bucket sketch family \
                 (dimensions or seed) differs from the restoring aggregate's"
                    .into(),
            ));
        }
        let alpha = r.get_u64().map_err(CoreError::from)?;
        if alpha != sketch.alpha as u64 {
            return Err(corrupt(format!(
                "bucket budget differs: snapshot alpha {alpha}, derived {}",
                sketch.alpha
            )));
        }
        sketch.items_processed = r.get_u64().map_err(CoreError::from)?;
        sketch.singletons = SingletonLevel::decode_state(&sketch.agg, r)?;
        let root = DyadicInterval::root(sketch.config.y_max);
        let max_level = sketch.config.num_levels() as u32 - 1;
        sketch.engine = LevelEngine::decode_state(&sketch.agg, root, max_level, r)?;
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlphaPolicy;
    use crate::f2::F2Aggregate;

    fn f2_sketch(epsilon: f64, y_max: u64, alpha: AlphaPolicy) -> CorrelatedSketch<F2Aggregate> {
        let config = CorrelatedConfig::new(epsilon, 0.1, y_max, 40)
            .unwrap()
            .with_alpha_policy(alpha)
            .with_seed(7);
        CorrelatedSketch::new(F2Aggregate::new(epsilon, 0.1, 7), config).unwrap()
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert_eq!(s.query(10).unwrap(), 0.0);
        assert_eq!(s.query_all().unwrap(), 0.0);
        assert_eq!(s.query_level(10), Some(0));
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn rejects_negative_weights_and_out_of_range_y() {
        let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        assert!(matches!(
            s.update(1, 5, -1),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            s.update(1, 5000, 1),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert!(s.update(1, 5, 0).is_ok());
        assert_eq!(s.items_processed(), 0);
    }

    #[test]
    fn update_batch_rejects_bad_y_atomically() {
        let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
        let batch = [(1u64, 3u64), (2, 5000), (3, 7)];
        assert!(matches!(
            s.update_batch(&batch),
            Err(CoreError::YOutOfRange { .. })
        ));
        assert_eq!(s.items_processed(), 0);
        assert_eq!(s.stored_tuples(), 0);
    }

    #[test]
    fn compose_cache_is_invalidated_by_updates() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
        for i in 0..3_000u64 {
            s.insert(i % 90, (i * 11) % 1024).unwrap();
        }
        let first = s.query(500).unwrap();
        // Cached repeat answers identically.
        assert_eq!(s.query(500).unwrap(), first);
        // An update must invalidate the cache: insert weight below the
        // threshold and require the answer to move.
        for _ in 0..50 {
            s.insert(12345, 100).unwrap();
        }
        let second = s.query(500).unwrap();
        assert!(
            second > first,
            "query after updates must reflect the new items: {first} -> {second}"
        );
        // compose_for_threshold returns an equivalent store from the cache.
        let store = s.compose_for_threshold(500).unwrap();
        assert_eq!(store.estimate(s.aggregate()), second);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical_and_merge_compatible() {
        let mut s = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        for i in 0..12_000u64 {
            s.insert(i % 120, (i * 37) % 4096).unwrap();
        }
        let bytes = s.snapshot();
        let restored =
            CorrelatedSketch::restore_from(F2Aggregate::new(0.25, 0.1, 7), &bytes).unwrap();
        restored.check_invariants();
        assert_eq!(restored.items_processed(), s.items_processed());
        assert_eq!(restored.stats(), s.stats());
        for c in (0..=4096u64).step_by(128) {
            assert_eq!(restored.query(c).unwrap(), s.query(c).unwrap(), "c={c}");
            assert_eq!(restored.query_level(c), s.query_level(c), "c={c}");
        }
        // Restored sketches keep Property V: merging a live shard into the
        // restored sketch equals merging it into the original.
        let mut shard = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        for i in 0..3_000u64 {
            shard.insert(i % 60, (i * 11) % 4096).unwrap();
        }
        let mut a = s.clone();
        let mut b = restored;
        a.merge_from(&shard).unwrap();
        b.merge_from(&shard).unwrap();
        for c in (0..=4096u64).step_by(512) {
            assert_eq!(a.query(c).unwrap(), b.query(c).unwrap(), "c={c}");
        }
        // A second snapshot of identical state is identical bytes.
        assert_eq!(s.snapshot(), bytes);
    }

    #[test]
    fn snapshot_rejects_wrong_aggregate_and_corruption() {
        let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(16));
        for i in 0..2_000u64 {
            s.insert(i % 50, i % 1024).unwrap();
        }
        let bytes = s.snapshot();
        // Wrong seed: the per-bucket sketch dimensions check fires.
        assert!(matches!(
            CorrelatedSketch::restore_from(F2Aggregate::new(0.3, 0.1, 8), &bytes),
            Err(CoreError::Snapshot { .. })
        ));
        // Wrong accuracy: different sketch width.
        assert!(CorrelatedSketch::restore_from(F2Aggregate::new(0.1, 0.1, 7), &bytes).is_err());
        // Truncation and corruption.
        assert!(CorrelatedSketch::restore_from(
            F2Aggregate::new(0.3, 0.1, 7),
            &bytes[..bytes.len() - 9]
        )
        .is_err());
        let mut corrupt = bytes;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        assert!(matches!(
            CorrelatedSketch::restore_from(F2Aggregate::new(0.3, 0.1, 7), &corrupt),
            Err(CoreError::Snapshot { .. })
        ));
    }

    #[test]
    fn empty_sketch_snapshot_round_trips() {
        let s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
        let restored =
            CorrelatedSketch::restore_from(F2Aggregate::new(0.2, 0.1, 7), &s.snapshot()).unwrap();
        assert_eq!(restored.query(512).unwrap(), 0.0);
        assert_eq!(restored.items_processed(), 0);
    }

    #[test]
    fn insert_merge_and_batch_paths_preserve_invariants() {
        let mut a = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let mut b = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let mut batched = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(24));
        let tuples: Vec<(u64, u64)> = (0..8_000u64).map(|i| (i % 120, (i * 37) % 4096)).collect();
        for &(x, y) in &tuples {
            a.insert(x, y).unwrap();
            b.insert(y % 64, x % 4096).unwrap();
        }
        for chunk in tuples.chunks(512) {
            batched.update_batch(chunk).unwrap();
        }
        a.check_invariants();
        b.check_invariants();
        batched.check_invariants();
        a.merge_from(&b).unwrap();
        a.check_invariants();
    }
}
