//! Level 0 of the correlated structure: singleton buckets, one per distinct
//! y value.
//!
//! The insert hot path touches this level on **every** stream element, and
//! profiling (see ROADMAP.md) showed the former `BTreeMap<u64, BucketStore>`
//! lookup — a pointer-chasing ordered walk — was one of the two remaining
//! costs in the shallow 20k-tuple scalar bench. The level's access pattern is
//! extremely skewed toward *point* lookups by exact y value, so the storage
//! here is a flat fmix64-hashed index (`y → slot`) over a dense store pool:
//!
//! * `slot_of(y)` is one fmix64 hash and one open-addressing probe instead of
//!   an `O(log α)` ordered descent — the common case (a y value seen before)
//!   never touches an ordered structure at all;
//! * a side `BTreeSet` of the live y values serves the *ordered* needs —
//!   eviction victims (largest y first) and the query path's `y ≤ c` range —
//!   and is only updated when a y is seen for the first time or evicted,
//!   not on every insert the way the old map's lookup walk was.
//!
//! The eviction policy is byte-for-byte the old one: discard the largest
//! stored y and lower the watermark `Y_0` to it, so scalar, batch, merge, and
//! snapshot-restore paths all keep the structures they produced before this
//! index existed (pinned by the framework behaviour tests).

use crate::aggregate::{BucketStore, CorrelatedAggregate};
use crate::compose::min_watermark;
use crate::error::Result;
use crate::snapshot::{decode_store, encode_store};
use cora_hash::mix::Fmix64Build;
use cora_sketch::codec::{ByteReader, ByteWriter, CodecError, CodecResult, StateCodec};
use std::collections::{BTreeSet, HashMap};

/// The singleton level: a flat hash index `y → slot` over a dense pool of
/// per-y bucket stores, plus the level's eviction watermark `Y_0`.
#[derive(Debug, Clone)]
pub(crate) struct SingletonLevel<A: CorrelatedAggregate> {
    /// Live entries: exact y value → slot in `stores`.
    index: HashMap<u64, u32, Fmix64Build>,
    /// The live y values, ordered — touched only on first sight / eviction.
    ys: BTreeSet<u64>,
    /// Dense store pool; slots are recycled through `free`.
    stores: Vec<BucketStore<A>>,
    /// Recyclable slots of evicted entries.
    free: Vec<u32>,
    /// Eviction watermark `Y_0`; `None` = `+∞`.
    y_bound: Option<u64>,
}

impl<A: CorrelatedAggregate> SingletonLevel<A> {
    /// An empty level.
    pub(crate) fn new() -> Self {
        Self {
            index: HashMap::with_hasher(Fmix64Build),
            ys: BTreeSet::new(),
            stores: Vec::new(),
            free: Vec::new(),
            y_bound: None,
        }
    }

    /// Number of live singleton buckets.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Eviction watermark `Y_0` (`None` = `+∞`).
    pub(crate) fn y_bound(&self) -> Option<u64> {
        self.y_bound
    }

    /// True iff the level still accepts inserts for `y` (below the watermark).
    #[inline]
    pub(crate) fn admits(&self, y: u64) -> bool {
        match self.y_bound {
            None => true,
            Some(bound) => y < bound,
        }
    }

    /// The slot holding `y`'s bucket, allocating an empty one on first sight.
    #[inline]
    pub(crate) fn slot_of(&mut self, y: u64) -> u32 {
        if let Some(&slot) = self.index.get(&y) {
            return slot;
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.stores.push(BucketStore::new());
                (self.stores.len() - 1) as u32
            }
        };
        self.index.insert(y, slot);
        self.ys.insert(y);
        slot
    }

    /// Mutable access to the store in `slot` (a value returned by
    /// [`Self::slot_of`]).
    #[inline]
    pub(crate) fn store_mut(&mut self, slot: u32) -> &mut BucketStore<A> {
        &mut self.stores[slot as usize]
    }

    /// Enforce the α budget: discard the singletons with the largest y and
    /// lower the watermark until the level fits. Shared by the insert, merge,
    /// and restore paths so their eviction policies cannot diverge.
    pub(crate) fn enforce_budget(&mut self, alpha: usize) {
        while self.index.len() > alpha {
            let &largest_y = self
                .ys
                .iter()
                .next_back()
                .expect("len > alpha >= 1, so non-empty");
            self.remove_entry(largest_y);
            self.y_bound = Some(match self.y_bound {
                None => largest_y,
                Some(b) => b.min(largest_y),
            });
        }
    }

    /// Drop one live entry, recycling its slot.
    fn remove_entry(&mut self, y: u64) {
        self.ys.remove(&y);
        let slot = self.index.remove(&y).expect("entry is live");
        self.stores[slot as usize] = BucketStore::new();
        self.free.push(slot);
    }

    /// Remove every entry at or past `bound` (entries that can never be
    /// composed once the watermark dropped there).
    fn prune_from(&mut self, bound: u64) {
        let doomed: Vec<u64> = self.ys.range(bound..).copied().collect();
        for y in doomed {
            self.remove_entry(y);
        }
    }

    /// Merge another singleton level into this one: entry-wise store merges,
    /// the lower watermark, then α re-enforcement — the same sequence the
    /// old `BTreeMap` path used. Entries are visited in ascending y order so
    /// the merged structure is deterministic.
    pub(crate) fn merge_from(&mut self, agg: &A, other: &Self, alpha: usize) -> Result<()> {
        for (y, store) in other.sorted_entries() {
            let slot = self.slot_of(y);
            self.stores[slot as usize].merge_from(agg, store)?;
        }
        self.y_bound = min_watermark(self.y_bound, other.y_bound);
        if let Some(bound) = self.y_bound {
            self.prune_from(bound);
        }
        self.enforce_budget(alpha);
        Ok(())
    }

    /// The live `(y, store)` entries in ascending y order (query composition
    /// and snapshot encoding — both off the insert path).
    pub(crate) fn sorted_entries(&self) -> Vec<(u64, &BucketStore<A>)> {
        self.ys
            .iter()
            .map(|&y| (y, &self.stores[self.index[&y] as usize]))
            .collect()
    }

    /// The live entries with `y ≤ c`, in ascending y order (Algorithm 3's
    /// level-0 composition).
    pub(crate) fn sorted_upto(&self, c: u64) -> Vec<(u64, &BucketStore<A>)> {
        self.ys
            .range(..=c)
            .map(|&y| (y, &self.stores[self.index[&y] as usize]))
            .collect()
    }

    /// Iterate over the live stores in arbitrary order (space accounting).
    pub(crate) fn live_stores(&self) -> impl Iterator<Item = &BucketStore<A>> {
        self.index.values().map(|&slot| &self.stores[slot as usize])
    }

    /// Rebuild a level from `(y, store)` entries and a watermark (snapshot
    /// restore). Entries must be unique and strictly below the watermark.
    pub(crate) fn from_parts(
        entries: Vec<(u64, BucketStore<A>)>,
        y_bound: Option<u64>,
    ) -> Option<Self> {
        let mut level = Self::new();
        level.y_bound = y_bound;
        for (y, store) in entries {
            if !level.admits(y) || level.index.contains_key(&y) {
                return None;
            }
            let slot = level.slot_of(y);
            level.stores[slot as usize] = store;
        }
        Some(level)
    }

    /// Serialise the level (snapshot persistence): watermark plus the live
    /// entries in ascending y order, so equal states are equal bytes.
    pub(crate) fn encode_state(&self, w: &mut ByteWriter)
    where
        A::Sketch: StateCodec,
    {
        w.put_opt_u64(self.y_bound);
        let entries = self.sorted_entries();
        w.put_len(entries.len());
        for (y, store) in entries {
            w.put_u64(y);
            encode_store(store, w);
        }
    }

    /// Rebuild a level from [`Self::encode_state`] bytes.
    pub(crate) fn decode_state(agg: &A, r: &mut ByteReader<'_>) -> CodecResult<Self>
    where
        A::Sketch: StateCodec,
    {
        let y_bound = r.get_opt_u64()?;
        // Each entry is at least y (8) + store tag (1) + store state.
        let n = r.get_count(9)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((r.get_u64()?, decode_store(agg, r)?));
        }
        Self::from_parts(entries, y_bound).ok_or_else(|| {
            CodecError::Corrupt(
                "singleton level entries duplicate a y value or violate the watermark".into(),
            )
        })
    }

    /// Assert the level's structural invariants (test / `invariant-checks`
    /// builds only): budget respected, every entry below the watermark, and
    /// the free list exactly covering the slots the index does not.
    #[cfg(any(test, feature = "invariant-checks"))]
    pub(crate) fn check_invariants(&self, alpha: usize) {
        assert!(
            self.index.len() <= alpha,
            "singleton level exceeds its bucket budget"
        );
        let indexed: BTreeSet<u64> = self.index.keys().copied().collect();
        assert_eq!(indexed, self.ys, "ordered y set out of sync with the index");
        if let Some(bound) = self.y_bound {
            for &y in self.index.keys() {
                assert!(y < bound, "singleton stored at or past the watermark");
            }
        }
        let live: std::collections::BTreeSet<u32> = self.index.values().copied().collect();
        assert_eq!(live.len(), self.index.len(), "two y values share a slot");
        let free: std::collections::BTreeSet<u32> = self.free.iter().copied().collect();
        assert_eq!(free.len(), self.free.len(), "slot freed twice");
        assert!(live.is_disjoint(&free), "slot both live and free");
        assert_eq!(
            live.len() + free.len(),
            self.stores.len(),
            "store pool has unaccounted slots"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f2::F2Aggregate;

    fn agg() -> F2Aggregate {
        F2Aggregate::new(0.3, 0.1, 7)
    }

    fn insert(level: &mut SingletonLevel<F2Aggregate>, agg: &F2Aggregate, x: u64, y: u64, alpha: usize) {
        if !level.admits(y) {
            return;
        }
        let slot = level.slot_of(y);
        level.store_mut(slot).update(agg, x, 1);
        level.enforce_budget(alpha);
    }

    #[test]
    fn evicts_largest_y_and_lowers_watermark() {
        let agg = agg();
        let mut level = SingletonLevel::new();
        for y in [10u64, 30, 20, 40, 5] {
            insert(&mut level, &agg, y, y, 4);
        }
        // Inserting y=40 overflowed alpha=4: 40 itself is the largest.
        assert_eq!(level.len(), 4);
        assert_eq!(level.y_bound(), Some(40));
        assert!(!level.admits(40));
        assert!(level.admits(39));
        // Entries stay sorted and below the bound.
        let ys: Vec<u64> = level.sorted_entries().iter().map(|&(y, _)| y).collect();
        assert_eq!(ys, vec![5, 10, 20, 30]);
        level.check_invariants(4);
    }

    #[test]
    fn slot_reuse_recycles_evicted_slots() {
        let agg = agg();
        let mut level = SingletonLevel::new();
        for y in 0..20u64 {
            insert(&mut level, &agg, y, y, 8);
        }
        assert_eq!(level.len(), 8);
        assert!(level.stores.len() <= 20);
        let pool = level.stores.len();
        for y in 0..8u64 {
            insert(&mut level, &agg, 100 + y, y, 8);
        }
        assert_eq!(level.stores.len(), pool, "existing slots must be reused");
        level.check_invariants(8);
    }

    #[test]
    fn merge_unions_entries_and_takes_min_watermark() {
        let agg = agg();
        let mut a = SingletonLevel::new();
        let mut b = SingletonLevel::new();
        for y in 0..6u64 {
            insert(&mut a, &agg, y, y * 2, 64);
            insert(&mut b, &agg, y, y * 3, 64);
        }
        b.y_bound = Some(12);
        b.prune_from(12);
        a.merge_from(&agg, &b, 64).unwrap();
        assert_eq!(a.y_bound(), Some(12));
        let ys: Vec<u64> = a.sorted_entries().iter().map(|&(y, _)| y).collect();
        assert_eq!(ys, vec![0, 2, 3, 4, 6, 8, 9, 10]);
        // Shared y=0/6 merged entry-wise: stored tuples reflect both inputs.
        let total: usize = a.live_stores().map(BucketStore::stored_tuples).sum();
        assert!(total >= 8);
        a.check_invariants(64);
    }

    #[test]
    fn sorted_upto_filters_and_orders() {
        let agg = agg();
        let mut level = SingletonLevel::new();
        for y in [9u64, 1, 5, 7, 3] {
            insert(&mut level, &agg, y, y, 64);
        }
        let upto: Vec<u64> = level.sorted_upto(5).iter().map(|&(y, _)| y).collect();
        assert_eq!(upto, vec![1, 3, 5]);
    }

    #[test]
    fn from_parts_rejects_duplicates_and_watermark_violations() {
        let dup = vec![(1u64, BucketStore::<F2Aggregate>::new()), (1, BucketStore::new())];
        assert!(SingletonLevel::from_parts(dup, None).is_none());
        let past = vec![(5u64, BucketStore::<F2Aggregate>::new())];
        assert!(SingletonLevel::from_parts(past, Some(5)).is_none());
        let ok = vec![(4u64, BucketStore::<F2Aggregate>::new())];
        assert!(SingletonLevel::from_parts(ok, Some(5)).is_some());
    }
}
