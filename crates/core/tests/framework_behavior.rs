//! Behavioral tests of [`cora_core::CorrelatedSketch`] through its public
//! API: accuracy against exact recomputation, eviction/level fallback, the
//! batch-ingest equivalence, and the Property V merge paths. These lived in
//! `framework.rs` before the level engine split; they only exercise public
//! surface, so they run as integration tests against the real crate build.

use cora_core::{
    AlphaPolicy, CoreError, CorrelatedConfig, CorrelatedSketch, F2Aggregate,
};
use cora_core::sum::{CountAggregate, SumAggregate};
use cora_sketch::StreamSketch as _;

fn f2_sketch(epsilon: f64, y_max: u64, alpha: AlphaPolicy) -> CorrelatedSketch<F2Aggregate> {
    let config = CorrelatedConfig::new(epsilon, 0.1, y_max, 40)
        .unwrap()
        .with_alpha_policy(alpha)
        .with_seed(7);
    CorrelatedSketch::new(F2Aggregate::new(epsilon, 0.1, 7), config).unwrap()
}

#[test]
fn small_stream_is_answered_exactly_from_singletons() {
    let mut s = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(128));
    // 50 distinct y values, each with a couple of items: level 0 holds all.
    for y in 0..50u64 {
        s.insert(y % 7, y).unwrap();
        s.insert(y % 5, y).unwrap();
    }
    assert_eq!(s.query_level(20), Some(0));
    // Exact correlated F2 for c = 20: items with y <= 20.
    let mut exact = cora_sketch::ExactFrequencies::new();
    for y in 0..=20u64 {
        exact.insert(y % 7);
        exact.insert(y % 5);
    }
    assert_eq!(s.query(20).unwrap(), exact.frequency_moment(2));
}

#[test]
fn monotone_in_threshold() {
    let mut s = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(128));
    for i in 0..20_000u64 {
        s.insert(i % 500, i % 4096).unwrap();
    }
    let mut prev = 0.0;
    for c in (0..4096u64).step_by(256) {
        let est = s.query(c).unwrap();
        assert!(
            est >= prev * 0.8,
            "estimates should be (roughly) monotone in c: {prev} then {est}"
        );
        prev = est;
    }
}

#[test]
fn accuracy_against_exact_correlated_f2() {
    let epsilon = 0.2;
    let y_max = 8191u64;
    let mut s = f2_sketch(epsilon, y_max, AlphaPolicy::default());
    let mut tuples: Vec<(u64, u64)> = Vec::new();
    // Zipf-ish x over 2000 ids, uniform y.
    let mut state = 12345u64;
    for i in 0..60_000u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = (state >> 33) % 2000;
        let y = (state >> 17) % (y_max + 1);
        let x = x / ((i % 7) + 1); // mild skew
        tuples.push((x, y));
        s.insert(x, y).unwrap();
    }
    for &c in &[y_max / 16, y_max / 4, y_max / 2, y_max] {
        let mut exact = cora_sketch::ExactFrequencies::new();
        for &(x, y) in &tuples {
            if y <= c {
                exact.insert(x);
            }
        }
        let truth = exact.frequency_moment(2);
        let est = s.query(c).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(
            err < epsilon,
            "c = {c}: estimate {est}, truth {truth}, error {err} > {epsilon}"
        );
    }
}

#[test]
fn eviction_moves_queries_to_higher_levels() {
    // Tiny alpha forces evictions; large thresholds must still be answerable.
    let mut s = f2_sketch(0.25, 65535, AlphaPolicy::Fixed(24));
    for i in 0..30_000u64 {
        s.insert(i % 300, (i * 37) % 65536).unwrap();
    }
    let stats = s.stats();
    assert!(stats.levels_with_evictions > 0, "expected evictions with alpha = 24");
    // Large thresholds are answered at some level > 0.
    let lvl = s.query_level(60_000).expect("query must still be answerable");
    assert!(lvl > 0);
    // And the answer is still reasonably accurate.
    let mut exact = cora_sketch::ExactFrequencies::new();
    for i in 0..30_000u64 {
        if (i * 37) % 65536 <= 60_000 {
            exact.insert(i % 300);
        }
    }
    let truth = exact.frequency_moment(2);
    let est = s.query(60_000).unwrap();
    let err = (est - truth).abs() / truth;
    assert!(err < 0.5, "error {err} too large even for a starved sketch");
}

#[test]
fn query_survives_absurdly_small_alpha() {
    // With alpha = 4 and many distinct y values, every level eventually
    // evicts below small thresholds; the structure must fall back to a
    // higher level rather than failing.
    let mut s = f2_sketch(0.25, 1023, AlphaPolicy::Fixed(4));
    for i in 0..5_000u64 {
        s.insert(i % 17, i % 1024).unwrap();
    }
    assert!(s.query(512).is_ok());
}

#[test]
fn sum_aggregate_is_exact_for_counts() {
    // The correlated count through the generic framework, compared against
    // a direct count. Count sketches are scalar counters, so the only
    // error source is boundary-bucket omission.
    let config = CorrelatedConfig::new(0.2, 0.1, 4095, 30)
        .unwrap()
        .with_alpha_policy(AlphaPolicy::default())
        .with_seed(3);
    let mut s = CorrelatedSketch::new(CountAggregate::new(), config).unwrap();
    let mut ys = Vec::new();
    let mut state = 99u64;
    for _ in 0..40_000u64 {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let y = (state >> 20) % 4096;
        ys.push(y);
        s.insert(state % 1000, y).unwrap();
    }
    for &c in &[100u64, 1000, 2000, 4095] {
        let truth = ys.iter().filter(|&&y| y <= c).count() as f64;
        let est = s.query(c).unwrap();
        let err = (est - truth).abs() / truth.max(1.0);
        assert!(err < 0.2, "count at c={c}: est {est}, truth {truth}");
    }
}

#[test]
fn weighted_sum_aggregate_tracks_weights() {
    let config = CorrelatedConfig::new(0.2, 0.1, 1023, 40)
        .unwrap()
        .with_seed(5);
    let mut s = CorrelatedSketch::new(SumAggregate::new(), config).unwrap();
    let mut truth = 0.0;
    for i in 0..5_000u64 {
        let w = (i % 9 + 1) as i64;
        let y = (i * 13) % 1024;
        if y <= 600 {
            truth += w as f64;
        }
        s.update(i % 50, y, w).unwrap();
    }
    let est = s.query(600).unwrap();
    let err = (est - truth).abs() / truth;
    assert!(err < 0.2, "sum estimate {est} vs truth {truth}");
}

#[test]
fn stats_reflect_structure() {
    let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(32));
    for i in 0..2_000u64 {
        s.insert(i % 100, i % 256).unwrap();
    }
    let stats = s.stats();
    assert_eq!(stats.items_processed, 2_000);
    assert!(stats.singleton_buckets <= 32);
    assert!(stats.dyadic_buckets > 0);
    assert!(stats.stored_tuples > 0);
    assert!(stats.space_bytes > 0);
    assert_eq!(s.stored_tuples(), stats.stored_tuples);
}

#[test]
fn query_level_is_monotone_in_c() {
    let mut s = f2_sketch(0.25, 16383, AlphaPolicy::Fixed(16));
    for i in 0..20_000u64 {
        s.insert(i % 200, (i * 101) % 16384).unwrap();
    }
    let mut prev = 0u32;
    for c in (0..16384u64).step_by(1024) {
        let lvl = s.query_level(c).expect("answerable");
        assert!(lvl >= prev, "query level must not decrease with c");
        prev = lvl;
    }
}

#[test]
fn clamps_threshold_to_domain() {
    let mut s = f2_sketch(0.3, 255, AlphaPolicy::Fixed(64));
    for i in 0..500u64 {
        s.insert(i, i % 256).unwrap();
    }
    // c beyond the padded domain behaves like "the whole stream".
    assert_eq!(s.query(u64::MAX).unwrap(), s.query_all().unwrap());
}

#[test]
fn update_batch_matches_scalar_inserts() {
    // The batch path must produce exactly the same structure and answers
    // as per-tuple inserts (level-major, run-chunked traversal through the
    // SoA engine vs tuple-major scalar updates).
    let mut tuples: Vec<(u64, u64)> = Vec::new();
    let mut state = 7u64;
    for _ in 0..8_000u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        tuples.push(((state >> 33) % 400, (state >> 13) % 4096));
    }
    let mut scalar = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
    let mut batched = f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
    for &(x, y) in &tuples {
        scalar.insert(x, y).unwrap();
    }
    for chunk in tuples.chunks(512) {
        batched.update_batch(chunk).unwrap();
    }
    assert_eq!(scalar.items_processed(), batched.items_processed());
    assert_eq!(scalar.stats(), batched.stats());
    for c in (0..4096u64).step_by(128) {
        assert_eq!(
            scalar.query(c).unwrap(),
            batched.query(c).unwrap(),
            "batch/scalar mismatch at c={c}"
        );
    }
}

#[test]
fn update_batch_matches_scalar_on_low_entropy_streams() {
    // Long same-y runs exercise the run-chunked batch path (cursor hits,
    // headroom-bounded chunks) far harder than random tuples do.
    let mut tuples: Vec<(u64, u64)> = Vec::new();
    for block in 0..40u64 {
        for i in 0..200u64 {
            tuples.push((i % 13, (block * 17) % 512));
        }
    }
    let mut scalar = f2_sketch(0.3, 511, AlphaPolicy::Fixed(32));
    let mut batched = f2_sketch(0.3, 511, AlphaPolicy::Fixed(32));
    for &(x, y) in &tuples {
        scalar.insert(x, y).unwrap();
    }
    for chunk in tuples.chunks(1024) {
        batched.update_batch(chunk).unwrap();
    }
    assert_eq!(scalar.stats(), batched.stats());
    for c in (0..512u64).step_by(64) {
        assert_eq!(scalar.query(c).unwrap(), batched.query(c).unwrap(), "c={c}");
    }
}

#[test]
fn merge_matches_sequential_on_singleton_level_streams() {
    // Small streams: everything stays in level 0 with exact stores, so
    // shard-then-merge must answer every threshold identically to the
    // sequential sketch.
    let mut seq = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
    let mut left = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
    let mut right = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(256));
    for i in 0..200u64 {
        let (x, y) = (i % 23, (i * 37) % 180);
        seq.insert(x, y).unwrap();
        if i % 2 == 0 {
            left.insert(x, y).unwrap();
        } else {
            right.insert(x, y).unwrap();
        }
    }
    left.merge_from(&right).unwrap();
    assert_eq!(left.items_processed(), seq.items_processed());
    for c in (0..256u64).step_by(16) {
        assert_eq!(left.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
    }
}

#[test]
fn merge_is_accurate_across_materialized_levels() {
    // Large enough streams that dyadic levels materialize and buckets
    // close/split; the merged sketch must stay within the accuracy
    // envelope of the exact answer.
    let build = || f2_sketch(0.25, 8191, AlphaPolicy::default());
    let mut shards: Vec<_> = (0..4).map(|_| build()).collect();
    let mut tuples = Vec::new();
    let mut state = 99u64;
    for i in 0..40_000u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = (state >> 33) % 700;
        let y = (state >> 15) % 8192;
        tuples.push((x, y));
        shards[(i % 4) as usize].insert(x, y).unwrap();
    }
    let mut merged = build();
    for shard in &shards {
        merged.merge_from(shard).unwrap();
    }
    assert_eq!(merged.items_processed(), 40_000);
    for &c in &[2048u64, 4096, 8191] {
        let mut exact = cora_sketch::ExactFrequencies::new();
        for &(x, y) in &tuples {
            if y <= c {
                exact.insert(x);
            }
        }
        let truth = exact.frequency_moment(2);
        let est = merged.query(c).unwrap();
        let err = (est - truth).abs() / truth;
        // 4-way composition can inflate the boundary-omission term; stay
        // within a couple of ε.
        assert!(err < 0.5, "c={c}: est {est}, truth {truth}, err {err}");
    }
}

#[test]
fn merge_handles_dormant_vs_materialized_levels() {
    // One shard sees a large stream (levels materialized), the other a
    // tiny one (all levels dormant): the dormant side must fold into the
    // materialized side through the tail path, in both directions.
    let build = || f2_sketch(0.25, 4095, AlphaPolicy::Fixed(64));
    let mut big = build();
    let mut small = build();
    for i in 0..20_000u64 {
        big.insert(i % 300, (i * 13) % 4096).unwrap();
    }
    for i in 0..50u64 {
        small.insert(i % 7, (i * 11) % 4096).unwrap();
    }
    let mut a = big.clone();
    a.merge_from(&small).unwrap();
    let mut b = small.clone();
    b.merge_from(&big).unwrap();
    assert_eq!(a.items_processed(), 20_050);
    assert_eq!(b.items_processed(), 20_050);
    for &c in &[1024u64, 4095] {
        let qa = a.query(c).unwrap();
        let qb = b.query(c).unwrap();
        let base = big.query(c).unwrap();
        // Both merge orders summarise the same union stream; they must
        // agree with each other closely and exceed the big shard alone.
        let rel = (qa - qb).abs() / qa.max(1.0);
        assert!(rel < 0.25, "merge order disagreement at c={c}: {qa} vs {qb}");
        assert!(qa >= base * 0.95, "merged estimate lost mass: {qa} < {base}");
    }
}

#[test]
fn merge_rejects_mismatched_config_and_seed() {
    let a = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
    // Different epsilon.
    let mut b = f2_sketch(0.2, 1023, AlphaPolicy::Fixed(64));
    assert!(matches!(
        b.merge_from(&a),
        Err(CoreError::IncompatibleMerge { .. })
    ));
    // Different seed (same accuracy parameters).
    let config = CorrelatedConfig::new(0.3, 0.1, 1023, 40)
        .unwrap()
        .with_alpha_policy(AlphaPolicy::Fixed(64))
        .with_seed(8);
    let mut c = CorrelatedSketch::new(F2Aggregate::new(0.3, 0.1, 8), config).unwrap();
    assert!(matches!(
        c.merge_from(&a),
        Err(CoreError::IncompatibleMerge { .. })
    ));
    // Different y domain.
    let mut d = f2_sketch(0.3, 2047, AlphaPolicy::Fixed(64));
    assert!(matches!(
        d.merge_from(&a),
        Err(CoreError::IncompatibleMerge { .. })
    ));
}

#[test]
fn merge_with_empty_sketch_is_identity() {
    let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
    for i in 0..3_000u64 {
        s.insert(i % 90, (i * 11) % 1024).unwrap();
    }
    let empty = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
    let before: Vec<f64> = (0..1024).step_by(64).map(|c| s.query(c).unwrap()).collect();
    s.merge_from(&empty).unwrap();
    let after: Vec<f64> = (0..1024).step_by(64).map(|c| s.query(c).unwrap()).collect();
    assert_eq!(before, after);
    assert_eq!(s.items_processed(), 3_000);
    // Empty absorbs non-empty too.
    let mut e = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
    e.merge_from(&s).unwrap();
    assert_eq!(e.query(512).unwrap(), s.query(512).unwrap());
}

#[test]
fn merged_sketch_keeps_accepting_inserts() {
    // The merged structure must remain a valid ingest target: tiling,
    // cursors and watermarks all need to survive the rebuild.
    let build = || f2_sketch(0.25, 4095, AlphaPolicy::Fixed(48));
    let mut a = build();
    let mut b = build();
    let mut seq = build();
    let mut state = 5u64;
    let mut tuples = Vec::new();
    for _ in 0..12_000u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        tuples.push(((state >> 33) % 250, (state >> 13) % 4096));
    }
    for (i, &(x, y)) in tuples.iter().enumerate() {
        seq.insert(x, y).unwrap();
        if i < 8_000 {
            if i % 2 == 0 {
                a.insert(x, y).unwrap();
            } else {
                b.insert(x, y).unwrap();
            }
        }
    }
    a.merge_from(&b).unwrap();
    for &(x, y) in &tuples[8_000..] {
        a.insert(x, y).unwrap();
    }
    assert_eq!(a.items_processed(), seq.items_processed());
    for &c in &[512u64, 2048, 4095] {
        let qa = a.query(c).unwrap();
        let qs = seq.query(c).unwrap();
        let rel = (qa - qs).abs() / qs.max(1.0);
        assert!(rel < 0.35, "post-merge ingest diverged at c={c}: {qa} vs {qs}");
    }
}

#[test]
fn clone_is_independent_and_equivalent() {
    let mut s = f2_sketch(0.3, 1023, AlphaPolicy::Fixed(64));
    for i in 0..2_000u64 {
        s.insert(i % 70, (i * 19) % 1024).unwrap();
    }
    let snapshot = s.clone();
    assert_eq!(snapshot.query(700).unwrap(), s.query(700).unwrap());
    // Mutating the original must not affect the clone.
    for _ in 0..100 {
        s.insert(999, 10).unwrap();
    }
    assert!(snapshot.query(700).unwrap() < s.query(700).unwrap());
}
