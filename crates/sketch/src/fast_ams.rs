//! The "fast AMS" second-moment estimator (Thorup & Zhang, SODA 2004; also the
//! CountSketch-based F2 estimator of Charikar–Chen–Farach-Colton).
//!
//! This is the variant the paper's experiments use ("a variant of the
//! algorithm due to Alon et al., based on the idea of Thorup and Zhang. This
//! variant gives a better update time", Section 5.1): instead of touching
//! `O(1/ε²)` atoms per update, each row hashes the item to one of `width`
//! buckets and adds `sign(x) · weight` there — `O(1)` counter updates per row.
//! The per-row estimate is the sum of squared bucket counters; the final
//! estimate is the median over rows.
//!
//! Like the classic AMS sketch this is a linear sketch: it supports turnstile
//! (negative-weight) updates and merges by counter-wise addition.
//!
//! # Kernel layout
//!
//! The counters live in **one flat row-major `depth × width` lane**
//! (`lane[r * width + b]` is bucket `b` of row `r`) with a per-row `Σ c²`
//! sideband held exactly in `i128`. Row hash functions are stored as inline
//! fixed-arity coefficient arrays (`k = 2` bucket polynomial, `k = 4` sign
//! polynomial over GF(2^61 − 1)), copied verbatim out of
//! [`PolynomialHash`], so one `key mod 2^61−1` reduction is shared by all
//! `2 × depth` polynomial evaluations of an update instead of being redone
//! per hash call.
//!
//! Updates are split into a **hash phase** and an **apply phase**
//! (see [`SharedUpdate`]): `prepare_batch_into` computes every
//! `(row, bucket, signed delta)` coordinate of a batch in one pass and lays
//! them out row-major, and `apply_prepared_range` then walks one contiguous
//! coordinate slice per row against that row's contiguous lane segment in an
//! explicitly unrolled, bounds-check-free inner loop
//! (`apply_row_kernel`). The kernel is *scalar-exact*: coordinates are
//! applied in stream order, so duplicate buckets inside an unrolled quad see
//! each other's writes exactly as a one-at-a-time loop would, and the
//! resulting counters and sidebands are bit-identical to the per-tuple path
//! (pinned by the `kernel_equivalence` test suite).
//!
//! # The `simd` feature contract
//!
//! With the `simd` cargo feature enabled (and on `x86_64` with AVX2
//! available at runtime), the counter-wise **merge** addition uses
//! `core::arch` vector intrinsics. Only operations whose vector form is
//! bit-identical to the portable form are ever vectorized: element-wise
//! integer lane addition commutes with any execution order, and no
//! floating-point sum is ever reassociated. The portable path remains the
//! default and the two paths produce identical sketches on every input.
//!
//! # Adaptive depth trimming
//!
//! A sketch built with depth `d` can serve a caller whose failure budget δ
//! only needs `d' = O(log 1/δ) ≤ d` rows: [`FastAmsSketch::trim_to_delta`]
//! restricts the hot update/estimate loops to the first `d'` rows (the
//! remaining rows stay allocated but are provably all-zero). Trimming is a
//! construction-time choice — it must happen before the first update, and
//! merges require both sides to agree on the trim — so estimates remain
//! well-defined medians over rows that saw the whole stream.

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::estimator_util::{median_mut, repetitions_for_delta};
use crate::traits::{Estimate, MergeableSketch, SharedUpdate, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::{add_mod_m61, mul_mod_m61, PolynomialHash};
use cora_hash::MERSENNE_61;

/// The odd constant [`PolynomialHash`]'s `hash64` multiplies by to spread a
/// 61-bit field element over the full 64-bit range (kept identical here so
/// the inline evaluators reproduce `hash64` bit-for-bit).
const SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// One row's hash functions as inline fixed-arity coefficient arrays: the
/// degree-1 bucket polynomial and the degree-3 sign polynomial. 48 bytes,
/// `Copy`, no heap indirection on the hot path.
#[derive(Debug, Clone, Copy)]
struct RowHashes {
    /// Bucket polynomial coefficients `a_0, a_1` (2-wise independence).
    bucket: [u64; 2],
    /// Sign polynomial coefficients `a_0 .. a_3` (4-wise independence).
    sign: [u64; 4],
}

impl RowHashes {
    /// Derive the row's hash coefficients from its seed, through the same
    /// [`PolynomialHash`] constructor the scalar path always used — the
    /// coefficient *values* (and therefore every hash) are unchanged.
    fn new(seed: u64) -> Self {
        let bucket_hash = PolynomialHash::new(2, derive_seed(seed, 0xB));
        let sign_hash = PolynomialHash::new(4, derive_seed(seed, 0x5));
        let b = bucket_hash.coefficients();
        let s = sign_hash.coefficients();
        Self {
            bucket: [b[0], b[1]],
            sign: [s[0], s[1], s[2], s[3]],
        }
    }

    /// The row's bucket for a key already reduced into the field
    /// (`x = key mod 2^61−1`): Horner evaluation, 64-bit spread, Lemire
    /// range reduction — step for step what
    /// `PolynomialHash::hash_range(key, width)` computes.
    #[inline]
    fn bucket_of(&self, x: u64, width: u64) -> u32 {
        let acc = add_mod_m61(mul_mod_m61(self.bucket[1], x), self.bucket[0]);
        let h = acc.wrapping_mul(SPREAD);
        ((u128::from(h) * u128::from(width)) >> 64) as u32
    }

    /// The row's ±1 sign for a reduced key: bit 62 of the spread degree-3
    /// polynomial, as in the scalar path.
    #[inline]
    fn sign_of(&self, x: u64) -> i64 {
        let mut acc = self.sign[3];
        acc = add_mod_m61(mul_mod_m61(acc, x), self.sign[2]);
        acc = add_mod_m61(mul_mod_m61(acc, x), self.sign[1]);
        acc = add_mod_m61(mul_mod_m61(acc, x), self.sign[0]);
        if (acc.wrapping_mul(SPREAD) >> 62) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

/// Reduce an item key into GF(2^61 − 1) once; shared by every polynomial
/// evaluation of the update.
#[inline]
fn reduce_key(item: u64) -> u64 {
    item % MERSENNE_61
}

/// The scalar-exact apply kernel: add each `(bucket, delta)` coordinate pair
/// to the row's counter lane **in stream order**, carrying the running exact
/// `Σ c²` in a register. The loop is explicitly unrolled 4-wide with
/// unchecked lane accesses so the compiler keeps all four update chains in
/// flight without re-checking bounds per counter touch.
///
/// # Safety invariant (checked by the caller)
///
/// Every value in `buckets` is `< lane.len()`: the coordinates are produced
/// only by `prepare_batch_into`, whose Lemire reduction maps into
/// `[0, width)`, and `apply_prepared_range` asserts that the batch's
/// recorded width equals this sketch's width before any unchecked access.
#[inline]
fn apply_row_kernel(lane: &mut [i64], buckets: &[u32], deltas: &[i64], sumsq: &mut i128) {
    debug_assert_eq!(buckets.len(), deltas.len());
    debug_assert!(buckets.iter().all(|&b| (b as usize) < lane.len()));
    let mut acc = *sumsq;
    let n = buckets.len();
    let quads = n / 4;
    for q in 0..quads {
        let i = q * 4;
        // SAFETY: `i + 3 < n` by construction of `quads`, and every bucket is
        // `< lane.len()` per the documented invariant (asserted in debug
        // builds above). The four updates run strictly in order, so duplicate
        // buckets within a quad observe each other's writes exactly as the
        // scalar loop would — this is unrolling, not reordering.
        unsafe {
            let b0 = *buckets.get_unchecked(i) as usize;
            let d0 = *deltas.get_unchecked(i);
            let c0 = lane.get_unchecked_mut(b0);
            let o0 = *c0;
            *c0 = o0 + d0;
            acc += (2 * o0 as i128 + d0 as i128) * d0 as i128;

            let b1 = *buckets.get_unchecked(i + 1) as usize;
            let d1 = *deltas.get_unchecked(i + 1);
            let c1 = lane.get_unchecked_mut(b1);
            let o1 = *c1;
            *c1 = o1 + d1;
            acc += (2 * o1 as i128 + d1 as i128) * d1 as i128;

            let b2 = *buckets.get_unchecked(i + 2) as usize;
            let d2 = *deltas.get_unchecked(i + 2);
            let c2 = lane.get_unchecked_mut(b2);
            let o2 = *c2;
            *c2 = o2 + d2;
            acc += (2 * o2 as i128 + d2 as i128) * d2 as i128;

            let b3 = *buckets.get_unchecked(i + 3) as usize;
            let d3 = *deltas.get_unchecked(i + 3);
            let c3 = lane.get_unchecked_mut(b3);
            let o3 = *c3;
            *c3 = o3 + d3;
            acc += (2 * o3 as i128 + d3 as i128) * d3 as i128;
        }
    }
    for i in quads * 4..n {
        let b = buckets[i] as usize;
        let d = deltas[i];
        let old = lane[b];
        lane[b] = old + d;
        acc += (2 * old as i128 + d as i128) * d as i128;
    }
    *sumsq = acc;
}

/// Element-wise `dst[i] += src[i]` over two counter lane segments. Integer
/// addition is exact and element-independent, so the vector form (under the
/// `simd` feature) is bit-identical to the portable loop.
#[inline]
fn add_lanes(dst: &mut [i64], src: &[i64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked at runtime.
            unsafe { add_lanes_avx2(dst, src) };
            return;
        }
    }
    add_lanes_portable(dst, src);
}

#[inline]
fn add_lanes_portable(dst: &mut [i64], src: &[i64]) {
    for (c, &d) in dst.iter_mut().zip(src) {
        *c += d;
    }
}

/// AVX2 lane addition: four 64-bit counters per vector op. Wrapping on
/// overflow, matching the portable loop's release-mode semantics (counters
/// never approach `i64` range in any supported configuration).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn add_lanes_avx2(dst: &mut [i64], src: &[i64]) {
    use std::arch::x86_64::*;
    let n = dst.len().min(src.len());
    let quads = n / 4;
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    for q in 0..quads {
        let i = q * 4;
        // SAFETY: `i + 3 < n ≤ dst.len(), src.len()`; the loads/stores are
        // the explicitly unaligned variants.
        let a = _mm256_loadu_si256(dp.add(i) as *const __m256i);
        let b = _mm256_loadu_si256(sp.add(i) as *const __m256i);
        _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_add_epi64(a, b));
    }
    for i in quads * 4..n {
        *dst.get_unchecked_mut(i) = dst.get_unchecked(i).wrapping_add(*src.get_unchecked(i));
    }
}

/// Exact `Σ c²` of a counter lane segment, in `i128`. Integer addition is
/// associative and exact, so any evaluation order gives the same bits.
#[inline]
fn lane_sumsq(lane: &[i64]) -> i128 {
    lane.iter().map(|&c| (c as i128) * (c as i128)).sum()
}

/// Fast AMS / CountSketch-bucketed estimator for `F_2`.
#[derive(Debug, Clone)]
pub struct FastAmsSketch {
    /// `depth × width` counters, row-major: `lane[r * width + b]`.
    lane: Vec<i64>,
    /// Per-row `Σ c²` sideband, maintained on every update so the per-row
    /// `F_2` estimate is O(1) instead of O(width). Kept in `i128` so the
    /// running value is *exact* (each counter fits in `i64`, so `c²` fits in
    /// `i128` with enormous headroom) — the estimate is bit-for-bit the true
    /// sum of squares, with none of the rounding a recomputed `f64` sum
    /// would have.
    sumsq: Vec<i128>,
    /// Per-row hash coefficients, index-aligned with the lane's rows.
    hashes: Vec<RowHashes>,
    width: usize,
    /// Rows the hot update/estimate loops touch (`≤ depth`); rows past this
    /// are provably all-zero. See the module docs on depth trimming.
    active: usize,
    seed: u64,
}

impl FastAmsSketch {
    /// Build a sketch achieving relative error `epsilon` with failure
    /// probability `delta`.
    ///
    /// The width is `⌈6/ε²⌉` buckets per row and the depth `O(log 1/δ)` rows,
    /// the standard parameterisation for the Thorup–Zhang estimator.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        let width = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(2);
        let depth = repetitions_for_delta(delta);
        Ok(Self::with_dimensions(width, depth, seed))
    }

    /// Build a sketch with explicit dimensions.
    pub fn with_dimensions(width: usize, depth: usize, seed: u64) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        let hashes = (0..depth)
            .map(|r| RowHashes::new(derive_seed(seed, r as u64)))
            .collect();
        Self {
            lane: vec![0; width * depth],
            sumsq: vec![0; depth],
            hashes,
            width,
            active: depth,
            seed,
        }
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.sumsq.len()
    }

    /// Seed used to derive the hash functions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rows the update/estimate hot loops touch (`≤ depth`); equals the
    /// depth unless the sketch was trimmed.
    pub fn active_rows(&self) -> usize {
        self.active
    }

    /// Restrict the hot loops to the first `O(log 1/δ)` rows needed for
    /// failure probability `delta`, if that is fewer than the sketch's
    /// depth. Returns the resulting active row count.
    ///
    /// Must be called before the first update (the skipped rows would
    /// otherwise have missed part of the stream and poison the median);
    /// trimming a non-empty sketch is rejected. Merges and prepared-batch
    /// application require both sides to agree on the trim.
    pub fn trim_to_delta(&mut self, delta: f64) -> Result<usize> {
        check_delta(delta)?;
        if !self.is_empty() {
            return Err(SketchError::InvalidParameter {
                name: "delta",
                detail: "depth can only be trimmed on an empty sketch".into(),
            });
        }
        self.active = repetitions_for_delta(delta).min(self.depth());
        Ok(self.active)
    }

    /// CountSketch-style point estimate of the signed frequency of `item`
    /// (median over rows). Exposed because the correlated heavy-hitters
    /// structure reuses the same counters for both `F_2` estimation and
    /// per-item frequency estimation, exactly as described in Section 3.3.
    pub fn frequency_estimate(&self, item: u64) -> f64 {
        // Small stack buffer: this sits on the heavy-hitters query path,
        // which probes every candidate — no per-call allocation.
        const STACK: usize = 32;
        let x = reduce_key(item);
        let w = self.width as u64;
        let point = |r: usize, h: &RowHashes| {
            let b = h.bucket_of(x, w) as usize;
            (h.sign_of(x) * self.lane[r * self.width + b]) as f64
        };
        let n = self.active;
        if n <= STACK {
            let mut buf = [0.0f64; STACK];
            for (r, (slot, h)) in buf[..n].iter_mut().zip(&self.hashes[..n]).enumerate() {
                *slot = point(r, h);
            }
            median_mut(&mut buf[..n]).unwrap_or(0.0)
        } else {
            let mut per_row: Vec<f64> = self.hashes[..n]
                .iter()
                .enumerate()
                .map(|(r, h)| point(r, h))
                .collect();
            median_mut(&mut per_row).unwrap_or(0.0)
        }
    }

    /// True iff no update has ever been applied (all counters zero).
    pub fn is_empty(&self) -> bool {
        // sumsq = Σ c² is zero exactly when every counter in the row is zero.
        self.sumsq.iter().all(|&s| s == 0)
    }

    /// Snapshot hook: the raw counter lane of each row, in row order.
    pub(crate) fn row_counters(&self) -> impl Iterator<Item = &[i64]> {
        self.lane.chunks_exact(self.width)
    }

    /// Snapshot hook: overwrite every row's counters (`None` = all-zero row)
    /// and rebuild the incremental sums of squares. `rows` must match the
    /// sketch's depth and width (the codec validates both before calling).
    pub(crate) fn load_row_counters(&mut self, rows: &[Option<Vec<i64>>]) {
        debug_assert_eq!(rows.len(), self.depth());
        for (r, loaded) in rows.iter().enumerate() {
            let row = &mut self.lane[r * self.width..(r + 1) * self.width];
            match loaded {
                None => {
                    row.fill(0);
                    self.sumsq[r] = 0;
                }
                Some(counters) => {
                    row.copy_from_slice(counters);
                    self.sumsq[r] = lane_sumsq(row);
                }
            }
        }
    }
}

impl StreamSketch for FastAmsSketch {
    #[inline]
    fn update(&mut self, item: u64, weight: i64) {
        let x = reduce_key(item);
        let w = self.width as u64;
        for (r, h) in self.hashes[..self.active].iter().enumerate() {
            let b = h.bucket_of(x, w) as usize;
            let delta = h.sign_of(x) * weight;
            let slot = &mut self.lane[r * self.width + b];
            let old = *slot;
            *slot = old + delta;
            // (c + d)² − c² = (2c + d)·d, evaluated in i128 so it is exact.
            self.sumsq[r] += (2 * old as i128 + delta as i128) * delta as i128;
        }
    }
}

/// A real-weighted combination of same-seeded [`FastAmsSketch`] counter
/// states: `Σ_p g_p · C_p`, with `g_p ∈ ℝ` supplied per input.
///
/// AMS/CountSketch is a *linear* sketch, so scaling every counter of a sketch
/// of stream `S` by `g` yields exactly the sketch of `S` with all frequencies
/// scaled by `g`. The accumulator exploits this for **time-decayed** `F_2`:
/// each time pane's sketch is folded in with its decay weight `g_p = λ^age`,
/// and [`estimate`](Self::estimate) then returns the fast-AMS estimate
/// (median over rows of `Σ c²`) of the decayed frequency vector
/// `f_decayed(x) = Σ_p g_p · f_p(x)` — no per-item enumeration needed.
///
/// The accumulator mirrors the sketch's flat row-major lane: a fold reads
/// each non-empty source row as one contiguous `&[i64]` slice against the
/// matching contiguous `&mut [f64]` segment, and items hash through the same
/// inline row coefficients the sketch itself uses.
///
/// Exact frequency vectors can be folded in too
/// ([`add_item`](Self::add_item) hashes them through the same rows), so the
/// hybrid exact/sketched bucket stores of `cora-core` combine seamlessly.
#[derive(Debug, Clone)]
pub struct DecayedF2Accumulator {
    /// `depth × width` scaled counters, row-major.
    counters: Vec<f64>,
    width: usize,
    depth: usize,
    /// Rows the estimate medians over (the proto sketch's active rows).
    active: usize,
    seed: u64,
    /// Same-seeded inline hash rows used to place exact items.
    hashes: Vec<RowHashes>,
}

impl DecayedF2Accumulator {
    /// An all-zero accumulator compatible with sketches shaped like `proto`
    /// (same width, depth, and seed).
    pub fn new(proto: &FastAmsSketch) -> Self {
        Self {
            counters: vec![0.0; proto.width() * proto.depth()],
            width: proto.width(),
            depth: proto.depth(),
            active: proto.active_rows(),
            seed: proto.seed(),
            hashes: proto.hashes.clone(),
        }
    }

    /// Fold `scale ×` the counters of `sketch` into the accumulator.
    /// The sketch must share the accumulator's dimensions and seed.
    pub fn add_sketch(&mut self, sketch: &FastAmsSketch, scale: f64) -> Result<()> {
        if sketch.width() != self.width
            || sketch.depth() != self.depth
            || sketch.seed() != self.seed
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "decayed accumulator is {}x{} seed {:#x}, sketch is {}x{} seed {:#x}",
                    self.depth,
                    self.width,
                    self.seed,
                    sketch.depth(),
                    sketch.width(),
                    sketch.seed()
                ),
            });
        }
        if scale == 0.0 {
            return Ok(());
        }
        for (r, &rowsq) in sketch.sumsq.iter().enumerate() {
            if rowsq == 0 {
                continue;
            }
            let base = r * self.width;
            let src = &sketch.lane[base..base + self.width];
            for (slot, &c) in self.counters[base..base + self.width].iter_mut().zip(src) {
                *slot += scale * c as f64;
            }
        }
        Ok(())
    }

    /// Fold one exactly-stored item with real weight `scale × frequency` into
    /// the accumulator, using the same hash rows a sketch update would.
    pub fn add_item(&mut self, item: u64, weight: f64) {
        if weight == 0.0 {
            return;
        }
        let x = reduce_key(item);
        let w = self.width as u64;
        for (r, h) in self.hashes.iter().enumerate() {
            let b = h.bucket_of(x, w) as usize;
            self.counters[r * self.width + b] += h.sign_of(x) as f64 * weight;
        }
    }

    /// The fast-AMS `F_2` estimate of the accumulated (decayed) frequency
    /// vector: the median over rows of the sum of squared scaled counters.
    pub fn estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = (0..self.active)
            .map(|r| {
                self.counters[r * self.width..(r + 1) * self.width]
                    .iter()
                    .map(|&c| c * c)
                    .sum()
            })
            .collect();
        median_mut(&mut per_row).unwrap_or(0.0)
    }
}

/// Precomputed per-row coordinates of one fast-AMS update: `(bucket, signed
/// delta)` for each active row. See [`SharedUpdate`].
#[derive(Debug, Clone, Default)]
pub struct FastAmsPrepared {
    rows: Vec<(u32, i64)>,
}

/// Precomputed coordinates for a whole batch of fast-AMS updates, laid out
/// **row-major** in two flat arrays: the entry for tuple `i` in row `r` lives
/// at index `r * len + i`. Applying a contiguous tuple range to a sketch
/// therefore walks one contiguous coordinate slice per row against that
/// row's contiguous lane segment.
///
/// The batch records the `width` and row count it was prepared with; the
/// apply path checks them against the target sketch before entering the
/// bounds-check-free kernel (every bucket value is `< width` by
/// construction).
#[derive(Debug, Clone, Default)]
pub struct FastAmsBatch {
    buckets: Vec<u32>,
    deltas: Vec<i64>,
    /// Number of tuples in the batch (the row stride).
    len: usize,
    /// Rows prepared (the preparing sketch's active row count).
    rows: usize,
    /// Width the buckets were reduced into.
    width: u32,
}

impl SharedUpdate for FastAmsSketch {
    type Prepared = FastAmsPrepared;
    type PreparedBatch = FastAmsBatch;

    fn prepare_into(&self, item: u64, weight: i64, out: &mut FastAmsPrepared) {
        let x = reduce_key(item);
        let w = self.width as u64;
        out.rows.clear();
        out.rows.extend(
            self.hashes[..self.active]
                .iter()
                .map(|h| (h.bucket_of(x, w), h.sign_of(x) * weight)),
        );
    }

    fn apply_prepared(&mut self, prepared: &FastAmsPrepared) {
        debug_assert_eq!(prepared.rows.len(), self.active);
        for (r, &(b, delta)) in prepared.rows.iter().enumerate() {
            let slot = &mut self.lane[r * self.width + b as usize];
            let old = *slot;
            *slot = old + delta;
            self.sumsq[r] += (2 * old as i128 + delta as i128) * delta as i128;
        }
    }

    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut FastAmsBatch) {
        let n = items.len();
        let rows = self.active;
        out.len = n;
        out.rows = rows;
        out.width = self.width as u32;
        out.buckets.clear();
        out.deltas.clear();
        out.buckets.resize(rows * n, 0);
        out.deltas.resize(rows * n, 0);
        let w = self.width as u64;
        let hashes = &self.hashes[..rows];
        for (i, &(item, weight)) in items.iter().enumerate() {
            let x = reduce_key(item);
            for (r, h) in hashes.iter().enumerate() {
                out.buckets[r * n + i] = h.bucket_of(x, w);
                out.deltas[r * n + i] = h.sign_of(x) * weight;
            }
        }
    }

    fn apply_prepared_range(&mut self, batch: &FastAmsBatch, range: std::ops::Range<usize>) {
        if range.start >= range.end {
            return;
        }
        assert!(range.end <= batch.len, "prepared-batch range out of bounds");
        // Hard check, not debug: the kernel's unchecked lane indexing is
        // sound only for buckets reduced into *this* sketch's width.
        assert_eq!(
            batch.width as usize, self.width,
            "prepared batch width does not match sketch width"
        );
        debug_assert_eq!(batch.rows, self.active);
        for r in 0..batch.rows {
            let base = r * batch.len;
            let lane = &mut self.lane[r * self.width..(r + 1) * self.width];
            apply_row_kernel(
                lane,
                &batch.buckets[base + range.start..base + range.end],
                &batch.deltas[base + range.start..base + range.end],
                &mut self.sumsq[r],
            );
        }
    }
}

impl Estimate for FastAmsSketch {
    fn estimate(&self) -> f64 {
        // The per-row sums of squares are maintained incrementally, so this is
        // O(depth). A stack buffer keeps the common small-depth case (the
        // correlated framework checks bucket estimates on every insert)
        // allocation-free.
        const STACK: usize = 32;
        let n = self.active;
        if n <= STACK {
            let mut buf = [0.0f64; STACK];
            for (slot, &s) in buf[..n].iter_mut().zip(&self.sumsq[..n]) {
                *slot = s as f64;
            }
            median_mut(&mut buf[..n]).unwrap_or(0.0)
        } else {
            let mut per_row: Vec<f64> = self.sumsq[..n].iter().map(|&s| s as f64).collect();
            median_mut(&mut per_row).unwrap_or(0.0)
        }
    }
}

impl MergeableSketch for FastAmsSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.width != other.width
            || self.depth() != other.depth()
            || self.seed != other.seed
            || self.active != other.active
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "FastAMS dims/seed/trim mismatch: ({}x{}, {:#x}, {} active) vs ({}x{}, {:#x}, {} active)",
                    self.depth(),
                    self.width,
                    self.seed,
                    self.active,
                    other.depth(),
                    other.width,
                    other.seed,
                    other.active
                ),
            });
        }
        for r in 0..self.depth() {
            // Empty rows contribute nothing; skipping them makes merging a
            // sparse shard (the common case when composing per-bucket
            // sketches at query time) O(1) per row instead of O(width).
            if other.sumsq[r] == 0 {
                continue;
            }
            let base = r * self.width;
            let src = &other.lane[base..base + self.width];
            let dst = &mut self.lane[base..base + self.width];
            if self.sumsq[r] == 0 {
                dst.copy_from_slice(src);
                self.sumsq[r] = other.sumsq[r];
                continue;
            }
            add_lanes(dst, src);
            // Rebuild from the merged counters (which were all touched
            // anyway); exact integer sums are order-independent.
            self.sumsq[r] = lane_sumsq(&self.lane[base..base + self.width]);
        }
        Ok(())
    }
}

impl SpaceUsage for FastAmsSketch {
    fn stored_tuples(&self) -> usize {
        self.lane.len()
    }

    fn space_bytes(&self) -> usize {
        self.stored_tuples() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    fn exact_f2(freqs: &[(u64, i64)]) -> f64 {
        freqs.iter().map(|&(_, f)| (f as f64) * (f as f64)).sum()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FastAmsSketch::new(0.0, 0.1, 1).is_err());
        assert!(FastAmsSketch::new(0.2, 1.0, 1).is_err());
    }

    #[test]
    fn sizes_follow_epsilon_and_delta() {
        let s = FastAmsSketch::new(0.1, 0.05, 1).unwrap();
        assert_eq!(s.width(), 600);
        let s2 = FastAmsSketch::new(0.2, 0.05, 1).unwrap();
        assert_eq!(s2.width(), 150);
        assert!(FastAmsSketch::new(0.2, 0.001, 1).unwrap().depth() > s2.depth() / 2);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = FastAmsSketch::with_dimensions(64, 5, 3);
        assert_eq!(s.estimate(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn inline_hashes_match_polynomial_hash() {
        // The copied-out coefficient arrays must reproduce PolynomialHash's
        // hash_range and sign bit exactly, key for key.
        use cora_hash::traits::HashFunction64;
        for seed in [0u64, 3, 17, 0xDEAD_BEEF] {
            let h = RowHashes::new(seed);
            let bucket_hash = PolynomialHash::new(2, derive_seed(seed, 0xB));
            let sign_hash = PolynomialHash::new(4, derive_seed(seed, 0x5));
            for key in (0..2000u64).chain([u64::MAX, MERSENNE_61, MERSENNE_61 + 1]) {
                let x = reduce_key(key);
                assert_eq!(
                    h.bucket_of(x, 200) as u64,
                    bucket_hash.hash_range(key, 200),
                    "bucket mismatch at key {key}"
                );
                let expected_sign = if (sign_hash.hash64(key) >> 62) & 1 == 1 { 1 } else { -1 };
                assert_eq!(h.sign_of(x), expected_sign, "sign mismatch at key {key}");
            }
        }
    }

    #[test]
    fn estimate_accuracy_uniform() {
        let mut s = FastAmsSketch::new(0.15, 0.05, 21).unwrap();
        let freqs: Vec<(u64, i64)> = (0..500u64).map(|x| (x, 20)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let err = relative_error(s.estimate(), exact_f2(&freqs));
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn estimate_accuracy_skewed() {
        let mut s = FastAmsSketch::new(0.15, 0.05, 22).unwrap();
        let freqs: Vec<(u64, i64)> =
            (0..300u64).map(|x| (x, (3000 / (x + 1)) as i64)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let err = relative_error(s.estimate(), exact_f2(&freqs));
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn turnstile_cancellation() {
        let mut s = FastAmsSketch::with_dimensions(128, 5, 9);
        for x in 0..100u64 {
            s.update(x, 3);
        }
        for x in 0..100u64 {
            s.update(x, -3);
        }
        assert_eq!(s.estimate(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_equals_single_pass() {
        let seed = 4;
        let mut full = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut a = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut b = FastAmsSketch::with_dimensions(256, 5, seed);
        for x in 0..1000u64 {
            let w = (x % 11) as i64 + 1;
            full.update(x, w);
            if x % 2 == 0 {
                a.update(x, w);
            } else {
                b.update(x, w);
            }
        }
        let merged = a.merged(&b).unwrap();
        assert_eq!(merged.estimate(), full.estimate());
        assert_eq!(merged.lane, full.lane);
        assert_eq!(merged.sumsq, full.sumsq);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let a = FastAmsSketch::with_dimensions(64, 5, 1);
        let b = FastAmsSketch::with_dimensions(64, 5, 2);
        let c = FastAmsSketch::with_dimensions(32, 5, 1);
        assert!(a.merged(&b).is_err());
        assert!(a.merged(&c).is_err());
    }

    #[test]
    fn merge_rejects_trim_mismatch() {
        let mut a = FastAmsSketch::with_dimensions(64, 9, 1);
        a.trim_to_delta(0.3).unwrap();
        let b = FastAmsSketch::with_dimensions(64, 9, 1);
        assert!(a.active_rows() < b.active_rows());
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn point_estimates_track_heavy_items() {
        let mut s = FastAmsSketch::with_dimensions(512, 7, 33);
        // One heavy item among light noise.
        s.update(999, 10_000);
        for x in 0..200u64 {
            s.update(x, 5);
        }
        let est = s.frequency_estimate(999);
        assert!(
            (est - 10_000.0).abs() < 500.0,
            "heavy item frequency estimate {est} too far from 10000"
        );
    }

    #[test]
    fn space_accounting() {
        let s = FastAmsSketch::with_dimensions(100, 7, 1);
        assert_eq!(s.stored_tuples(), 700);
        assert_eq!(s.space_bytes(), 5600);
    }

    #[test]
    fn single_item_estimate_exact() {
        let mut s = FastAmsSketch::with_dimensions(16, 3, 5);
        s.update(7, 13);
        assert_eq!(s.estimate(), 169.0);
    }

    #[test]
    fn prepared_batch_ranges_match_per_tuple_updates() {
        // Applying arbitrary sub-ranges of a prepared batch must be
        // bit-identical to per-tuple updates of the same tuples in order.
        let proto = FastAmsSketch::with_dimensions(64, 5, 13);
        let items: Vec<(u64, i64)> = (0..300u64).map(|i| (i * 31 % 97, (i % 9) as i64 + 1)).collect();
        let mut batch = FastAmsBatch::default();
        proto.prepare_batch_into(&items, &mut batch);
        let mut scalar = FastAmsSketch::with_dimensions(64, 5, 13);
        let mut batched = FastAmsSketch::with_dimensions(64, 5, 13);
        for &(x, w) in &items {
            scalar.update(x, w);
        }
        for range in [0..100, 100..101, 101..300] {
            batched.apply_prepared_range(&batch, range);
        }
        assert_eq!(scalar.estimate(), batched.estimate());
        assert_eq!(scalar.lane, batched.lane);
        assert_eq!(scalar.sumsq, batched.sumsq);
    }

    #[test]
    fn kernel_handles_duplicate_buckets_in_quad() {
        // Four copies of the same item in one quad must accumulate exactly
        // (the unrolled kernel re-reads each counter it just wrote).
        let proto = FastAmsSketch::with_dimensions(8, 3, 7);
        let items: Vec<(u64, i64)> = vec![(42, 1); 8];
        let mut batch = FastAmsBatch::default();
        proto.prepare_batch_into(&items, &mut batch);
        let mut batched = FastAmsSketch::with_dimensions(8, 3, 7);
        batched.apply_prepared_range(&batch, 0..8);
        let mut scalar = FastAmsSketch::with_dimensions(8, 3, 7);
        for &(x, w) in &items {
            scalar.update(x, w);
        }
        assert_eq!(scalar.lane, batched.lane);
        assert_eq!(scalar.sumsq, batched.sumsq);
        assert_eq!(batched.estimate(), 64.0);
    }

    #[test]
    #[should_panic(expected = "width does not match")]
    fn apply_rejects_foreign_width_batch() {
        let proto = FastAmsSketch::with_dimensions(64, 3, 1);
        let mut batch = FastAmsBatch::default();
        proto.prepare_batch_into(&[(1, 1), (2, 1)], &mut batch);
        let mut wrong = FastAmsSketch::with_dimensions(32, 3, 1);
        wrong.apply_prepared_range(&batch, 0..2);
    }

    #[test]
    fn trimmed_sketch_matches_shallow_sketch() {
        // A depth-9 sketch trimmed to d' rows must produce exactly the lane
        // prefix and estimate of a natively depth-d' sketch (rows share
        // per-row seeds).
        let mut deep = FastAmsSketch::with_dimensions(64, 9, 5);
        let trimmed_rows = deep.trim_to_delta(0.3).unwrap();
        assert!(trimmed_rows < 9, "delta 0.3 should need fewer than 9 rows");
        let mut shallow = FastAmsSketch::with_dimensions(64, trimmed_rows, 5);
        for i in 0..500u64 {
            let (x, w) = (i * 17 % 211, (i % 5) as i64 + 1);
            deep.update(x, w);
            shallow.update(x, w);
        }
        assert_eq!(deep.estimate(), shallow.estimate());
        assert_eq!(
            &deep.lane[..trimmed_rows * 64],
            &shallow.lane[..],
        );
        // Rows past the trim never saw an update.
        assert!(deep.lane[trimmed_rows * 64..].iter().all(|&c| c == 0));
    }

    #[test]
    fn trim_rejects_non_empty_sketch() {
        let mut s = FastAmsSketch::with_dimensions(64, 9, 5);
        s.update(1, 1);
        assert!(s.trim_to_delta(0.3).is_err());
    }

    #[test]
    fn decayed_accumulator_with_unit_weights_matches_merge() {
        // g = 1 for every input must reproduce the plain merged estimate.
        let seed = 19;
        let mut a = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut b = FastAmsSketch::with_dimensions(256, 5, seed);
        for x in 0..800u64 {
            a.update(x % 37, 2);
            b.update(x % 53, 3);
        }
        let merged = a.merged(&b).unwrap();
        let mut acc = DecayedF2Accumulator::new(&a);
        acc.add_sketch(&a, 1.0).unwrap();
        acc.add_sketch(&b, 1.0).unwrap();
        assert!((acc.estimate() - merged.estimate()).abs() < 1e-6);
    }

    #[test]
    fn decayed_accumulator_scales_quadratically() {
        // F_2 of g-scaled frequencies is g² times F_2: one input, weight g.
        let mut s = FastAmsSketch::with_dimensions(128, 5, 7);
        for x in 0..200u64 {
            s.update(x, 4);
        }
        let g = 0.35f64;
        let mut acc = DecayedF2Accumulator::new(&s);
        acc.add_sketch(&s, g).unwrap();
        let expected = g * g * s.estimate();
        assert!(
            (acc.estimate() - expected).abs() < 1e-6 * expected.max(1.0),
            "estimate {} vs g²·F2 {expected}",
            acc.estimate()
        );
    }

    #[test]
    fn decayed_accumulator_items_match_sketch_path() {
        // Folding exact items must place weight exactly where a sketch update
        // of the same items would.
        let seed = 31;
        let mut sketched = FastAmsSketch::with_dimensions(64, 5, seed);
        let items: Vec<(u64, i64)> = (0..50u64).map(|x| (x * 13 % 97, (x % 6) as i64 + 1)).collect();
        for &(x, f) in &items {
            sketched.update(x, f);
        }
        let g = 0.5f64;
        let mut via_sketch = DecayedF2Accumulator::new(&sketched);
        via_sketch.add_sketch(&sketched, g).unwrap();
        let mut via_items = DecayedF2Accumulator::new(&sketched);
        for &(x, f) in &items {
            via_items.add_item(x, g * f as f64);
        }
        assert!((via_sketch.estimate() - via_items.estimate()).abs() < 1e-9);
    }

    #[test]
    fn decayed_accumulator_rejects_mismatched_sketches() {
        let a = FastAmsSketch::with_dimensions(64, 5, 1);
        let wrong_seed = FastAmsSketch::with_dimensions(64, 5, 2);
        let wrong_width = FastAmsSketch::with_dimensions(32, 5, 1);
        let mut acc = DecayedF2Accumulator::new(&a);
        assert!(acc.add_sketch(&wrong_seed, 1.0).is_err());
        assert!(acc.add_sketch(&wrong_width, 1.0).is_err());
        assert!(acc.add_sketch(&a, 1.0).is_ok());
    }

    #[test]
    fn incremental_sumsq_matches_recomputation() {
        // The running per-row Σc² must stay exactly equal to a from-scratch
        // recomputation through mixed-sign updates and a merge.
        let mut s = FastAmsSketch::with_dimensions(64, 5, 77);
        let mut other = FastAmsSketch::with_dimensions(64, 5, 77);
        let mut state = 1u64;
        for _ in 0..5_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = (state % 7) as i64 - 3; // mixed signs exercise cancellation
            s.update(state >> 32, if w == 0 { 1 } else { w });
            other.update(state >> 17, 2);
        }
        s.merge_from(&other).unwrap();
        for (row, &sumsq) in s.lane.chunks_exact(s.width).zip(&s.sumsq) {
            assert_eq!(sumsq, lane_sumsq(row));
        }
    }
}
