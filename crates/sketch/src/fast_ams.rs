//! The "fast AMS" second-moment estimator (Thorup & Zhang, SODA 2004; also the
//! CountSketch-based F2 estimator of Charikar–Chen–Farach-Colton).
//!
//! This is the variant the paper's experiments use ("a variant of the
//! algorithm due to Alon et al., based on the idea of Thorup and Zhang. This
//! variant gives a better update time", Section 5.1): instead of touching
//! `O(1/ε²)` atoms per update, each row hashes the item to one of `width`
//! buckets and adds `sign(x) · weight` there — `O(1)` counter updates per row.
//! The per-row estimate is the sum of squared bucket counters; the final
//! estimate is the median over rows.
//!
//! Like the classic AMS sketch this is a linear sketch: it supports turnstile
//! (negative-weight) updates and merges by counter-wise addition.

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::estimator_util::{median, median_mut};
use crate::traits::{Estimate, MergeableSketch, SharedUpdate, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;

/// One row of the fast AMS sketch: a bucket hash, a sign hash, counters, and
/// the incrementally-maintained sum of squared counters.
#[derive(Debug, Clone)]
struct Row {
    bucket_hash: PolynomialHash,
    sign_hash: PolynomialHash,
    counters: Vec<i64>,
    /// `Σ c²` over `counters`, maintained on every update so the per-row `F_2`
    /// estimate is O(1) instead of O(width). Kept in `i128` so the running
    /// value is *exact* (each counter fits in `i64`, so `c²` fits in `i128`
    /// with enormous headroom) — the estimate is bit-for-bit the true sum of
    /// squares, with none of the rounding a recomputed `f64` sum would have.
    sumsq: i128,
}

impl Row {
    fn new(width: usize, seed: u64) -> Self {
        Self {
            bucket_hash: PolynomialHash::new(2, derive_seed(seed, 0xB)),
            sign_hash: PolynomialHash::new(4, derive_seed(seed, 0x5)),
            counters: vec![0; width],
            sumsq: 0,
        }
    }

    #[inline]
    fn sign(&self, item: u64) -> i64 {
        if (self.sign_hash.hash64(item) >> 62) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    #[inline]
    fn bucket(&self, item: u64) -> usize {
        self.bucket_hash.hash_range(item, self.counters.len() as u64) as usize
    }

    #[inline]
    fn update(&mut self, item: u64, weight: i64) {
        let b = self.bucket(item);
        let delta = self.sign(item) * weight;
        self.apply(b, delta);
    }

    /// Add `delta` to counter `b`, keeping the running sum of squares exact.
    #[inline]
    fn apply(&mut self, b: usize, delta: i64) {
        let old = self.counters[b];
        self.counters[b] = old + delta;
        // (c + d)² − c² = (2c + d)·d, evaluated in i128 so it is exact.
        self.sumsq += (2 * old as i128 + delta as i128) * delta as i128;
    }

    /// Apply a run of precomputed `(bucket, delta)` coordinates against the
    /// row's counters as one flat `&mut [i64]` pass: the coordinate slices
    /// are walked sequentially and `sumsq` is carried in a register instead
    /// of being re-read through `&mut self` per update.
    #[inline]
    fn apply_slice(&mut self, buckets: &[u32], deltas: &[i64]) {
        let counters: &mut [i64] = &mut self.counters;
        let mut sumsq = self.sumsq;
        for (&b, &delta) in buckets.iter().zip(deltas) {
            let slot = &mut counters[b as usize];
            let old = *slot;
            *slot = old + delta;
            sumsq += (2 * old as i128 + delta as i128) * delta as i128;
        }
        self.sumsq = sumsq;
    }

    #[inline]
    fn f2_estimate(&self) -> f64 {
        self.sumsq as f64
    }

    /// Rebuild `sumsq` from the counters (used after counter-wise merges,
    /// which touch every counter anyway).
    fn recompute_sumsq(&mut self) {
        self.sumsq = self
            .counters
            .iter()
            .map(|&c| (c as i128) * (c as i128))
            .sum();
    }

    /// Point estimate of the signed frequency of `item` from this row.
    #[inline]
    fn point_estimate(&self, item: u64) -> f64 {
        (self.sign(item) * self.counters[self.bucket(item)]) as f64
    }
}

/// Fast AMS / CountSketch-bucketed estimator for `F_2`.
#[derive(Debug, Clone)]
pub struct FastAmsSketch {
    rows: Vec<Row>,
    width: usize,
    seed: u64,
}

impl FastAmsSketch {
    /// Build a sketch achieving relative error `epsilon` with failure
    /// probability `delta`.
    ///
    /// The width is `⌈6/ε²⌉` buckets per row and the depth `O(log 1/δ)` rows,
    /// the standard parameterisation for the Thorup–Zhang estimator.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        let width = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(2);
        let depth = crate::estimator_util::repetitions_for_delta(delta);
        Ok(Self::with_dimensions(width, depth, seed))
    }

    /// Build a sketch with explicit dimensions.
    pub fn with_dimensions(width: usize, depth: usize, seed: u64) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        let rows = (0..depth)
            .map(|r| Row::new(width, derive_seed(seed, r as u64)))
            .collect();
        Self { rows, width, seed }
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Seed used to derive the hash functions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// CountSketch-style point estimate of the signed frequency of `item`
    /// (median over rows). Exposed because the correlated heavy-hitters
    /// structure reuses the same counters for both `F_2` estimation and
    /// per-item frequency estimation, exactly as described in Section 3.3.
    pub fn frequency_estimate(&self, item: u64) -> f64 {
        let per_row: Vec<f64> = self.rows.iter().map(|r| r.point_estimate(item)).collect();
        median(&per_row).unwrap_or(0.0)
    }

    /// True iff no update has ever been applied (all counters zero).
    pub fn is_empty(&self) -> bool {
        // sumsq = Σ c² is zero exactly when every counter in the row is zero.
        self.rows.iter().all(|r| r.sumsq == 0)
    }

    /// Snapshot hook: the raw counter lane of each row, in row order.
    pub(crate) fn row_counters(&self) -> impl Iterator<Item = &[i64]> {
        self.rows.iter().map(|r| r.counters.as_slice())
    }

    /// Snapshot hook: overwrite every row's counters (`None` = all-zero row)
    /// and rebuild the incremental sums of squares. `rows` must match the
    /// sketch's depth and width (the codec validates both before calling).
    pub(crate) fn load_row_counters(&mut self, rows: &[Option<Vec<i64>>]) {
        debug_assert_eq!(rows.len(), self.rows.len());
        for (row, loaded) in self.rows.iter_mut().zip(rows) {
            match loaded {
                None => {
                    row.counters.fill(0);
                    row.sumsq = 0;
                }
                Some(counters) => {
                    row.counters.copy_from_slice(counters);
                    row.recompute_sumsq();
                }
            }
        }
    }
}

impl StreamSketch for FastAmsSketch {
    #[inline]
    fn update(&mut self, item: u64, weight: i64) {
        for row in &mut self.rows {
            row.update(item, weight);
        }
    }
}

/// A real-weighted combination of same-seeded [`FastAmsSketch`] counter
/// states: `Σ_p g_p · C_p`, with `g_p ∈ ℝ` supplied per input.
///
/// AMS/CountSketch is a *linear* sketch, so scaling every counter of a sketch
/// of stream `S` by `g` yields exactly the sketch of `S` with all frequencies
/// scaled by `g`. The accumulator exploits this for **time-decayed** `F_2`:
/// each time pane's sketch is folded in with its decay weight `g_p = λ^age`,
/// and [`estimate`](Self::estimate) then returns the fast-AMS estimate
/// (median over rows of `Σ c²`) of the decayed frequency vector
/// `f_decayed(x) = Σ_p g_p · f_p(x)` — no per-item enumeration needed.
///
/// Exact frequency vectors can be folded in too
/// ([`add_item`](Self::add_item) hashes them through the same rows), so the
/// hybrid exact/sketched bucket stores of `cora-core` combine seamlessly.
#[derive(Debug, Clone)]
pub struct DecayedF2Accumulator {
    /// `depth × width` scaled counters, row-major.
    counters: Vec<f64>,
    width: usize,
    depth: usize,
    seed: u64,
    /// Same-seeded hash rows used to place exact items; carries no counters.
    proto: FastAmsSketch,
}

impl DecayedF2Accumulator {
    /// An all-zero accumulator compatible with sketches shaped like `proto`
    /// (same width, depth, and seed).
    pub fn new(proto: &FastAmsSketch) -> Self {
        Self {
            counters: vec![0.0; proto.width() * proto.depth()],
            width: proto.width(),
            depth: proto.depth(),
            seed: proto.seed(),
            proto: FastAmsSketch::with_dimensions(proto.width(), proto.depth(), proto.seed()),
        }
    }

    /// Fold `scale ×` the counters of `sketch` into the accumulator.
    /// The sketch must share the accumulator's dimensions and seed.
    pub fn add_sketch(&mut self, sketch: &FastAmsSketch, scale: f64) -> Result<()> {
        if sketch.width() != self.width
            || sketch.depth() != self.depth
            || sketch.seed() != self.seed
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "decayed accumulator is {}x{} seed {:#x}, sketch is {}x{} seed {:#x}",
                    self.depth,
                    self.width,
                    self.seed,
                    sketch.depth(),
                    sketch.width(),
                    sketch.seed()
                ),
            });
        }
        if scale == 0.0 {
            return Ok(());
        }
        for (r, row) in sketch.rows.iter().enumerate() {
            if row.sumsq == 0 {
                continue;
            }
            let base = r * self.width;
            for (slot, &c) in self.counters[base..base + self.width].iter_mut().zip(&row.counters) {
                *slot += scale * c as f64;
            }
        }
        Ok(())
    }

    /// Fold one exactly-stored item with real weight `scale × frequency` into
    /// the accumulator, using the same hash rows a sketch update would.
    pub fn add_item(&mut self, item: u64, weight: f64) {
        if weight == 0.0 {
            return;
        }
        for (r, row) in self.proto.rows.iter().enumerate() {
            let b = row.bucket(item);
            self.counters[r * self.width + b] += row.sign(item) as f64 * weight;
        }
    }

    /// The fast-AMS `F_2` estimate of the accumulated (decayed) frequency
    /// vector: the median over rows of the sum of squared scaled counters.
    pub fn estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = (0..self.depth)
            .map(|r| {
                self.counters[r * self.width..(r + 1) * self.width]
                    .iter()
                    .map(|&c| c * c)
                    .sum()
            })
            .collect();
        median_mut(&mut per_row).unwrap_or(0.0)
    }
}

/// Precomputed per-row coordinates of one fast-AMS update: `(bucket, signed
/// delta)` for each row. See [`SharedUpdate`].
#[derive(Debug, Clone, Default)]
pub struct FastAmsPrepared {
    rows: Vec<(u32, i64)>,
}

/// Precomputed coordinates for a whole batch of fast-AMS updates, laid out
/// **row-major** in two flat arrays: the entry for tuple `i` in row `r` lives
/// at index `r * len + i`. Applying a contiguous tuple range to a sketch
/// therefore walks one contiguous coordinate slice per row against that
/// row's flat counter array, instead of chasing one heap allocation per
/// tuple.
#[derive(Debug, Clone, Default)]
pub struct FastAmsBatch {
    buckets: Vec<u32>,
    deltas: Vec<i64>,
    /// Number of tuples in the batch (the row stride).
    len: usize,
}

impl SharedUpdate for FastAmsSketch {
    type Prepared = FastAmsPrepared;
    type PreparedBatch = FastAmsBatch;

    fn prepare_into(&self, item: u64, weight: i64, out: &mut FastAmsPrepared) {
        out.rows.clear();
        out.rows.extend(
            self.rows
                .iter()
                .map(|r| (r.bucket(item) as u32, r.sign(item) * weight)),
        );
    }

    fn apply_prepared(&mut self, prepared: &FastAmsPrepared) {
        debug_assert_eq!(prepared.rows.len(), self.rows.len());
        for (row, &(b, delta)) in self.rows.iter_mut().zip(&prepared.rows) {
            row.apply(b as usize, delta);
        }
    }

    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut FastAmsBatch) {
        out.len = items.len();
        out.buckets.clear();
        out.deltas.clear();
        out.buckets.reserve(self.rows.len() * items.len());
        out.deltas.reserve(self.rows.len() * items.len());
        for row in &self.rows {
            for &(item, weight) in items {
                out.buckets.push(row.bucket(item) as u32);
                out.deltas.push(row.sign(item) * weight);
            }
        }
    }

    fn apply_prepared_range(&mut self, batch: &FastAmsBatch, range: std::ops::Range<usize>) {
        debug_assert!(range.end <= batch.len);
        for (r, row) in self.rows.iter_mut().enumerate() {
            let base = r * batch.len;
            row.apply_slice(
                &batch.buckets[base + range.start..base + range.end],
                &batch.deltas[base + range.start..base + range.end],
            );
        }
    }
}

impl Estimate for FastAmsSketch {
    fn estimate(&self) -> f64 {
        // The per-row sums of squares are maintained incrementally, so this is
        // O(depth). A stack buffer keeps the common small-depth case (the
        // correlated framework checks bucket estimates on every insert)
        // allocation-free.
        const STACK: usize = 32;
        let n = self.rows.len();
        if n <= STACK {
            let mut buf = [0.0f64; STACK];
            for (slot, row) in buf[..n].iter_mut().zip(&self.rows) {
                *slot = row.f2_estimate();
            }
            median_mut(&mut buf[..n]).unwrap_or(0.0)
        } else {
            let mut per_row: Vec<f64> = self.rows.iter().map(Row::f2_estimate).collect();
            median_mut(&mut per_row).unwrap_or(0.0)
        }
    }
}

impl MergeableSketch for FastAmsSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.width != other.width || self.rows.len() != other.rows.len() || self.seed != other.seed
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "FastAMS dims/seed mismatch: ({}x{}, {:#x}) vs ({}x{}, {:#x})",
                    self.rows.len(),
                    self.width,
                    self.seed,
                    other.rows.len(),
                    other.width,
                    other.seed
                ),
            });
        }
        for (r, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            // Empty rows contribute nothing; skipping them makes merging a
            // sparse shard (the common case when composing per-bucket
            // sketches at query time) O(1) per row instead of O(width).
            if o.sumsq == 0 {
                continue;
            }
            if r.sumsq == 0 {
                r.counters.copy_from_slice(&o.counters);
                r.sumsq = o.sumsq;
                continue;
            }
            for (c, d) in r.counters.iter_mut().zip(o.counters.iter()) {
                *c += d;
            }
            r.recompute_sumsq();
        }
        Ok(())
    }
}

impl SpaceUsage for FastAmsSketch {
    fn stored_tuples(&self) -> usize {
        self.rows.len() * self.width
    }

    fn space_bytes(&self) -> usize {
        self.stored_tuples() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    fn exact_f2(freqs: &[(u64, i64)]) -> f64 {
        freqs.iter().map(|&(_, f)| (f as f64) * (f as f64)).sum()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FastAmsSketch::new(0.0, 0.1, 1).is_err());
        assert!(FastAmsSketch::new(0.2, 1.0, 1).is_err());
    }

    #[test]
    fn sizes_follow_epsilon_and_delta() {
        let s = FastAmsSketch::new(0.1, 0.05, 1).unwrap();
        assert_eq!(s.width(), 600);
        let s2 = FastAmsSketch::new(0.2, 0.05, 1).unwrap();
        assert_eq!(s2.width(), 150);
        assert!(FastAmsSketch::new(0.2, 0.001, 1).unwrap().depth() > s2.depth() / 2);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = FastAmsSketch::with_dimensions(64, 5, 3);
        assert_eq!(s.estimate(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn estimate_accuracy_uniform() {
        let mut s = FastAmsSketch::new(0.15, 0.05, 21).unwrap();
        let freqs: Vec<(u64, i64)> = (0..500u64).map(|x| (x, 20)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let err = relative_error(s.estimate(), exact_f2(&freqs));
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn estimate_accuracy_skewed() {
        let mut s = FastAmsSketch::new(0.15, 0.05, 22).unwrap();
        let freqs: Vec<(u64, i64)> =
            (0..300u64).map(|x| (x, (3000 / (x + 1)) as i64)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let err = relative_error(s.estimate(), exact_f2(&freqs));
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn turnstile_cancellation() {
        let mut s = FastAmsSketch::with_dimensions(128, 5, 9);
        for x in 0..100u64 {
            s.update(x, 3);
        }
        for x in 0..100u64 {
            s.update(x, -3);
        }
        assert_eq!(s.estimate(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_equals_single_pass() {
        let seed = 4;
        let mut full = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut a = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut b = FastAmsSketch::with_dimensions(256, 5, seed);
        for x in 0..1000u64 {
            let w = (x % 11) as i64 + 1;
            full.update(x, w);
            if x % 2 == 0 {
                a.update(x, w);
            } else {
                b.update(x, w);
            }
        }
        let merged = a.merged(&b).unwrap();
        assert_eq!(merged.estimate(), full.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let a = FastAmsSketch::with_dimensions(64, 5, 1);
        let b = FastAmsSketch::with_dimensions(64, 5, 2);
        let c = FastAmsSketch::with_dimensions(32, 5, 1);
        assert!(a.merged(&b).is_err());
        assert!(a.merged(&c).is_err());
    }

    #[test]
    fn point_estimates_track_heavy_items() {
        let mut s = FastAmsSketch::with_dimensions(512, 7, 33);
        // One heavy item among light noise.
        s.update(999, 10_000);
        for x in 0..200u64 {
            s.update(x, 5);
        }
        let est = s.frequency_estimate(999);
        assert!(
            (est - 10_000.0).abs() < 500.0,
            "heavy item frequency estimate {est} too far from 10000"
        );
    }

    #[test]
    fn space_accounting() {
        let s = FastAmsSketch::with_dimensions(100, 7, 1);
        assert_eq!(s.stored_tuples(), 700);
        assert_eq!(s.space_bytes(), 5600);
    }

    #[test]
    fn single_item_estimate_exact() {
        let mut s = FastAmsSketch::with_dimensions(16, 3, 5);
        s.update(7, 13);
        assert_eq!(s.estimate(), 169.0);
    }

    #[test]
    fn prepared_batch_ranges_match_per_tuple_updates() {
        // Applying arbitrary sub-ranges of a prepared batch must be
        // bit-identical to per-tuple updates of the same tuples in order.
        let proto = FastAmsSketch::with_dimensions(64, 5, 13);
        let items: Vec<(u64, i64)> = (0..300u64).map(|i| (i * 31 % 97, (i % 9) as i64 + 1)).collect();
        let mut batch = FastAmsBatch::default();
        proto.prepare_batch_into(&items, &mut batch);
        let mut scalar = FastAmsSketch::with_dimensions(64, 5, 13);
        let mut batched = FastAmsSketch::with_dimensions(64, 5, 13);
        for &(x, w) in &items {
            scalar.update(x, w);
        }
        for range in [0..100, 100..101, 101..300] {
            batched.apply_prepared_range(&batch, range);
        }
        assert_eq!(scalar.estimate(), batched.estimate());
        for (a, b) in scalar.rows.iter().zip(&batched.rows) {
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.sumsq, b.sumsq);
        }
    }

    #[test]
    fn decayed_accumulator_with_unit_weights_matches_merge() {
        // g = 1 for every input must reproduce the plain merged estimate.
        let seed = 19;
        let mut a = FastAmsSketch::with_dimensions(256, 5, seed);
        let mut b = FastAmsSketch::with_dimensions(256, 5, seed);
        for x in 0..800u64 {
            a.update(x % 37, 2);
            b.update(x % 53, 3);
        }
        let merged = a.merged(&b).unwrap();
        let mut acc = DecayedF2Accumulator::new(&a);
        acc.add_sketch(&a, 1.0).unwrap();
        acc.add_sketch(&b, 1.0).unwrap();
        assert!((acc.estimate() - merged.estimate()).abs() < 1e-6);
    }

    #[test]
    fn decayed_accumulator_scales_quadratically() {
        // F_2 of g-scaled frequencies is g² times F_2: one input, weight g.
        let mut s = FastAmsSketch::with_dimensions(128, 5, 7);
        for x in 0..200u64 {
            s.update(x, 4);
        }
        let g = 0.35f64;
        let mut acc = DecayedF2Accumulator::new(&s);
        acc.add_sketch(&s, g).unwrap();
        let expected = g * g * s.estimate();
        assert!(
            (acc.estimate() - expected).abs() < 1e-6 * expected.max(1.0),
            "estimate {} vs g²·F2 {expected}",
            acc.estimate()
        );
    }

    #[test]
    fn decayed_accumulator_items_match_sketch_path() {
        // Folding exact items must place weight exactly where a sketch update
        // of the same items would.
        let seed = 31;
        let mut sketched = FastAmsSketch::with_dimensions(64, 5, seed);
        let items: Vec<(u64, i64)> = (0..50u64).map(|x| (x * 13 % 97, (x % 6) as i64 + 1)).collect();
        for &(x, f) in &items {
            sketched.update(x, f);
        }
        let g = 0.5f64;
        let mut via_sketch = DecayedF2Accumulator::new(&sketched);
        via_sketch.add_sketch(&sketched, g).unwrap();
        let mut via_items = DecayedF2Accumulator::new(&sketched);
        for &(x, f) in &items {
            via_items.add_item(x, g * f as f64);
        }
        assert!((via_sketch.estimate() - via_items.estimate()).abs() < 1e-9);
    }

    #[test]
    fn decayed_accumulator_rejects_mismatched_sketches() {
        let a = FastAmsSketch::with_dimensions(64, 5, 1);
        let wrong_seed = FastAmsSketch::with_dimensions(64, 5, 2);
        let wrong_width = FastAmsSketch::with_dimensions(32, 5, 1);
        let mut acc = DecayedF2Accumulator::new(&a);
        assert!(acc.add_sketch(&wrong_seed, 1.0).is_err());
        assert!(acc.add_sketch(&wrong_width, 1.0).is_err());
        assert!(acc.add_sketch(&a, 1.0).is_ok());
    }

    #[test]
    fn incremental_sumsq_matches_recomputation() {
        // The running per-row Σc² must stay exactly equal to a from-scratch
        // recomputation through mixed-sign updates and a merge.
        let mut s = FastAmsSketch::with_dimensions(64, 5, 77);
        let mut other = FastAmsSketch::with_dimensions(64, 5, 77);
        let mut state = 1u64;
        for _ in 0..5_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = (state % 7) as i64 - 3; // mixed signs exercise cancellation
            s.update(state >> 32, if w == 0 { 1 } else { w });
            other.update(state >> 17, 2);
        }
        s.merge_from(&other).unwrap();
        for row in &s.rows {
            let direct: i128 = row.counters.iter().map(|&c| (c as i128) * (c as i128)).sum();
            assert_eq!(row.sumsq, direct);
        }
    }
}
