//! Higher frequency moments `F_k`, `k ≥ 2`, in the spirit of Indyk & Woodruff
//! (STOC 2005): account for heavy items directly, estimate the light residual
//! by uniform item subsampling, and scale the subsample back up.
//!
//! ## Structure
//!
//! * a pairwise-independent hash assigns each item a geometric "deepest
//!   level"; level `j` receives exactly the items whose deepest level is ≥ j,
//!   so level `j` sees each item with probability `2^{-j}` (level 0 sees all);
//! * every level maintains a [`SpaceSaving`] summary with `capacity` counters.
//!   While a SpaceSaving summary has never evicted, its counts are **exact**
//!   and complete — the estimator leans on this regime.
//!
//! ## Estimation
//!
//! * If level 0 never evicted, the whole frequency vector is known exactly and
//!   the estimate is exact.
//! * Otherwise, items whose *guaranteed* level-0 count exceeds a noise
//!   threshold (a constant multiple of the SpaceSaving error bound) form the
//!   heavy set `H`; their contribution `Σ f̂_x^k` is added directly.
//! * The light residual is estimated from the shallowest level `j*` that never
//!   evicted (its counts are exact): `2^{j*} · Σ_{x ∈ level j*, x ∉ H} f_x^k`.
//!   Each light item is present at level `j*` with probability `2^{-j*}`, so
//!   the scaled sum is an unbiased estimator of the light contribution.
//!
//! Every component is mergeable, so the whole structure satisfies Property V
//! of the correlated-aggregation paper (composable summaries), which is what
//! `cora-core` needs to lift it to a correlated aggregate. This is an
//! engineering simplification of the Indyk–Woodruff algorithm — see DESIGN.md
//! ("Substitutions").
//!
//! For `k = 2` prefer [`crate::fast_ams::FastAmsSketch`], which is cheaper and
//! has the textbook guarantee; `FkSketch` accepts `k = 2` as well (useful for
//! cross-validation in tests and ablations).

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::space_saving::SpaceSaving;
use crate::traits::{Estimate, MergeableSketch, SharedUpdate, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use std::collections::HashSet;

/// Default number of subsampling levels: enough for streams of up to ~2^30
/// distinct items.
const DEFAULT_LEVELS: usize = 30;

/// Heavy items must have a guaranteed count at least this multiple of the
/// SpaceSaving error bound before their k-th power is trusted directly.
const HEAVY_NOISE_FACTOR: u64 = 8;

/// Estimator for the k-th frequency moment, `k ≥ 2`.
#[derive(Debug, Clone)]
pub struct FkSketch {
    k: u32,
    /// Pairwise hash deciding the deepest subsampling level of each item.
    level_hash: PolynomialHash,
    /// `levels[j]` summarises the items whose deepest level is ≥ j.
    levels: Vec<SpaceSaving>,
    capacity: usize,
    seed: u64,
}

impl FkSketch {
    /// Build an `F_k` estimator targeting relative error `epsilon` with
    /// failure probability `delta`.
    pub fn new(k: u32, epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        if k < 2 {
            return Err(SketchError::InvalidParameter {
                name: "k",
                detail: format!("FkSketch requires k >= 2, got {k}"),
            });
        }
        // The subsample at the chosen level has O(capacity) items; its
        // relative sampling error is O(1/sqrt(capacity)), so capacity ~ 1/eps^2.
        // log(1/delta) enters through the number of levels kept comfortably
        // under capacity (failure means "no unsaturated level found").
        let capacity = ((8.0 / (epsilon * epsilon)).ceil() as usize).clamp(32, 1 << 15);
        Ok(Self::with_dimensions(k, capacity, DEFAULT_LEVELS, seed))
    }

    /// Build with explicit dimensions (tests / ablations).
    pub fn with_dimensions(k: u32, capacity: usize, num_levels: usize, seed: u64) -> Self {
        let num_levels = num_levels.clamp(1, 60);
        let capacity = capacity.max(4);
        let levels = (0..num_levels).map(|_| SpaceSaving::new(capacity)).collect();
        Self {
            k,
            level_hash: PolynomialHash::new(2, derive_seed(seed, 0x1E7E1)),
            levels,
            capacity,
            seed,
        }
    }

    /// The moment order `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of subsampling levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-level SpaceSaving capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest level at which `item` is retained (level 0 always retains).
    #[inline]
    fn item_level(&self, item: u64) -> usize {
        let u = self.level_hash.hash_unit(item);
        let mut level = 0usize;
        let mut threshold = 1.0f64;
        while level + 1 < self.levels.len() {
            threshold *= 0.5;
            if u < threshold {
                level += 1;
            } else {
                break;
            }
        }
        level
    }

    #[inline]
    fn pow_k(&self, f: f64) -> f64 {
        f.abs().powi(self.k as i32)
    }
}

impl StreamSketch for FkSketch {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "FkSketch only supports the cash-register model");
        let deepest = self.item_level(item);
        for level in 0..=deepest {
            self.levels[level].update(item, weight);
        }
    }
}

/// Precomputed coordinates of one `F_k` update: the item's deepest
/// subsampling level (seed-determined) plus the update itself.
#[derive(Debug, Clone, Default)]
pub struct FkPrepared {
    deepest: u32,
    item: u64,
    weight: i64,
}

impl SharedUpdate for FkSketch {
    type Prepared = FkPrepared;
    // The per-level SpaceSaving summaries are stateful, so there is no flat
    // coordinate layout to exploit: the batch is simply one `Prepared` per
    // tuple in a single Vec.
    type PreparedBatch = Vec<FkPrepared>;

    fn prepare_into(&self, item: u64, weight: i64, out: &mut FkPrepared) {
        out.deepest = self.item_level(item) as u32;
        out.item = item;
        out.weight = weight;
    }

    fn apply_prepared(&mut self, prepared: &FkPrepared) {
        debug_assert!(prepared.weight >= 0, "FkSketch only supports the cash-register model");
        // The per-level SpaceSaving summaries are stateful (not linear), so
        // only the subsampling-level hash is shareable work.
        let deepest = (prepared.deepest as usize).min(self.levels.len() - 1);
        for level in 0..=deepest {
            self.levels[level].update(prepared.item, prepared.weight);
        }
    }

    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut Self::PreparedBatch) {
        out.resize_with(items.len(), FkPrepared::default);
        for (&(item, weight), slot) in items.iter().zip(out.iter_mut()) {
            self.prepare_into(item, weight, slot);
        }
    }

    fn apply_prepared_range(&mut self, batch: &Self::PreparedBatch, range: std::ops::Range<usize>) {
        for prepared in &batch[range] {
            self.apply_prepared(prepared);
        }
    }
}

impl Estimate for FkSketch {
    fn estimate(&self) -> f64 {
        let level0 = &self.levels[0];
        if level0.is_exact() {
            // The whole frequency vector fits in the summary: exact answer.
            return level0.entries().map(|e| self.pow_k(e.count as f64)).sum();
        }

        // Heavy part: items whose guaranteed count clears the noise floor.
        let threshold = HEAVY_NOISE_FACTOR * level0.error_bound().max(1);
        let heavy = level0.guaranteed_above(threshold);
        let heavy_items: HashSet<u64> = heavy.iter().map(|e| e.item).collect();
        let heavy_sum: f64 = heavy
            .iter()
            .map(|e| {
                // Midpoint correction: the true count lies in
                // [count - overestimate, count].
                let corrected = e.count as f64 - 0.5 * e.overestimate as f64;
                self.pow_k(corrected)
            })
            .sum();

        // Light part: shallowest level whose summary is still exact.
        let mut light_sum = 0.0;
        for (j, level) in self.levels.iter().enumerate() {
            if !level.is_exact() && j + 1 < self.levels.len() {
                continue;
            }
            let scale = 2f64.powi(j.min(62) as i32);
            light_sum = level
                .entries()
                .filter(|e| !heavy_items.contains(&e.item))
                .map(|e| self.pow_k(e.count as f64 - 0.5 * e.overestimate as f64))
                .sum::<f64>()
                * scale;
            break;
        }
        heavy_sum + light_sum
    }
}

impl MergeableSketch for FkSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.k != other.k
            || self.levels.len() != other.levels.len()
            || self.seed != other.seed
            || self.capacity != other.capacity
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "FkSketch mismatch: (k={}, levels={}, cap={}, seed={:#x}) vs (k={}, levels={}, cap={}, seed={:#x})",
                    self.k,
                    self.levels.len(),
                    self.capacity,
                    self.seed,
                    other.k,
                    other.levels.len(),
                    other.capacity,
                    other.seed
                ),
            });
        }
        for (a, b) in self.levels.iter_mut().zip(other.levels.iter()) {
            a.merge_from(b)?;
        }
        Ok(())
    }
}

impl SpaceUsage for FkSketch {
    fn stored_tuples(&self) -> usize {
        self.levels.iter().map(SpaceUsage::stored_tuples).sum()
    }

    fn space_bytes(&self) -> usize {
        self.levels.iter().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    fn exact_fk(freqs: &[(u64, i64)], k: u32) -> f64 {
        freqs.iter().map(|&(_, f)| (f.abs() as f64).powi(k as i32)).sum()
    }

    #[test]
    fn parameter_validation() {
        assert!(FkSketch::new(1, 0.2, 0.1, 1).is_err());
        assert!(FkSketch::new(3, 0.0, 0.1, 1).is_err());
        assert!(FkSketch::new(3, 0.2, 0.0, 1).is_err());
        assert!(FkSketch::new(3, 0.2, 0.1, 1).is_ok());
    }

    #[test]
    fn empty_estimates_zero() {
        let s = FkSketch::new(3, 0.3, 0.1, 1).unwrap();
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn small_streams_are_exact() {
        let mut s = FkSketch::with_dimensions(3, 128, 20, 7);
        let freqs: Vec<(u64, i64)> = (0..100u64).map(|x| (x, (x % 7) as i64 + 1)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        assert_eq!(s.estimate(), exact_fk(&freqs, 3));
    }

    #[test]
    fn single_heavy_item_is_exact() {
        let mut s = FkSketch::with_dimensions(3, 64, 20, 7);
        s.update(42, 10);
        assert_eq!(s.estimate(), 1000.0);
    }

    #[test]
    fn skewed_stream_f3_accuracy() {
        let mut s = FkSketch::new(3, 0.2, 0.05, 13).unwrap();
        let freqs: Vec<(u64, i64)> = (0..5_000u64)
            .map(|x| (x, (200_000 / (x + 1).pow(2)).max(1) as i64))
            .collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let truth = exact_fk(&freqs, 3);
        let err = relative_error(s.estimate(), truth);
        assert!(err < 0.25, "relative error {err} on skewed F3");
    }

    #[test]
    fn uniform_stream_f3_accuracy() {
        // Uniform frequencies: everything rides on the subsampled level.
        let mut s = FkSketch::with_dimensions(3, 1024, 24, 17);
        let freqs: Vec<(u64, i64)> = (0..20_000u64).map(|x| (x, 5)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let truth = exact_fk(&freqs, 3);
        let err = relative_error(s.estimate(), truth);
        assert!(err < 0.25, "relative error {err} on uniform F3");
    }

    #[test]
    fn f2_cross_validates_against_exact() {
        let mut s = FkSketch::new(2, 0.1, 0.05, 23).unwrap();
        let freqs: Vec<(u64, i64)> = (0..30_000u64).map(|x| (x, (x % 9) as i64 + 1)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let truth = exact_fk(&freqs, 2);
        let err = relative_error(s.estimate(), truth);
        assert!(err < 0.3, "relative error {err} on F2 cross-check");
    }

    #[test]
    fn item_levels_are_geometric() {
        let s = FkSketch::with_dimensions(3, 64, 20, 5);
        let n = 100_000u64;
        let at_least_one = (0..n).filter(|&x| s.item_level(x) >= 1).count();
        let frac = at_least_one as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.02,
            "about half of items should reach level >= 1, got {frac}"
        );
        let at_least_three = (0..n).filter(|&x| s.item_level(x) >= 3).count();
        let frac3 = at_least_three as f64 / n as f64;
        assert!(
            (frac3 - 0.125).abs() < 0.01,
            "about 1/8 of items should reach level >= 3, got {frac3}"
        );
    }

    #[test]
    fn merge_is_close_to_single_pass() {
        let seed = 31;
        let mut full = FkSketch::with_dimensions(3, 512, 20, seed);
        let mut a = FkSketch::with_dimensions(3, 512, 20, seed);
        let mut b = FkSketch::with_dimensions(3, 512, 20, seed);
        let freqs: Vec<(u64, i64)> = (0..4_000u64)
            .map(|x| (x, (40_000 / (x + 1)).max(1) as i64))
            .collect();
        for &(x, f) in &freqs {
            full.update(x, f);
            if x % 2 == 0 {
                a.update(x, f);
            } else {
                b.update(x, f);
            }
        }
        let merged = a.merged(&b).unwrap();
        let e1 = merged.estimate();
        let truth = exact_fk(&freqs, 3);
        assert!(
            relative_error(e1, truth) < 0.3,
            "merged estimate {e1} vs truth {truth}"
        );
        let e2 = full.estimate();
        assert!(relative_error(e2, truth) < 0.3, "single-pass {e2} vs truth {truth}");
    }

    #[test]
    fn merge_rejects_mismatched_k() {
        let a = FkSketch::with_dimensions(3, 64, 20, 1);
        let b = FkSketch::with_dimensions(4, 64, 20, 1);
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn space_grows_with_stream_until_capacity() {
        let mut s = FkSketch::with_dimensions(3, 64, 10, 1);
        let before = s.stored_tuples();
        for x in 0..1000u64 {
            s.update(x, 1);
        }
        let after = s.stored_tuples();
        assert!(after > before);
        // Bounded by levels * capacity.
        assert!(after <= 10 * 64);
    }
}
