//! Exact (linear-space) aggregates.
//!
//! These are the "existing linear storage solutions" the paper's experiments
//! compare against, and the ground truth every test and accuracy report in
//! this workspace measures sketches against. [`ExactFrequencies`] stores the
//! full frequency vector; it answers any frequency moment, distinct count,
//! heavy-hitter or rarity query exactly.

use crate::error::{Result, SketchError};
use crate::traits::{Estimate, MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use cora_hash::mix::Fmix64Build;
use std::collections::HashMap;

/// Entries a frequency vector holds inline (no heap) before spilling to a
/// hash map. Two cache lines of entries: the correlated framework's low-level
/// buckets and singleton buckets rarely exceed a handful of distinct items,
/// so the common case costs one linear scan with no allocation at all.
const INLINE_CAP: usize = 8;

/// Storage behind [`ExactFrequencies`]: inline while tiny, hashed once big.
#[derive(Debug, Clone)]
enum Repr {
    /// Up to [`INLINE_CAP`] `(item, frequency)` entries, unsorted, scanned
    /// linearly. Invariant: no zero frequencies, no duplicate items.
    Inline {
        entries: [(u64, i64); INLINE_CAP],
        len: u8,
    },
    /// Spilled representation for larger vectors.
    Spilled(HashMap<u64, i64, Fmix64Build>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Inline {
            entries: [(0, 0); INLINE_CAP],
            len: 0,
        }
    }
}

/// Exact frequency vector over `u64` item identifiers.
///
/// Small vectors are stored inline (no heap); larger ones spill to a hash map
/// keyed by [`Fmix64Build`] rather than the std SipHash default — the
/// correlated framework updates one of these per level on every insert, and
/// the keys are item identifiers, not attacker-controlled strings.
#[derive(Debug, Clone, Default)]
pub struct ExactFrequencies {
    repr: Repr,
    total_weight: i64,
    /// Running `Σ f_i²` in `i128`, so `F_2` — the moment the correlated
    /// framework's bucket-closing checks ask for on every insert — is O(1)
    /// and exact instead of a scan over the vector.
    sum_squares: i128,
}

impl ExactFrequencies {
    /// Create an empty frequency vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of items with non-zero frequency (`F_0`).
    pub fn distinct_count(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spilled(freqs) => freqs.values().filter(|&&f| f != 0).count(),
        }
    }

    /// The k-th frequency moment `Σ |f_i|^k`. `F_0` is handled as the number
    /// of non-zero entries; `F_1` is the sum of absolute frequencies; `F_2`
    /// is maintained incrementally and costs O(1).
    pub fn frequency_moment(&self, k: u32) -> f64 {
        match k {
            0 => self.distinct_count() as f64,
            2 => self.sum_squares as f64,
            _ => self
                .iter()
                .map(|(_, f)| (f.abs() as f64).powi(k as i32))
                .sum(),
        }
    }

    /// Exact total weight `Σ f_i` (signed).
    pub fn total_weight(&self) -> i64 {
        self.total_weight
    }

    /// Exact frequency of one item.
    pub fn frequency(&self, item: u64) -> i64 {
        match &self.repr {
            Repr::Inline { entries, len } => entries[..usize::from(*len)]
                .iter()
                .find(|&&(x, _)| x == item)
                .map_or(0, |&(_, f)| f),
            Repr::Spilled(freqs) => freqs.get(&item).copied().unwrap_or(0),
        }
    }

    /// Items whose squared frequency is at least `phi · F_2`, sorted by
    /// decreasing frequency — the exact answer to the `F_2`-heavy-hitters
    /// query of Section 3.3.
    pub fn f2_heavy_hitters(&self, phi: f64) -> Vec<(u64, i64)> {
        let f2 = self.frequency_moment(2);
        let threshold = phi * f2;
        let mut out: Vec<(u64, i64)> = self
            .iter()
            .filter(|&(_, f)| {
                let fa = f.abs() as f64;
                fa * fa >= threshold
            })
            .collect();
        out.sort_by(|a, b| b.1.abs().cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        out
    }

    /// Rarity: the fraction of distinct items that occur exactly once
    /// (Section 3.3 of the paper).
    pub fn rarity(&self) -> f64 {
        let distinct = self.distinct_count();
        if distinct == 0 {
            return 0.0;
        }
        let singletons = self.iter().filter(|&(_, f)| f == 1).count();
        singletons as f64 / distinct as f64
    }

    /// Move an inline representation into the hash map with room for
    /// `capacity` entries (no-op when already spilled).
    fn spill(&mut self, capacity: usize) {
        if let Repr::Inline { entries, len } = &self.repr {
            let n = usize::from(*len);
            let mut freqs: HashMap<u64, i64, Fmix64Build> =
                HashMap::with_capacity_and_hasher(capacity.max(2 * INLINE_CAP), Fmix64Build);
            freqs.extend(entries[..n].iter().copied());
            self.repr = Repr::Spilled(freqs);
        }
    }

    /// Iterate over `(item, frequency)` pairs with non-zero frequency.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        let (inline, spilled) = match &self.repr {
            Repr::Inline { entries, len } => (Some(&entries[..usize::from(*len)]), None),
            Repr::Spilled(freqs) => (None, Some(freqs)),
        };
        inline
            .into_iter()
            .flatten()
            .copied()
            .chain(
                spilled
                    .into_iter()
                    .flat_map(|m| m.iter().map(|(&x, &f)| (x, f))),
            )
            .filter(|&(_, f)| f != 0)
    }
}

impl StreamSketch for ExactFrequencies {
    fn update(&mut self, item: u64, weight: i64) {
        if weight == 0 {
            return;
        }
        self.total_weight += weight;
        // (f + w)² − f² = (2f + w)·w, exact in i128; `square_delta` is
        // applied once the old frequency is known in the branch below.
        let square_delta =
            |old: i64| (2 * old as i128 + weight as i128) * weight as i128;
        match &mut self.repr {
            Repr::Inline { entries, len } => {
                let n = usize::from(*len);
                if let Some(i) = entries[..n].iter().position(|&(x, _)| x == item) {
                    self.sum_squares += square_delta(entries[i].1);
                    entries[i].1 += weight;
                    if entries[i].1 == 0 {
                        // Remove by swapping in the last live entry.
                        entries[i] = entries[n - 1];
                        *len -= 1;
                    }
                    return;
                }
                self.sum_squares += square_delta(0);
                if n < INLINE_CAP {
                    entries[n] = (item, weight);
                    *len += 1;
                    return;
                }
                // Spill: move the inline entries into a map, then insert.
                self.spill(2 * INLINE_CAP);
                if let Repr::Spilled(freqs) = &mut self.repr {
                    freqs.insert(item, weight);
                }
            }
            Repr::Spilled(freqs) => {
                let entry = freqs.entry(item).or_insert(0);
                self.sum_squares += square_delta(*entry);
                *entry += weight;
                if *entry == 0 {
                    freqs.remove(&item);
                }
            }
        }
    }
}

impl PointQuery for ExactFrequencies {
    fn frequency_estimate(&self, item: u64) -> f64 {
        self.frequency(item) as f64
    }
}

/// `estimate()` returns `F_2` — the moment the paper's experiments focus on —
/// so the exact structure can be dropped into any harness slot that expects an
/// `Estimate` for `F_2`. Use [`ExactFrequencies::frequency_moment`] for other k.
impl Estimate for ExactFrequencies {
    fn estimate(&self) -> f64 {
        self.frequency_moment(2)
    }
}

impl MergeableSketch for ExactFrequencies {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        // Pre-size for the combined vector: merging is the hot operation of
        // query-time composition and of sketch-level shard merges, and the
        // incremental path would otherwise spill mid-loop into an undersized
        // map and rehash repeatedly while it grows.
        let combined = self.stored_tuples() + other.stored_tuples();
        if combined > INLINE_CAP {
            self.spill(combined);
            if let Repr::Spilled(freqs) = &mut self.repr {
                freqs.reserve(other.stored_tuples());
            }
        }
        for (item, f) in other.iter() {
            self.update(item, f);
        }
        Ok(())
    }
}

impl SpaceUsage for ExactFrequencies {
    fn stored_tuples(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spilled(freqs) => freqs.len(),
        }
    }

    fn space_bytes(&self) -> usize {
        self.stored_tuples() * std::mem::size_of::<(u64, i64)>()
    }
}

/// Dummy error type kept for API symmetry in tests.
#[allow(dead_code)]
fn _unused(_e: SketchError) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_moments_small_example() {
        let mut e = ExactFrequencies::new();
        // Frequencies: a=3, b=2, c=1.
        for _ in 0..3 {
            e.insert(1);
        }
        for _ in 0..2 {
            e.insert(2);
        }
        e.insert(3);
        assert_eq!(e.frequency_moment(0), 3.0);
        assert_eq!(e.frequency_moment(1), 6.0);
        assert_eq!(e.frequency_moment(2), 14.0);
        assert_eq!(e.frequency_moment(3), 36.0);
        assert_eq!(e.total_weight(), 6);
        assert_eq!(e.distinct_count(), 3);
    }

    #[test]
    fn deletions_remove_items() {
        let mut e = ExactFrequencies::new();
        e.update(5, 4);
        e.update(5, -4);
        assert_eq!(e.frequency(5), 0);
        assert_eq!(e.distinct_count(), 0);
        assert_eq!(e.stored_tuples(), 0);
        assert_eq!(e.total_weight(), 0);
    }

    #[test]
    fn negative_frequencies_use_absolute_value_in_moments() {
        let mut e = ExactFrequencies::new();
        e.update(1, -3);
        assert_eq!(e.frequency_moment(2), 9.0);
        assert_eq!(e.frequency_moment(1), 3.0);
        assert_eq!(e.frequency_moment(0), 1.0);
    }

    #[test]
    fn heavy_hitters_exact() {
        let mut e = ExactFrequencies::new();
        e.update(1, 100);
        e.update(2, 10);
        e.update(3, 10);
        // F2 = 10000 + 100 + 100 = 10200. phi = 0.5 -> threshold 5100.
        let hh = e.f2_heavy_hitters(0.5);
        assert_eq!(hh, vec![(1, 100)]);
        // phi small enough to include everything.
        let all = e.f2_heavy_hitters(0.0001);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], (1, 100));
    }

    #[test]
    fn rarity_counts_singletons() {
        let mut e = ExactFrequencies::new();
        e.insert(1);
        e.insert(2);
        e.insert(2);
        e.insert(3);
        // Items: 1 (once), 2 (twice), 3 (once) -> rarity = 2/3.
        assert!((e.rarity() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ExactFrequencies::new().rarity(), 0.0);
    }

    #[test]
    fn merge_spills_inline_vectors_that_outgrow_the_inline_cap() {
        // Two inline vectors with disjoint items: the merge must cross the
        // inline→spilled boundary without losing entries or moments.
        let mut a = ExactFrequencies::new();
        let mut b = ExactFrequencies::new();
        for x in 0..7u64 {
            a.update(x, 2);
            b.update(100 + x, 3);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.stored_tuples(), 14);
        assert_eq!(a.frequency_moment(2), 7.0 * 4.0 + 7.0 * 9.0);
        assert_eq!(a.frequency(3), 2);
        assert_eq!(a.frequency(103), 3);
        // Spilled + inline merge keeps working in both directions.
        let mut c = ExactFrequencies::new();
        c.update(1, 1);
        c.merge_from(&a).unwrap();
        assert_eq!(c.frequency(1), 3);
        assert_eq!(c.stored_tuples(), 14);
    }

    #[test]
    fn merge_adds_frequency_vectors() {
        let mut a = ExactFrequencies::new();
        let mut b = ExactFrequencies::new();
        a.update(1, 5);
        a.update(2, 3);
        b.update(2, -3);
        b.update(3, 7);
        a.merge_from(&b).unwrap();
        assert_eq!(a.frequency(1), 5);
        assert_eq!(a.frequency(2), 0);
        assert_eq!(a.frequency(3), 7);
        assert_eq!(a.distinct_count(), 2);
    }

    #[test]
    fn estimate_is_f2() {
        let mut e = ExactFrequencies::new();
        e.update(1, 3);
        e.update(2, 4);
        assert_eq!(e.estimate(), 25.0);
    }

    #[test]
    fn iter_skips_zero_frequencies() {
        let mut e = ExactFrequencies::new();
        e.update(1, 2);
        e.update(2, 3);
        e.update(2, -3);
        let items: Vec<(u64, i64)> = e.iter().collect();
        assert_eq!(items, vec![(1, 2)]);
    }

    #[test]
    fn zero_weight_update_is_noop() {
        let mut e = ExactFrequencies::new();
        e.update(9, 0);
        assert_eq!(e.stored_tuples(), 0);
    }
}
