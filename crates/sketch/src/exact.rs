//! Exact (linear-space) aggregates.
//!
//! These are the "existing linear storage solutions" the paper's experiments
//! compare against, and the ground truth every test and accuracy report in
//! this workspace measures sketches against. [`ExactFrequencies`] stores the
//! full frequency vector; it answers any frequency moment, distinct count,
//! heavy-hitter or rarity query exactly.

use crate::error::{Result, SketchError};
use crate::traits::{Estimate, MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use std::collections::HashMap;

/// Exact frequency vector over `u64` item identifiers.
#[derive(Debug, Clone, Default)]
pub struct ExactFrequencies {
    freqs: HashMap<u64, i64>,
    total_weight: i64,
}

impl ExactFrequencies {
    /// Create an empty frequency vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of items with non-zero frequency (`F_0`).
    pub fn distinct_count(&self) -> usize {
        self.freqs.values().filter(|&&f| f != 0).count()
    }

    /// The k-th frequency moment `Σ |f_i|^k`. `F_0` is handled as the number
    /// of non-zero entries; `F_1` is the sum of absolute frequencies.
    pub fn frequency_moment(&self, k: u32) -> f64 {
        if k == 0 {
            return self.distinct_count() as f64;
        }
        self.freqs
            .values()
            .filter(|&&f| f != 0)
            .map(|&f| (f.abs() as f64).powi(k as i32))
            .sum()
    }

    /// Exact total weight `Σ f_i` (signed).
    pub fn total_weight(&self) -> i64 {
        self.total_weight
    }

    /// Exact frequency of one item.
    pub fn frequency(&self, item: u64) -> i64 {
        self.freqs.get(&item).copied().unwrap_or(0)
    }

    /// Items whose squared frequency is at least `phi · F_2`, sorted by
    /// decreasing frequency — the exact answer to the `F_2`-heavy-hitters
    /// query of Section 3.3.
    pub fn f2_heavy_hitters(&self, phi: f64) -> Vec<(u64, i64)> {
        let f2 = self.frequency_moment(2);
        let threshold = phi * f2;
        let mut out: Vec<(u64, i64)> = self
            .freqs
            .iter()
            .filter(|&(_, &f)| {
                let fa = f.abs() as f64;
                fa * fa >= threshold && f != 0
            })
            .map(|(&x, &f)| (x, f))
            .collect();
        out.sort_by(|a, b| b.1.abs().cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        out
    }

    /// Rarity: the fraction of distinct items that occur exactly once
    /// (Section 3.3 of the paper).
    pub fn rarity(&self) -> f64 {
        let distinct = self.distinct_count();
        if distinct == 0 {
            return 0.0;
        }
        let singletons = self.freqs.values().filter(|&&f| f == 1).count();
        singletons as f64 / distinct as f64
    }

    /// Iterate over `(item, frequency)` pairs with non-zero frequency.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.freqs
            .iter()
            .filter(|&(_, &f)| f != 0)
            .map(|(&x, &f)| (x, f))
    }
}

impl StreamSketch for ExactFrequencies {
    fn update(&mut self, item: u64, weight: i64) {
        if weight == 0 {
            return;
        }
        let entry = self.freqs.entry(item).or_insert(0);
        *entry += weight;
        if *entry == 0 {
            self.freqs.remove(&item);
        }
        self.total_weight += weight;
    }
}

impl PointQuery for ExactFrequencies {
    fn frequency_estimate(&self, item: u64) -> f64 {
        self.frequency(item) as f64
    }
}

/// `estimate()` returns `F_2` — the moment the paper's experiments focus on —
/// so the exact structure can be dropped into any harness slot that expects an
/// `Estimate` for `F_2`. Use [`ExactFrequencies::frequency_moment`] for other k.
impl Estimate for ExactFrequencies {
    fn estimate(&self) -> f64 {
        self.frequency_moment(2)
    }
}

impl MergeableSketch for ExactFrequencies {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        for (&item, &f) in &other.freqs {
            self.update(item, f);
        }
        Ok(())
    }
}

impl SpaceUsage for ExactFrequencies {
    fn stored_tuples(&self) -> usize {
        self.freqs.len()
    }

    fn space_bytes(&self) -> usize {
        self.freqs.len() * std::mem::size_of::<(u64, i64)>()
    }
}

/// Dummy error type kept for API symmetry in tests.
#[allow(dead_code)]
fn _unused(_e: SketchError) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_moments_small_example() {
        let mut e = ExactFrequencies::new();
        // Frequencies: a=3, b=2, c=1.
        for _ in 0..3 {
            e.insert(1);
        }
        for _ in 0..2 {
            e.insert(2);
        }
        e.insert(3);
        assert_eq!(e.frequency_moment(0), 3.0);
        assert_eq!(e.frequency_moment(1), 6.0);
        assert_eq!(e.frequency_moment(2), 14.0);
        assert_eq!(e.frequency_moment(3), 36.0);
        assert_eq!(e.total_weight(), 6);
        assert_eq!(e.distinct_count(), 3);
    }

    #[test]
    fn deletions_remove_items() {
        let mut e = ExactFrequencies::new();
        e.update(5, 4);
        e.update(5, -4);
        assert_eq!(e.frequency(5), 0);
        assert_eq!(e.distinct_count(), 0);
        assert_eq!(e.stored_tuples(), 0);
        assert_eq!(e.total_weight(), 0);
    }

    #[test]
    fn negative_frequencies_use_absolute_value_in_moments() {
        let mut e = ExactFrequencies::new();
        e.update(1, -3);
        assert_eq!(e.frequency_moment(2), 9.0);
        assert_eq!(e.frequency_moment(1), 3.0);
        assert_eq!(e.frequency_moment(0), 1.0);
    }

    #[test]
    fn heavy_hitters_exact() {
        let mut e = ExactFrequencies::new();
        e.update(1, 100);
        e.update(2, 10);
        e.update(3, 10);
        // F2 = 10000 + 100 + 100 = 10200. phi = 0.5 -> threshold 5100.
        let hh = e.f2_heavy_hitters(0.5);
        assert_eq!(hh, vec![(1, 100)]);
        // phi small enough to include everything.
        let all = e.f2_heavy_hitters(0.0001);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], (1, 100));
    }

    #[test]
    fn rarity_counts_singletons() {
        let mut e = ExactFrequencies::new();
        e.insert(1);
        e.insert(2);
        e.insert(2);
        e.insert(3);
        // Items: 1 (once), 2 (twice), 3 (once) -> rarity = 2/3.
        assert!((e.rarity() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ExactFrequencies::new().rarity(), 0.0);
    }

    #[test]
    fn merge_adds_frequency_vectors() {
        let mut a = ExactFrequencies::new();
        let mut b = ExactFrequencies::new();
        a.update(1, 5);
        a.update(2, 3);
        b.update(2, -3);
        b.update(3, 7);
        a.merge_from(&b).unwrap();
        assert_eq!(a.frequency(1), 5);
        assert_eq!(a.frequency(2), 0);
        assert_eq!(a.frequency(3), 7);
        assert_eq!(a.distinct_count(), 2);
    }

    #[test]
    fn estimate_is_f2() {
        let mut e = ExactFrequencies::new();
        e.update(1, 3);
        e.update(2, 4);
        assert_eq!(e.estimate(), 25.0);
    }

    #[test]
    fn iter_skips_zero_frequencies() {
        let mut e = ExactFrequencies::new();
        e.update(1, 2);
        e.update(2, 3);
        e.update(2, -3);
        let items: Vec<(u64, i64)> = e.iter().collect();
        assert_eq!(items, vec![(1, 2)]);
    }

    #[test]
    fn zero_weight_update_is_noop() {
        let mut e = ExactFrequencies::new();
        e.update(9, 0);
        assert_eq!(e.stored_tuples(), 0);
    }
}
