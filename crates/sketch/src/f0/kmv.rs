//! Bottom-k ("k minimum values") distinct counting.
//!
//! Keep the `k` smallest hash values seen; if the k-th smallest is `v_k` (as a
//! fraction of the hash range), the number of distinct items is estimated as
//! `(k − 1) / v_k`. Standard analysis gives relative error `O(1/√k)`.
//! Merging two KMV sketches keeps the `k` smallest of the union.

use crate::error::{check_epsilon, Result, SketchError};
use crate::traits::{Estimate, MergeableSketch, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use std::collections::BTreeSet;

/// Bottom-k distinct-count estimator.
#[derive(Debug, Clone)]
pub struct KmvSketch {
    hash: PolynomialHash,
    /// The k smallest (hash, item) pairs seen so far; the item is kept so the
    /// sketch doubles as a uniform sample of distinct identifiers.
    smallest: BTreeSet<(u64, u64)>,
    k: usize,
    seed: u64,
}

impl KmvSketch {
    /// Create a KMV sketch keeping the `k` smallest hash values.
    ///
    /// # Panics
    /// Panics if `k < 2` (the estimator needs at least two values).
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "KMV requires k >= 2");
        Self {
            hash: PolynomialHash::new(2, derive_seed(seed, 0x6B37)),
            smallest: BTreeSet::new(),
            k,
            seed,
        }
    }

    /// Build a sketch targeting relative error `epsilon` (k = ⌈4/ε²⌉).
    pub fn with_epsilon(epsilon: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        let k = ((4.0 / (epsilon * epsilon)).ceil() as usize).max(2);
        Ok(Self::new(k, seed))
    }

    /// The number of minimum values retained.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The distinct identifiers currently retained (a uniform sample of the
    /// distinct items when the sketch is full).
    pub fn sample(&self) -> impl Iterator<Item = u64> + '_ {
        self.smallest.iter().map(|&(_, item)| item)
    }
}

impl StreamSketch for KmvSketch {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "KMV only supports insertions");
        if weight == 0 {
            return;
        }
        let h = self.hash.hash64(item);
        self.smallest.insert((h, item));
        while self.smallest.len() > self.k {
            let last = *self
                .smallest
                .iter()
                .next_back()
                .expect("non-empty by construction");
            self.smallest.remove(&last);
        }
    }
}

impl Estimate for KmvSketch {
    fn estimate(&self) -> f64 {
        let n = self.smallest.len();
        if n < self.k {
            // Not yet full: the sample *is* the distinct set.
            return n as f64;
        }
        let (kth_hash, _) = *self
            .smallest
            .iter()
            .next_back()
            .expect("sketch is full, so non-empty");
        // Normalise to (0, 1]; guard against a pathological zero hash.
        let v_k = (kth_hash as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / v_k
    }
}

impl MergeableSketch for KmvSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.k != other.k || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "KMV mismatch: (k {}, seed {:#x}) vs (k {}, seed {:#x})",
                    self.k, self.seed, other.k, other.seed
                ),
            });
        }
        for &pair in &other.smallest {
            self.smallest.insert(pair);
        }
        while self.smallest.len() > self.k {
            let last = *self
                .smallest
                .iter()
                .next_back()
                .expect("non-empty by construction");
            self.smallest.remove(&last);
        }
        Ok(())
    }
}

impl SpaceUsage for KmvSketch {
    fn stored_tuples(&self) -> usize {
        self.smallest.len()
    }

    fn space_bytes(&self) -> usize {
        self.smallest.len() * std::mem::size_of::<(u64, u64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    #[test]
    #[should_panic(expected = "KMV requires k >= 2")]
    fn tiny_k_panics() {
        let _ = KmvSketch::new(1, 1);
    }

    #[test]
    fn exact_when_not_full() {
        let mut s = KmvSketch::new(100, 1);
        for x in 0..50u64 {
            s.insert(x);
            s.insert(x);
        }
        assert_eq!(s.estimate(), 50.0);
    }

    #[test]
    fn accuracy_on_large_stream() {
        let mut s = KmvSketch::with_epsilon(0.05, 7).unwrap();
        let n = 500_000u64;
        for x in 0..n {
            s.insert(x);
        }
        let err = relative_error(s.estimate(), n as f64);
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn duplicates_ignored() {
        let mut s = KmvSketch::new(64, 3);
        for _ in 0..5 {
            for x in 0..10_000u64 {
                s.insert(x);
            }
        }
        let err = relative_error(s.estimate(), 10_000.0);
        assert!(err < 0.3, "relative error {err}");
    }

    #[test]
    fn merge_equals_single_pass() {
        let seed = 11;
        let mut a = KmvSketch::new(256, seed);
        let mut b = KmvSketch::new(256, seed);
        let mut both = KmvSketch::new(256, seed);
        for x in 0..100_000u64 {
            if x % 2 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
            both.insert(x);
        }
        a.merge_from(&b).unwrap();
        // Deterministic: keeping the k smallest of a union is order-independent.
        assert_eq!(a.estimate(), both.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = KmvSketch::new(64, 1);
        let b = KmvSketch::new(64, 2);
        let c = KmvSketch::new(128, 1);
        assert!(a.merge_from(&b).is_err());
        assert!(a.merge_from(&c).is_err());
    }

    #[test]
    fn sample_holds_distinct_items() {
        let mut s = KmvSketch::new(32, 5);
        for x in 0..1000u64 {
            s.insert(x);
        }
        let sample: Vec<u64> = s.sample().collect();
        assert_eq!(sample.len(), 32);
        for &x in &sample {
            assert!(x < 1000);
        }
    }

    #[test]
    fn space_bounded_by_k() {
        let mut s = KmvSketch::new(16, 1);
        for x in 0..10_000u64 {
            s.insert(x);
        }
        assert_eq!(s.stored_tuples(), 16);
        assert_eq!(s.space_bytes(), 16 * 16);
    }

    #[test]
    fn estimate_zero_when_empty() {
        let s = KmvSketch::new(8, 1);
        assert_eq!(s.estimate(), 0.0);
    }
}
