//! Distinct-counting (`F_0`) summaries.
//!
//! Three estimators with different trade-offs:
//!
//! * [`distinct_sampler::DistinctSampler`] / [`distinct_sampler::F0Sketch`] —
//!   the Gibbons–Tirthapura adaptive distinct sampler the paper builds its
//!   correlated `F_0` algorithm on (Section 3.2). Keeps an actual sample of
//!   item identifiers, which is exactly what the correlated variant needs to
//!   attach y-values to.
//! * [`kmv::KmvSketch`] — bottom-k ("k minimum values") estimator; smallest
//!   constant factors, used by the `F_k` estimator's level selection ablation
//!   and as an independent cross-check in tests.
//! * [`flajolet_martin::FlajoletMartin`] — probabilistic counting (PCSA),
//!   mentioned by the paper as an alternative basis ("other methods for
//!   estimating distinct elements may also be adapted to work here, such as
//!   the variant of the algorithm due to Flajolet and Martin").

pub mod distinct_sampler;
pub mod flajolet_martin;
pub mod kmv;

pub use distinct_sampler::{DistinctSampler, F0Sketch};
pub use flajolet_martin::FlajoletMartin;
pub use kmv::KmvSketch;
