//! Adaptive distinct sampling (Gibbons & Tirthapura, SPAA 2001 / ToCS 2004).
//!
//! A [`DistinctSampler`] keeps a uniform sample of the *distinct* item
//! identifiers seen so far: an item belongs to the sample at level `ℓ` iff its
//! hash falls below `2^{-ℓ}`. The sampler starts at level 0 (keep everything);
//! whenever the sample exceeds its capacity the level is incremented and the
//! sample re-filtered. The estimate of the number of distinct items is
//! `|sample| · 2^{level}`.
//!
//! [`F0Sketch`] runs `O(log 1/δ)` independent samplers and returns the median
//! estimate, giving the standard `(ε, δ)` guarantee with capacity `O(1/ε²)`.
//!
//! Both structures are mergeable (same seed ⇒ same hash ⇒ the union sample at
//! the maximum of the two levels is exactly what a single-pass run would have
//! kept, modulo capacity-driven level bumps).
//!
//! The correlated version of this structure (per Section 3.2 of the paper,
//! with y-priority eviction instead of level bumps) lives in
//! `cora-core::f0`; this module is the whole-stream substrate.

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::estimator_util::median;
use crate::traits::{Estimate, MergeableSketch, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use std::collections::HashSet;

/// A single adaptive distinct sampler.
#[derive(Debug, Clone)]
pub struct DistinctSampler {
    hash: PolynomialHash,
    sample: HashSet<u64>,
    level: u32,
    capacity: usize,
    seed: u64,
}

impl DistinctSampler {
    /// Create a sampler that keeps at most `capacity` distinct identifiers.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "DistinctSampler capacity must be positive");
        Self {
            hash: PolynomialHash::new(2, derive_seed(seed, 0xD157)),
            sample: HashSet::with_capacity(capacity.min(1 << 16)),
            level: 0,
            capacity,
            seed,
        }
    }

    /// Current sampling level (items kept with probability `2^{-level}`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of identifiers currently in the sample.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `item` would be sampled at level `level` under this sampler's
    /// hash function.
    #[inline]
    pub fn sampled_at(&self, item: u64, level: u32) -> bool {
        // Use the top `level` bits: all zero <=> hash < 2^{64-level}, i.e.
        // probability 2^{-level}. Level 0 accepts everything.
        if level == 0 {
            return true;
        }
        let h = self.hash.hash64(item);
        (h >> (64 - level.min(63))) == 0
    }

    fn enforce_capacity(&mut self) {
        while self.sample.len() > self.capacity {
            self.level += 1;
            let level = self.level;
            // Borrow checker: collect survivors then replace.
            let survivors: HashSet<u64> = self
                .sample
                .iter()
                .copied()
                .filter(|&x| self.sampled_at(x, level))
                .collect();
            self.sample = survivors;
            if self.level >= 63 {
                break;
            }
        }
    }
}

impl StreamSketch for DistinctSampler {
    fn update(&mut self, item: u64, weight: i64) {
        // F0 ignores multiplicity; deletions are not supported in this model.
        debug_assert!(weight >= 0, "DistinctSampler only supports insertions");
        if weight == 0 {
            return;
        }
        if self.sampled_at(item, self.level) {
            self.sample.insert(item);
            self.enforce_capacity();
        }
    }
}

impl Estimate for DistinctSampler {
    fn estimate(&self) -> f64 {
        (self.sample.len() as f64) * 2f64.powi(self.level as i32)
    }
}

impl MergeableSketch for DistinctSampler {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "DistinctSampler mismatch: (cap {}, seed {:#x}) vs (cap {}, seed {:#x})",
                    self.capacity, self.seed, other.capacity, other.seed
                ),
            });
        }
        let target_level = self.level.max(other.level);
        let level = target_level;
        self.level = target_level;
        let mut merged: HashSet<u64> = HashSet::with_capacity(self.capacity);
        for &x in self.sample.iter().chain(other.sample.iter()) {
            if self.sampled_at(x, level) {
                merged.insert(x);
            }
        }
        self.sample = merged;
        self.enforce_capacity();
        Ok(())
    }
}

impl SpaceUsage for DistinctSampler {
    fn stored_tuples(&self) -> usize {
        self.sample.len()
    }

    fn space_bytes(&self) -> usize {
        self.sample.len() * std::mem::size_of::<u64>()
    }
}

/// `(ε, δ)` estimator for the number of distinct elements: the median of
/// `O(log 1/δ)` independent [`DistinctSampler`]s with capacity `O(1/ε²)`.
#[derive(Debug, Clone)]
pub struct F0Sketch {
    samplers: Vec<DistinctSampler>,
    seed: u64,
}

impl F0Sketch {
    /// Build an `F_0` sketch with relative error `epsilon` and failure
    /// probability `delta`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        let capacity = ((24.0 / (epsilon * epsilon)).ceil() as usize).max(8);
        let instances = crate::estimator_util::repetitions_for_delta(delta);
        Ok(Self::with_dimensions(capacity, instances, seed))
    }

    /// Build with explicit per-sampler capacity and number of instances.
    pub fn with_dimensions(capacity: usize, instances: usize, seed: u64) -> Self {
        let instances = instances.max(1);
        let samplers = (0..instances)
            .map(|i| DistinctSampler::new(capacity, derive_seed(seed, i as u64)))
            .collect();
        Self { samplers, seed }
    }

    /// Number of independent sampler instances.
    pub fn instances(&self) -> usize {
        self.samplers.len()
    }
}

impl StreamSketch for F0Sketch {
    fn update(&mut self, item: u64, weight: i64) {
        for s in &mut self.samplers {
            s.update(item, weight);
        }
    }
}

impl Estimate for F0Sketch {
    fn estimate(&self) -> f64 {
        let estimates: Vec<f64> = self.samplers.iter().map(Estimate::estimate).collect();
        median(&estimates).unwrap_or(0.0)
    }
}

impl MergeableSketch for F0Sketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.samplers.len() != other.samplers.len() || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: "F0Sketch instance count or seed mismatch".to_string(),
            });
        }
        for (a, b) in self.samplers.iter_mut().zip(other.samplers.iter()) {
            a.merge_from(b)?;
        }
        Ok(())
    }
}

impl SpaceUsage for F0Sketch {
    fn stored_tuples(&self) -> usize {
        self.samplers.iter().map(SpaceUsage::stored_tuples).sum()
    }

    fn space_bytes(&self) -> usize {
        self.samplers.iter().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DistinctSampler::new(0, 1);
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = DistinctSampler::new(1000, 3);
        for x in 0..500u64 {
            s.insert(x);
            s.insert(x); // duplicates must not inflate the sample
        }
        assert_eq!(s.level(), 0);
        assert_eq!(s.estimate(), 500.0);
    }

    #[test]
    fn duplicates_do_not_change_estimate() {
        let mut s = DistinctSampler::new(64, 5);
        for _ in 0..10 {
            for x in 0..1000u64 {
                s.insert(x);
            }
        }
        let first = s.estimate();
        for _ in 0..10 {
            for x in 0..1000u64 {
                s.insert(x);
            }
        }
        assert_eq!(s.estimate(), first);
    }

    #[test]
    fn level_increases_under_pressure() {
        let mut s = DistinctSampler::new(32, 7);
        for x in 0..10_000u64 {
            s.insert(x);
        }
        assert!(s.level() > 0);
        assert!(s.sample_size() <= 32);
    }

    #[test]
    fn estimate_accuracy_single_sampler() {
        // One sampler with a generous capacity: relative error ~ 1/sqrt(cap).
        let mut s = DistinctSampler::new(4096, 11);
        let n = 200_000u64;
        for x in 0..n {
            s.insert(x);
        }
        let err = relative_error(s.estimate(), n as f64);
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn f0_sketch_accuracy() {
        let mut s = F0Sketch::new(0.1, 0.05, 42).unwrap();
        let n = 100_000u64;
        for x in 0..n {
            // Insert each item a variable number of times.
            for _ in 0..(x % 3 + 1) {
                s.insert(x);
            }
        }
        let err = relative_error(s.estimate(), n as f64);
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn f0_sketch_parameter_validation() {
        assert!(F0Sketch::new(0.0, 0.1, 1).is_err());
        assert!(F0Sketch::new(0.1, 1.0, 1).is_err());
    }

    #[test]
    fn empty_estimates_zero() {
        let s = F0Sketch::with_dimensions(64, 5, 1);
        assert_eq!(s.estimate(), 0.0);
        let d = DistinctSampler::new(16, 1);
        assert_eq!(d.estimate(), 0.0);
    }

    #[test]
    fn merge_equals_union_semantics() {
        let seed = 9;
        let mut a = DistinctSampler::new(256, seed);
        let mut b = DistinctSampler::new(256, seed);
        let mut both = DistinctSampler::new(256, seed);
        for x in 0..5_000u64 {
            if x % 2 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
            both.insert(x);
        }
        a.merge_from(&b).unwrap();
        // The merged sampler's estimate should be close to the single-pass
        // sampler's estimate (identical levels and hash ⇒ identical samples,
        // except capacity bumps may fire in a different order).
        let e_merged = a.estimate();
        let e_single = both.estimate();
        assert!(
            relative_error(e_merged, e_single) < 0.25,
            "merged {e_merged} vs single {e_single}"
        );
        assert!(relative_error(e_merged, 5_000.0) < 0.25);
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let mut a = DistinctSampler::new(64, 1);
        let b = DistinctSampler::new(64, 2);
        assert!(a.merge_from(&b).is_err());
        let mut fa = F0Sketch::with_dimensions(64, 3, 1);
        let fb = F0Sketch::with_dimensions(64, 3, 2);
        assert!(fa.merge_from(&fb).is_err());
    }

    #[test]
    fn f0_sketch_merge_matches_single_pass() {
        let seed = 77;
        let mut a = F0Sketch::with_dimensions(512, 5, seed);
        let mut b = F0Sketch::with_dimensions(512, 5, seed);
        let mut both = F0Sketch::with_dimensions(512, 5, seed);
        for x in 0..20_000u64 {
            if x % 3 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
            both.insert(x);
        }
        a.merge_from(&b).unwrap();
        let err = relative_error(a.estimate(), both.estimate());
        assert!(err < 0.2, "merged vs single-pass differ by {err}");
    }

    #[test]
    fn sampling_probability_halves_per_level() {
        let s = DistinctSampler::new(16, 13);
        let n = 100_000u64;
        let l1 = (0..n).filter(|&x| s.sampled_at(x, 1)).count() as f64 / n as f64;
        let l3 = (0..n).filter(|&x| s.sampled_at(x, 3)).count() as f64 / n as f64;
        assert!((l1 - 0.5).abs() < 0.02, "level-1 rate {l1}");
        assert!((l3 - 0.125).abs() < 0.01, "level-3 rate {l3}");
    }

    #[test]
    fn space_accounting_tracks_sample() {
        let mut s = DistinctSampler::new(100, 1);
        for x in 0..50u64 {
            s.insert(x);
        }
        assert_eq!(s.stored_tuples(), 50);
        assert_eq!(s.space_bytes(), 400);
    }
}
