//! Probabilistic counting with stochastic averaging (Flajolet & Martin, 1985),
//! the "PCSA" bitmap estimator for the number of distinct elements.
//!
//! Each of `m` bitmaps records, for the items routed to it, which geometric
//! levels (number of trailing one-bits of the item's hash) have been observed.
//! The average position of the lowest unset bit `R̄` across bitmaps yields the
//! estimate `m · 2^{R̄} / φ` with `φ ≈ 0.77351`. Relative error is about
//! `0.78 / √m`.
//!
//! Included because the paper explicitly cites it as an alternative substrate
//! for correlated `F_0`; it is exercised by the ablation benchmark comparing
//! distinct-count substrates.

use crate::error::{check_epsilon, Result, SketchError};
use crate::traits::{Estimate, MergeableSketch, SpaceUsage, StreamSketch};
use cora_hash::mix::{derive_seed, fmix64};
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;

/// The Flajolet–Martin magic constant `φ`.
const PHI: f64 = 0.77351;

/// PCSA distinct-count estimator with `m` bitmaps of 64 bits each.
#[derive(Debug, Clone)]
pub struct FlajoletMartin {
    route_hash: PolynomialHash,
    level_hash: PolynomialHash,
    bitmaps: Vec<u64>,
    seed: u64,
}

impl FlajoletMartin {
    /// Create an estimator with `m` bitmaps (relative error ≈ 0.78/√m).
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m > 0, "FlajoletMartin needs at least one bitmap");
        Self {
            route_hash: PolynomialHash::new(2, derive_seed(seed, 0xF1A)),
            level_hash: PolynomialHash::new(2, derive_seed(seed, 0xF1B)),
            bitmaps: vec![0; m],
            seed,
        }
    }

    /// Build an estimator targeting relative error `epsilon`.
    pub fn with_epsilon(epsilon: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        let m = ((0.78 / epsilon).powi(2).ceil() as usize).max(1);
        Ok(Self::new(m, seed))
    }

    /// Number of bitmaps.
    pub fn bitmaps(&self) -> usize {
        self.bitmaps.len()
    }
}

impl StreamSketch for FlajoletMartin {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "FlajoletMartin only supports insertions");
        if weight == 0 {
            return;
        }
        let m = self.bitmaps.len() as u64;
        let bucket = self.route_hash.hash_range(item, m) as usize;
        // A degree-1 polynomial maps sequential keys to an arithmetic
        // progression mod p, whose trailing-bit patterns are far from
        // geometric; the fmix64 bijection breaks that structure without
        // affecting the family's independence.
        let level = fmix64(self.level_hash.hash64(item)).trailing_ones().min(63);
        self.bitmaps[bucket] |= 1u64 << level;
    }
}

impl Estimate for FlajoletMartin {
    fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        if self.bitmaps.iter().all(|&b| b == 0) {
            return 0.0;
        }
        let total_r: f64 = self
            .bitmaps
            .iter()
            .map(|&b| b.trailing_ones() as f64)
            .sum();
        let mean_r = total_r / m;
        m * 2f64.powf(mean_r) / PHI
    }
}

impl MergeableSketch for FlajoletMartin {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.bitmaps.len() != other.bitmaps.len() || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: "FlajoletMartin bitmap count or seed mismatch".into(),
            });
        }
        for (a, b) in self.bitmaps.iter_mut().zip(other.bitmaps.iter()) {
            *a |= b;
        }
        Ok(())
    }
}

impl SpaceUsage for FlajoletMartin {
    fn stored_tuples(&self) -> usize {
        self.bitmaps.len()
    }

    fn space_bytes(&self) -> usize {
        self.bitmaps.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    #[test]
    #[should_panic(expected = "at least one bitmap")]
    fn zero_bitmaps_panics() {
        let _ = FlajoletMartin::new(0, 1);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = FlajoletMartin::new(64, 1);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn accuracy_on_large_stream() {
        let mut s = FlajoletMartin::new(256, 7);
        let n = 200_000u64;
        for x in 0..n {
            s.insert(x);
        }
        // PCSA's small-constant bias (no small-range correction is applied)
        // plus the 0.78/sqrt(m) standard error put the practical accuracy of
        // 256 bitmaps around 10-20%.
        let err = relative_error(s.estimate(), n as f64);
        assert!(err < 0.25, "relative error {err}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = FlajoletMartin::new(128, 9);
        for _ in 0..20 {
            for x in 0..5_000u64 {
                s.insert(x);
            }
        }
        let err = relative_error(s.estimate(), 5_000.0);
        assert!(err < 0.25, "relative error {err}");
    }

    #[test]
    fn merge_is_bitmap_or() {
        let seed = 3;
        let mut a = FlajoletMartin::new(64, seed);
        let mut b = FlajoletMartin::new(64, seed);
        let mut both = FlajoletMartin::new(64, seed);
        for x in 0..50_000u64 {
            if x % 2 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
            both.insert(x);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.estimate(), both.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = FlajoletMartin::new(64, 1);
        let b = FlajoletMartin::new(32, 1);
        let c = FlajoletMartin::new(64, 2);
        assert!(a.merge_from(&b).is_err());
        assert!(a.merge_from(&c).is_err());
    }

    #[test]
    fn with_epsilon_sizes_bitmaps() {
        let s = FlajoletMartin::with_epsilon(0.1, 1).unwrap();
        assert!(s.bitmaps() >= 60, "expected ~61 bitmaps, got {}", s.bitmaps());
        assert!(FlajoletMartin::with_epsilon(0.0, 1).is_err());
    }

    #[test]
    fn space_is_constant() {
        let mut s = FlajoletMartin::new(32, 1);
        for x in 0..100_000u64 {
            s.insert(x);
        }
        assert_eq!(s.stored_tuples(), 32);
        assert_eq!(s.space_bytes(), 256);
    }
}
