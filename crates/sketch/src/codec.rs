//! Binary state-codec primitives for snapshot persistence.
//!
//! The workspace builds offline (no `serde`/`bincode`), so snapshots use the
//! same hand-rolled philosophy as `cora_stream::json`, but binary: a compact
//! little-endian, length-prefixed format written through [`ByteWriter`] and
//! read back through [`ByteReader`]. Sketches implement [`StateCodec`] to
//! serialise their *counter state only* — hash functions are deterministic
//! functions of the construction parameters (dimensions + seed), so a
//! snapshot is decoded **into a freshly constructed, same-seeded sketch**
//! rather than carrying coefficient tables. The encoder writes the
//! dimensions/seed anyway and the decoder verifies them, so restoring into a
//! mismatched sketch fails loudly instead of silently mixing hash families.
//!
//! Framing (magic, version, checksum) is layered on top by
//! `cora_core::snapshot`; this module is only the byte-level vocabulary
//! shared by every crate that persists state.

use crate::count_sketch::CountSketch;
use crate::exact::ExactFrequencies;
use crate::fast_ams::FastAmsSketch;
use crate::traits::{SpaceUsage, StreamSketch};
use std::fmt;

/// Errors produced while decoding snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the expected value was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The bytes decoded but describe an impossible or mismatched state.
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {available} available"
            ),
            CodecError::Corrupt(detail) => write!(f, "snapshot corrupt: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// FNV-1a 64-bit hash over a byte slice — the snapshot payload checksum.
///
/// Not cryptographic; it guards against torn writes, truncation, and bit rot,
/// which is all a local snapshot file needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (snapshots are portable across pointer
    /// widths).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// including NaN payloads — these are gating weights, not display
    /// values).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `Option<u64>` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append raw bytes (no length prefix; pair with [`Self::put_len`]).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// A cursor over snapshot bytes with checked little-endian reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (rejecting anything but 0/1).
    pub fn get_bool(&mut self) -> CodecResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Read a length written by [`ByteWriter::put_len`]. Only the `usize`
    /// conversion is checked here; when the length drives an allocation,
    /// prefer [`Self::get_count`], which also bounds it by the remaining
    /// input.
    pub fn get_len(&mut self) -> CodecResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CodecError::Corrupt(format!("length {v} exceeds the address space")))
    }

    /// Read an element count whose elements occupy at least
    /// `min_entry_bytes` each, rejecting counts the remaining input cannot
    /// possibly hold — so a corrupt (or forged-checksum) length can never
    /// drive a huge up-front allocation.
    pub fn get_count(&mut self, min_entry_bytes: usize) -> CodecResult<usize> {
        let n = self.get_len()?;
        let needed = n.saturating_mul(min_entry_bytes.max(1));
        if needed > self.remaining() {
            return Err(CodecError::Corrupt(format!(
                "count {n} needs at least {needed} bytes, {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an `Option<u64>`.
    pub fn get_opt_u64(&mut self) -> CodecResult<Option<u64>> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }

    /// Require that every byte was consumed (payloads are exact-length).
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Corrupt(format!(
                "{} unexpected trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Counter-state serialisation for a sketch.
///
/// `encode_state` writes the sketch's dimensions/seed and its counter state;
/// `decode_state` is called on a **freshly constructed sketch with the same
/// construction parameters** (hash functions are re-derived from the seed,
/// never serialised) and fails if the encoded dimensions or seed differ.
/// After a successful decode the sketch answers every query bit-identically
/// to the encoded one.
pub trait StateCodec {
    /// Serialise dimensions, seed, and counter state.
    fn encode_state(&self, w: &mut ByteWriter);

    /// Load state encoded by [`Self::encode_state`] into `self` (freshly
    /// constructed, same parameters).
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()>;
}

/// Verify an encoded `(name, actual)` dimension pair.
pub(crate) fn check_dim(name: &str, encoded: u64, actual: u64) -> CodecResult<()> {
    if encoded != actual {
        return Err(CodecError::Corrupt(format!(
            "{name} mismatch: snapshot has {encoded}, receiving sketch has {actual}"
        )));
    }
    Ok(())
}

impl StateCodec for ExactFrequencies {
    fn encode_state(&self, w: &mut ByteWriter) {
        // Entries sorted by item: the in-memory map order is arbitrary, the
        // wire order must not be (snapshots of equal states are equal bytes).
        let mut entries: Vec<(u64, i64)> = self.iter().collect();
        entries.sort_unstable_by_key(|&(item, _)| item);
        w.put_len(entries.len());
        for (item, f) in entries {
            w.put_u64(item);
            w.put_i64(f);
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()> {
        if self.stored_tuples() != 0 {
            return Err(CodecError::Corrupt(
                "ExactFrequencies::decode_state requires an empty receiver".into(),
            ));
        }
        let n = r.get_len()?;
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let item = r.get_u64()?;
            if prev.is_some_and(|p| p >= item) {
                return Err(CodecError::Corrupt(
                    "ExactFrequencies entries out of order".into(),
                ));
            }
            prev = Some(item);
            let f = r.get_i64()?;
            if f == 0 {
                return Err(CodecError::Corrupt(
                    "ExactFrequencies entry with zero frequency".into(),
                ));
            }
            self.update(item, f);
        }
        Ok(())
    }
}

impl StateCodec for FastAmsSketch {
    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.width() as u64);
        w.put_u64(self.depth() as u64);
        w.put_u64(self.seed());
        for row in self.row_counters() {
            // A zero sum of squares means every counter is zero: skip the row.
            let empty = row.iter().all(|&c| c == 0);
            w.put_bool(empty);
            if !empty {
                for &c in row {
                    w.put_i64(c);
                }
            }
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()> {
        check_dim("FastAMS width", r.get_u64()?, self.width() as u64)?;
        check_dim("FastAMS depth", r.get_u64()?, self.depth() as u64)?;
        check_dim("FastAMS seed", r.get_u64()?, self.seed())?;
        let width = self.width();
        let depth = self.depth();
        let mut rows: Vec<Option<Vec<i64>>> = Vec::with_capacity(depth);
        for _ in 0..depth {
            if r.get_bool()? {
                rows.push(None);
            } else {
                let mut counters = Vec::with_capacity(width);
                for _ in 0..width {
                    counters.push(r.get_i64()?);
                }
                rows.push(Some(counters));
            }
        }
        self.load_row_counters(&rows);
        Ok(())
    }
}

impl StateCodec for CountSketch {
    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.width() as u64);
        w.put_u64(self.depth() as u64);
        w.put_u64(self.seed());
        w.put_u64(self.candidate_capacity() as u64);
        let counters = self.raw_counters();
        let empty = counters.iter().all(|&c| c == 0);
        w.put_bool(empty);
        if !empty {
            for &c in counters {
                w.put_i64(c);
            }
        }
        let mut cands: Vec<(u64, i64)> = self.raw_candidates();
        cands.sort_unstable_by_key(|&(item, _)| item);
        w.put_len(cands.len());
        for (item, est) in cands {
            w.put_u64(item);
            w.put_i64(est);
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> CodecResult<()> {
        check_dim("CountSketch width", r.get_u64()?, self.width() as u64)?;
        check_dim("CountSketch depth", r.get_u64()?, self.depth() as u64)?;
        check_dim("CountSketch seed", r.get_u64()?, self.seed())?;
        check_dim(
            "CountSketch candidate capacity",
            r.get_u64()?,
            self.candidate_capacity() as u64,
        )?;
        let n = self.width() * self.depth();
        let counters = if r.get_bool()? {
            vec![0i64; n]
        } else {
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                counters.push(r.get_i64()?);
            }
            counters
        };
        let cap = self.candidate_capacity();
        let m = r.get_len()?;
        if m > cap {
            return Err(CodecError::Corrupt(format!(
                "CountSketch candidate set size {m} exceeds capacity {cap}"
            )));
        }
        let mut cands = Vec::with_capacity(m);
        for _ in 0..m {
            cands.push((r.get_u64()?, r.get_i64()?));
        }
        self.load_state(counters, cands);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Estimate, PointQuery};

    fn round_trip<T: StateCodec>(src: &T, dst: &mut T) {
        let mut w = ByteWriter::new();
        src.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        dst.decode_state(&mut r).expect("decode");
        r.expect_end().expect("exact length");
    }

    #[test]
    fn primitive_round_trips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(0.1);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(99));
        w.put_str("héllo\n");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 0.1);
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(99));
        assert_eq!(r.get_str().unwrap(), "héllo\n");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(CodecError::Truncated { .. })));
        let mut r = ByteReader::new(&bytes);
        r.get_u64().unwrap();
        assert!(r.expect_end().is_ok());
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        let a = fnv1a64(b"cora");
        let mut flipped = b"cora".to_vec();
        flipped[1] ^= 1;
        assert_ne!(a, fnv1a64(&flipped));
    }

    #[test]
    fn exact_frequencies_round_trip_bit_identical() {
        let mut src = ExactFrequencies::new();
        for i in 0..40u64 {
            src.update(i * 17 % 101, (i % 9) as i64 + 1);
        }
        src.update(7, -2);
        let mut dst = ExactFrequencies::new();
        round_trip(&src, &mut dst);
        assert_eq!(src.stored_tuples(), dst.stored_tuples());
        assert_eq!(src.total_weight(), dst.total_weight());
        assert_eq!(src.frequency_moment(2), dst.frequency_moment(2));
        for item in 0..101u64 {
            assert_eq!(src.frequency(item), dst.frequency(item));
        }
    }

    #[test]
    fn exact_frequencies_rejects_disorder_and_zero_entries() {
        let mut w = ByteWriter::new();
        w.put_len(2);
        w.put_u64(5);
        w.put_i64(1);
        w.put_u64(5);
        w.put_i64(1);
        let bytes = w.into_bytes();
        let mut dst = ExactFrequencies::new();
        assert!(dst.decode_state(&mut ByteReader::new(&bytes)).is_err());

        let mut w = ByteWriter::new();
        w.put_len(1);
        w.put_u64(5);
        w.put_i64(0);
        let bytes = w.into_bytes();
        let mut dst = ExactFrequencies::new();
        assert!(dst.decode_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn fast_ams_round_trip_bit_identical() {
        let mut src = FastAmsSketch::with_dimensions(64, 5, 11);
        for i in 0..500u64 {
            src.update(i % 73, (i % 5) as i64 - 2);
        }
        let mut dst = FastAmsSketch::with_dimensions(64, 5, 11);
        round_trip(&src, &mut dst);
        assert_eq!(src.estimate(), dst.estimate());
        for item in 0..73u64 {
            assert_eq!(src.frequency_estimate(item), dst.frequency_estimate(item));
        }
        // Empty sketches round-trip in a handful of bytes (rows skipped).
        let empty = FastAmsSketch::with_dimensions(4096, 7, 3);
        let mut w = ByteWriter::new();
        empty.encode_state(&mut w);
        assert!(w.len() < 64, "empty rows must be skipped, got {}", w.len());
    }

    #[test]
    fn fast_ams_rejects_mismatched_receiver() {
        let src = FastAmsSketch::with_dimensions(64, 5, 11);
        let mut w = ByteWriter::new();
        src.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong_seed = FastAmsSketch::with_dimensions(64, 5, 12);
        assert!(wrong_seed.decode_state(&mut ByteReader::new(&bytes)).is_err());
        let mut wrong_width = FastAmsSketch::with_dimensions(32, 5, 11);
        assert!(wrong_width.decode_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn count_sketch_round_trip_preserves_candidates() {
        let mut src = CountSketch::with_dimensions(256, 5, 8, 21);
        for _ in 0..200 {
            src.update(10, 10);
            src.update(20, 7);
        }
        for x in 100..400u64 {
            src.update(x, 1);
        }
        let mut dst = CountSketch::with_dimensions(256, 5, 8, 21);
        round_trip(&src, &mut dst);
        for item in [10u64, 20, 150, 9999] {
            assert_eq!(src.frequency_estimate(item), dst.frequency_estimate(item));
        }
        let mut a: Vec<(u64, i64)> = src.raw_candidates();
        let mut b: Vec<(u64, i64)> = dst.raw_candidates();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
