//! CountSketch (Charikar, Chen, Farach-Colton, 2004).
//!
//! A depth × width array of counters; row `r` adds `s_r(x) · w` to counter
//! `h_r(x)`. The median over rows of `s_r(x) · C[r][h_r(x)]` estimates the
//! frequency of `x` with additive error `O(√(F_2 / width))` — the guarantee
//! Section 3.3 of the paper relies on for correlated `F_2`-heavy hitters
//! ("each bucket additionally maintains an algorithm for estimating the
//! squared frequency of each item inserted into the bucket up to an additive
//! (ε/10)·2^i — see, e.g., the COUNTSKETCH algorithm").
//!
//! The structure is identical to [`crate::fast_ams::FastAmsSketch`]'s counter
//! array; it is kept as a separate type because its parameterisation (width
//! from an additive-error target) and its primary query (point frequency) are
//! different, and because the heavy-hitter machinery additionally tracks a
//! bounded candidate set so that heavy items can be *enumerated*, not just
//! queried.

use crate::error::{check_delta, Result, SketchError};
use crate::estimator_util::median;
use crate::traits::{MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;
use std::collections::HashMap;

/// CountSketch frequency estimator with an optional heavy-hitter candidate set.
#[derive(Debug, Clone)]
pub struct CountSketch {
    bucket_hashes: Vec<PolynomialHash>,
    sign_hashes: Vec<PolynomialHash>,
    counters: Vec<i64>,
    width: usize,
    depth: usize,
    seed: u64,
    /// Bounded set of candidate heavy hitters: item -> estimated |frequency|
    /// at the time it last won a slot. Capacity 0 disables tracking.
    candidates: HashMap<u64, i64>,
    candidate_capacity: usize,
}

impl CountSketch {
    /// Create a CountSketch with `width` counters per row and `depth` rows.
    ///
    /// `candidate_capacity` bounds the heavy-hitter candidate set (0 disables
    /// candidate tracking, leaving a pure point-query structure).
    pub fn with_dimensions(width: usize, depth: usize, candidate_capacity: usize, seed: u64) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        let bucket_hashes = (0..depth)
            .map(|r| PolynomialHash::new(2, derive_seed(seed, 2 * r as u64)))
            .collect();
        let sign_hashes = (0..depth)
            .map(|r| PolynomialHash::new(4, derive_seed(seed, 2 * r as u64 + 1)))
            .collect();
        Self {
            bucket_hashes,
            sign_hashes,
            counters: vec![0; width * depth],
            width,
            depth,
            seed,
            candidates: HashMap::new(),
            candidate_capacity,
        }
    }

    /// Create a CountSketch whose point estimates have additive error at most
    /// `additive_fraction · √F_2` with probability `1 − delta` per query.
    ///
    /// `width = ⌈6 / additive_fraction²⌉`, `depth = O(log 1/δ)`.
    pub fn new(additive_fraction: f64, delta: f64, candidate_capacity: usize, seed: u64) -> Result<Self> {
        if !(additive_fraction > 0.0 && additive_fraction < 1.0) {
            return Err(SketchError::InvalidParameter {
                name: "additive_fraction",
                detail: format!("must be in (0,1), got {additive_fraction}"),
            });
        }
        check_delta(delta)?;
        let width = ((6.0 / (additive_fraction * additive_fraction)).ceil() as usize).max(2);
        let depth = crate::estimator_util::repetitions_for_delta(delta);
        Ok(Self::with_dimensions(width, depth, candidate_capacity, seed))
    }

    #[inline]
    fn sign(&self, row: usize, item: u64) -> i64 {
        if (self.sign_hashes[row].hash64(item) >> 62) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    #[inline]
    fn bucket(&self, row: usize, item: u64) -> usize {
        self.bucket_hashes[row].hash_range(item, self.width as u64) as usize
    }

    /// Width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed used to derive the hash functions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Snapshot hook: the candidate-set capacity.
    pub(crate) fn candidate_capacity(&self) -> usize {
        self.candidate_capacity
    }

    /// Snapshot hook: the flat row-major counter array.
    pub(crate) fn raw_counters(&self) -> &[i64] {
        &self.counters
    }

    /// Snapshot hook: the candidate set as raw `(item, recorded estimate)`
    /// pairs, unordered.
    pub(crate) fn raw_candidates(&self) -> Vec<(u64, i64)> {
        self.candidates.iter().map(|(&item, &est)| (item, est)).collect()
    }

    /// Snapshot hook: overwrite the counters and candidate set. `counters`
    /// must be `width * depth` long and `candidates` within capacity (the
    /// codec validates both before calling).
    pub(crate) fn load_state(&mut self, counters: Vec<i64>, candidates: Vec<(u64, i64)>) {
        debug_assert_eq!(counters.len(), self.counters.len());
        debug_assert!(candidates.len() <= self.candidate_capacity);
        self.counters = counters;
        self.candidates = candidates.into_iter().collect();
    }

    /// The current heavy-hitter candidates as `(item, estimated frequency)`
    /// pairs, unordered. Empty when candidate tracking is disabled.
    pub fn candidates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.candidates
            .keys()
            .map(move |&item| (item, self.frequency_estimate(item)))
    }

    fn maybe_track_candidate(&mut self, item: u64) {
        if self.candidate_capacity == 0 {
            return;
        }
        let est = self.frequency_estimate(item).abs().round() as i64;
        if self.candidates.len() < self.candidate_capacity || self.candidates.contains_key(&item) {
            self.candidates.insert(item, est);
            return;
        }
        // Evict the weakest candidate if this item looks stronger.
        if let Some((&weakest, &weakest_est)) =
            self.candidates.iter().min_by_key(|&(_, &v)| v)
        {
            if est > weakest_est {
                self.candidates.remove(&weakest);
                self.candidates.insert(item, est);
            }
        }
    }
}

impl StreamSketch for CountSketch {
    fn update(&mut self, item: u64, weight: i64) {
        for row in 0..self.depth {
            let b = self.bucket(row, item);
            let s = self.sign(row, item);
            self.counters[row * self.width + b] += s * weight;
        }
        self.maybe_track_candidate(item);
    }
}

impl PointQuery for CountSketch {
    fn frequency_estimate(&self, item: u64) -> f64 {
        let per_row: Vec<f64> = (0..self.depth)
            .map(|row| {
                let b = self.bucket(row, item);
                (self.sign(row, item) * self.counters[row * self.width + b]) as f64
            })
            .collect();
        median(&per_row).unwrap_or(0.0)
    }
}

impl MergeableSketch for CountSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.width != other.width || self.depth != other.depth || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "CountSketch dims/seed mismatch: ({}x{}, {:#x}) vs ({}x{}, {:#x})",
                    self.depth, self.width, self.seed, other.depth, other.width, other.seed
                ),
            });
        }
        for (c, d) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += d;
        }
        // Union the candidate sets, then trim back to capacity by estimated
        // magnitude (using the merged counters, which are now in `self`).
        let mut union: Vec<u64> = self
            .candidates
            .keys()
            .chain(other.candidates.keys())
            .copied()
            .collect();
        union.sort_unstable();
        union.dedup();
        let cap = self.candidate_capacity.max(other.candidate_capacity);
        self.candidate_capacity = cap;
        let mut scored: Vec<(u64, i64)> = union
            .into_iter()
            .map(|item| (item, self.frequency_estimate(item).abs().round() as i64))
            .collect();
        scored.sort_by_key(|&(_, est)| std::cmp::Reverse(est));
        scored.truncate(cap);
        self.candidates = scored.into_iter().collect();
        Ok(())
    }
}

impl SpaceUsage for CountSketch {
    fn stored_tuples(&self) -> usize {
        self.counters.len() + self.candidates.len()
    }

    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<i64>()
            + self.candidates.len() * std::mem::size_of::<(u64, i64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_parameters() {
        assert!(CountSketch::new(0.0, 0.1, 0, 1).is_err());
        assert!(CountSketch::new(0.1, 0.0, 0, 1).is_err());
        assert!(CountSketch::new(0.1, 0.1, 0, 1).is_ok());
    }

    #[test]
    fn point_estimates_are_exact_for_isolated_items() {
        // With width much larger than the number of items, collisions are
        // unlikely and the estimate should be exact.
        let mut cs = CountSketch::with_dimensions(4096, 5, 0, 7);
        cs.update(1, 100);
        cs.update(2, -40);
        assert_eq!(cs.frequency_estimate(1), 100.0);
        assert_eq!(cs.frequency_estimate(2), -40.0);
        assert_eq!(cs.frequency_estimate(3), 0.0);
    }

    #[test]
    fn heavy_item_recovered_among_noise() {
        let mut cs = CountSketch::with_dimensions(1024, 7, 0, 3);
        cs.update(77, 50_000);
        for x in 1000..3000u64 {
            cs.update(x, 3);
        }
        let est = cs.frequency_estimate(77);
        assert!((est - 50_000.0).abs() < 1_000.0, "estimate {est}");
    }

    #[test]
    fn candidate_set_tracks_heavy_hitters() {
        let mut cs = CountSketch::with_dimensions(2048, 5, 4, 11);
        // Two genuinely heavy items and a mass of light ones.
        for _ in 0..500 {
            cs.update(10, 10);
            cs.update(20, 8);
        }
        for x in 100..1100u64 {
            cs.update(x, 1);
        }
        let cands: Vec<u64> = cs.candidates().map(|(x, _)| x).collect();
        assert!(cands.contains(&10), "candidates {cands:?} missing item 10");
        assert!(cands.contains(&20), "candidates {cands:?} missing item 20");
        assert!(cands.len() <= 4);
    }

    #[test]
    fn candidate_capacity_zero_disables_tracking() {
        let mut cs = CountSketch::with_dimensions(64, 3, 0, 1);
        for x in 0..100u64 {
            cs.update(x, 10);
        }
        assert_eq!(cs.candidates().count(), 0);
    }

    #[test]
    fn merge_matches_single_pass_counters() {
        let seed = 5;
        let mut full = CountSketch::with_dimensions(512, 5, 8, seed);
        let mut a = CountSketch::with_dimensions(512, 5, 8, seed);
        let mut b = CountSketch::with_dimensions(512, 5, 8, seed);
        for x in 0..400u64 {
            let w = (x % 13) as i64 + 1;
            full.update(x, w);
            if x % 3 == 0 {
                a.update(x, w);
            } else {
                b.update(x, w);
            }
        }
        let merged = a.merged(&b).unwrap();
        for x in (0..400u64).step_by(17) {
            assert_eq!(merged.frequency_estimate(x), full.frequency_estimate(x));
        }
    }

    #[test]
    fn merge_rejects_mismatch() {
        let a = CountSketch::with_dimensions(64, 3, 0, 1);
        let b = CountSketch::with_dimensions(128, 3, 0, 1);
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn turnstile_updates_cancel() {
        let mut cs = CountSketch::with_dimensions(256, 5, 0, 9);
        for x in 0..50u64 {
            cs.update(x, 6);
        }
        for x in 0..50u64 {
            cs.update(x, -6);
        }
        for x in 0..50u64 {
            assert_eq!(cs.frequency_estimate(x), 0.0);
        }
    }

    #[test]
    fn space_accounting_counts_candidates() {
        let mut cs = CountSketch::with_dimensions(32, 2, 4, 1);
        assert_eq!(cs.stored_tuples(), 64);
        cs.update(1, 100);
        cs.update(2, 100);
        assert_eq!(cs.stored_tuples(), 64 + 2);
        assert!(cs.space_bytes() > 64 * 8);
    }
}
