//! Misra–Gries frequent-items summary (the deterministic "heavy hitters"
//! counterpart to SpaceSaving).
//!
//! Maintains at most `k − 1` counters; every item with frequency above `n/k`
//! is guaranteed to be present, and every reported count under-estimates the
//! true frequency by at most `n/k`. Used as a deterministic baseline for the
//! heavy-hitter experiments and as a building block of the rarity ablation.
//! Supports merging (Agarwal et al., "Mergeable Summaries", PODS 2012).

use crate::error::{Result, SketchError};
use crate::traits::{MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use std::collections::HashMap;

/// Misra–Gries summary with at most `capacity` counters.
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: HashMap<u64, u64>,
    capacity: usize,
    total_weight: u64,
    /// Total weight removed by decrement steps; the per-item undercount is at
    /// most this value (and also at most `total_weight / (capacity + 1)`).
    decremented: u64,
}

impl MisraGries {
    /// Create a summary with at most `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MisraGries capacity must be positive");
        Self {
            counters: HashMap::with_capacity(capacity.min(1 << 16)),
            capacity,
            total_weight: 0,
            decremented: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total inserted weight.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Upper bound on how much any reported count under-estimates the truth.
    pub fn undercount_bound(&self) -> u64 {
        self.decremented
            .min(self.total_weight / (self.capacity as u64 + 1))
    }

    /// Iterate over `(item, count)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All items that *may* have frequency at least `phi · total_weight`
    /// (no false negatives).
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = (phi * self.total_weight as f64).ceil() as u64;
        let bound = self.undercount_bound();
        let mut out: Vec<(u64, u64)> = self
            .entries()
            .filter(|&(_, c)| c + bound >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    fn decrement_all(&mut self, amount: u64) {
        if amount == 0 {
            return;
        }
        self.decremented += amount;
        self.counters.retain(|_, c| {
            if *c > amount {
                *c -= amount;
                true
            } else {
                false
            }
        });
    }
}

impl StreamSketch for MisraGries {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "MisraGries only supports non-negative weights");
        let mut w = weight.max(0) as u64;
        if w == 0 {
            return;
        }
        self.total_weight += w;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += w;
            return;
        }
        while w > 0 {
            if self.counters.len() < self.capacity {
                self.counters.insert(item, w);
                return;
            }
            // Decrement everything by the smallest counter (batch decrement),
            // freeing at least one slot, then retry.
            let min = self.counters.values().copied().min().unwrap_or(0);
            let step = min.min(w);
            if step == 0 {
                break;
            }
            self.decrement_all(step);
            w -= step;
        }
        if w > 0 && self.counters.len() < self.capacity {
            self.counters.insert(item, w);
        } else if w > 0 {
            self.decremented += w;
        }
    }
}

impl PointQuery for MisraGries {
    fn frequency_estimate(&self, item: u64) -> f64 {
        self.counters.get(&item).copied().unwrap_or(0) as f64
    }
}

impl MergeableSketch for MisraGries {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "MisraGries capacity mismatch: {} vs {}",
                    self.capacity, other.capacity
                ),
            });
        }
        for (&item, &count) in &other.counters {
            *self.counters.entry(item).or_insert(0) += count;
        }
        self.total_weight += other.total_weight;
        self.decremented += other.decremented;
        if self.counters.len() > self.capacity {
            // Standard mergeable-summaries trim: subtract the (capacity+1)-th
            // largest count from everything and drop non-positive counters.
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let pivot = counts[self.capacity];
            self.decrement_all(pivot);
        }
        Ok(())
    }
}

impl SpaceUsage for MisraGries {
    fn stored_tuples(&self) -> usize {
        self.counters.len()
    }

    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<(u64, u64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = MisraGries::new(0);
    }

    #[test]
    fn exact_under_capacity() {
        let mut mg = MisraGries::new(10);
        for x in 0..5u64 {
            mg.update(x, (x + 1) as i64);
        }
        for x in 0..5u64 {
            assert_eq!(mg.frequency_estimate(x), (x + 1) as f64);
        }
        assert_eq!(mg.undercount_bound(), 0);
    }

    #[test]
    fn never_overestimates() {
        let mut mg = MisraGries::new(5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..2000u64 {
            let item = i % 37;
            mg.update(item, 1);
            *truth.entry(item).or_default() += 1;
        }
        for (&item, &t) in &truth {
            assert!(
                mg.frequency_estimate(item) <= t as f64,
                "MG overestimated item {item}"
            );
        }
    }

    #[test]
    fn undercount_bounded() {
        let mut mg = MisraGries::new(9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..5000u64 {
            let item = i % 100;
            mg.update(item, 1);
            *truth.entry(item).or_default() += 1;
        }
        let bound = mg.undercount_bound() as f64;
        assert!(bound <= 5000.0 / 10.0);
        for (&item, &t) in &truth {
            assert!(
                mg.frequency_estimate(item) >= t as f64 - bound,
                "undercount of item {item} exceeds bound"
            );
        }
    }

    #[test]
    fn heavy_hitters_have_no_false_negatives() {
        let mut mg = MisraGries::new(20);
        // Item 5 takes 30% of the stream.
        for i in 0..10_000u64 {
            if i % 10 < 3 {
                mg.update(5, 1);
            } else {
                mg.update(1000 + (i % 500), 1);
            }
        }
        let hh = mg.heavy_hitters(0.25);
        assert!(hh.iter().any(|&(x, _)| x == 5), "missed the true heavy hitter");
    }

    #[test]
    fn weighted_updates_match_repeated_unit_updates() {
        let mut a = MisraGries::new(8);
        let mut b = MisraGries::new(8);
        for x in 0..6u64 {
            a.update(x, 10);
            for _ in 0..10 {
                b.update(x, 1);
            }
        }
        for x in 0..6u64 {
            assert_eq!(a.frequency_estimate(x), b.frequency_estimate(x));
        }
    }

    #[test]
    fn merge_preserves_heavy_items() {
        let mut a = MisraGries::new(10);
        let mut b = MisraGries::new(10);
        for _ in 0..500 {
            a.update(1, 1);
            b.update(2, 1);
        }
        for x in 0..200u64 {
            a.update(100 + x, 1);
            b.update(400 + x, 1);
        }
        a.merge_from(&b).unwrap();
        assert!(a.stored_tuples() <= 10);
        let hh = a.heavy_hitters(0.3);
        let items: Vec<u64> = hh.iter().map(|&(x, _)| x).collect();
        assert!(items.contains(&1));
        assert!(items.contains(&2));
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = MisraGries::new(10);
        let b = MisraGries::new(11);
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn zero_weight_noop() {
        let mut mg = MisraGries::new(4);
        mg.update(3, 0);
        assert_eq!(mg.total_weight(), 0);
        assert_eq!(mg.stored_tuples(), 0);
    }
}
