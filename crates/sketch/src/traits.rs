//! Core traits implemented by every whole-stream summary in this crate.
//!
//! The correlated-aggregation framework (`cora-core`) is generic over a
//! "sketching function" in the sense of the paper's Property V: it must be
//! possible to (a) update a sketch with a stream item, (b) obtain an
//! `(υ, γ)`-estimate of the aggregate from the sketch, and (c) **compose** two
//! sketches of two multisets into a sketch of their union. These three
//! capabilities are captured by [`StreamSketch`], [`Estimate`] and
//! [`MergeableSketch`] respectively; [`SpaceUsage`] adds the space accounting
//! that the paper's experiments report (number of stored tuples / bytes).

use crate::error::Result;

/// A summary that can be updated online with weighted item identifiers.
///
/// Weights are `i64`: the cash-register model uses strictly positive weights,
/// the turnstile model (Section 4 of the paper) allows negative weights.
/// Structures that cannot handle negative weights must document it and may
/// debug-assert, but should not silently produce garbage.
pub trait StreamSketch {
    /// Process one stream element with the given weight (frequency delta).
    fn update(&mut self, item: u64, weight: i64);

    /// Convenience wrapper for the common unit-weight insertion.
    fn insert(&mut self, item: u64) {
        self.update(item, 1);
    }
}

/// A summary that can produce a point estimate of its target aggregate.
pub trait Estimate {
    /// Return the current estimate of the aggregate this sketch tracks
    /// (e.g. `F_2`, `F_0`, `F_k`).
    fn estimate(&self) -> f64;
}

/// A summary whose per-item *coordinates* (hash evaluations, subsampling
/// levels) are determined by its dimensions and construction seed alone, so
/// the work of one `(item, weight)` update can be computed once and applied
/// to many same-seeded instances.
///
/// The correlated-aggregation framework leans on this: Property V requires
/// every per-bucket summary in one structure to share hash seeds (so they
/// compose), and a single stream element updates one bucket on every level
/// plus a shared tail summary. Preparing the coordinates once per element
/// removes the dominant per-level hashing cost from the insert hot path.
pub trait SharedUpdate: StreamSketch {
    /// Precomputed coordinates for one `(item, weight)` update.
    type Prepared: Clone + Default + std::fmt::Debug;

    /// Precomputed coordinates for a whole batch of `(item, weight)` updates,
    /// stored in one flat allocation so that applying a contiguous sub-range
    /// walks memory sequentially (see [`Self::apply_prepared_range`]).
    type PreparedBatch: Clone + Default + std::fmt::Debug;

    /// Compute the coordinates of `(item, weight)` into `out` (reusing its
    /// allocations). The result must depend only on the sketch's dimensions
    /// and seed, never on its counter state, so it is valid for every sketch
    /// produced by the same factory/aggregate.
    fn prepare_into(&self, item: u64, weight: i64, out: &mut Self::Prepared);

    /// Apply previously-prepared coordinates. Must be exactly equivalent to
    /// `update(item, weight)` with the pair passed to `prepare_into`.
    fn apply_prepared(&mut self, prepared: &Self::Prepared);

    /// Compute the coordinates of every `(item, weight)` in `items` into
    /// `out`, reusing its allocations. Semantically this is `prepare_into`
    /// for each tuple; implementations are encouraged to use a flat
    /// structure-of-arrays layout instead of one allocation per tuple.
    fn prepare_batch_into(&self, items: &[(u64, i64)], out: &mut Self::PreparedBatch);

    /// Apply tuples `range` (indices into the `items` slice the batch was
    /// prepared from) of a prepared batch. Must be exactly equivalent to
    /// calling [`Self::apply_prepared`] for each tuple of the range in order.
    fn apply_prepared_range(&mut self, batch: &Self::PreparedBatch, range: std::ops::Range<usize>);
}

/// A summary of a multiset that can be composed with a summary of another
/// multiset to obtain a summary of the multiset union (Property V(b)).
///
/// Mergeability is what the workspace's scale-out path is built on: because
/// every summary created from one seed composes losslessly (linear sketches
/// add counter-wise; exact vectors add entry-wise), a stream can be
/// partitioned across ingest workers and the per-worker summaries merged at
/// query time — see `CorrelatedSketch::merge_from` in `cora-core` and the
/// worker-sharded front-end in `cora_stream::sharded`, which lift this
/// per-sketch property to whole correlated structures.
pub trait MergeableSketch: Sized {
    /// Merge `other` into `self`.
    ///
    /// Returns an error if the two sketches are structurally incompatible
    /// (different dimensions or different hash seeds). Implementations must
    /// be order-insensitive up to their estimate guarantees: merging shard
    /// summaries in any order yields a summary of the same union multiset.
    fn merge_from(&mut self, other: &Self) -> Result<()>;

    /// Merge two sketches into a new one, leaving the inputs untouched.
    fn merged(&self, other: &Self) -> Result<Self>
    where
        Self: Clone,
    {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }
}

/// Space accounting, reported the same way the paper's experiments report it.
pub trait SpaceUsage {
    /// Number of "stored tuples" — the unit used in Figures 2–7 of the paper
    /// (counters, samples, or buckets, whichever is the natural atom of the
    /// structure).
    fn stored_tuples(&self) -> usize;

    /// Estimated heap footprint in bytes (structure-specific accounting, not
    /// allocator-level truth; intended for relative comparisons).
    fn space_bytes(&self) -> usize {
        self.stored_tuples() * std::mem::size_of::<(u64, u64)>()
    }
}

/// A summary that supports point queries for individual item frequencies
/// (CountSketch, Count-Min, Misra–Gries, exact maps).
pub trait PointQuery {
    /// Estimate the (signed) frequency of `item`.
    fn frequency_estimate(&self, item: u64) -> f64;
}

/// Factory trait: build fresh, empty sketches that are all mutually mergeable.
///
/// The correlated framework instantiates *many* per-bucket sketches and must
/// guarantee that any two of them can be composed at query time; it therefore
/// holds a factory (sharing one seed / one set of hash functions) rather than
/// constructing sketches ad hoc.
pub trait SketchFactory {
    /// The sketch type this factory builds.
    type Sketch: StreamSketch + Estimate + MergeableSketch + SpaceUsage + Clone;

    /// Create a new empty sketch. All sketches created by the same factory
    /// must be mergeable with one another.
    fn new_sketch(&self) -> Self::Sketch;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SketchError;

    /// A toy exact-sum "sketch" used to exercise the default trait methods.
    #[derive(Debug, Clone, PartialEq)]
    struct SumSketch {
        total: i64,
        tag: u64,
    }

    impl StreamSketch for SumSketch {
        fn update(&mut self, _item: u64, weight: i64) {
            self.total += weight;
        }
    }
    impl Estimate for SumSketch {
        fn estimate(&self) -> f64 {
            self.total as f64
        }
    }
    impl MergeableSketch for SumSketch {
        fn merge_from(&mut self, other: &Self) -> Result<()> {
            if self.tag != other.tag {
                return Err(SketchError::IncompatibleMerge {
                    detail: "tag mismatch".into(),
                });
            }
            self.total += other.total;
            Ok(())
        }
    }
    impl SpaceUsage for SumSketch {
        fn stored_tuples(&self) -> usize {
            1
        }
    }

    #[test]
    fn insert_is_unit_weight_update() {
        let mut s = SumSketch { total: 0, tag: 0 };
        s.insert(7);
        s.insert(9);
        s.update(1, 5);
        assert_eq!(s.estimate(), 7.0);
    }

    #[test]
    fn merged_leaves_inputs_untouched() {
        let a = SumSketch { total: 3, tag: 1 };
        let b = SumSketch { total: 4, tag: 1 };
        let c = a.merged(&b).unwrap();
        assert_eq!(c.estimate(), 7.0);
        assert_eq!(a.total, 3);
        assert_eq!(b.total, 4);
    }

    #[test]
    fn merge_rejects_incompatible() {
        let a = SumSketch { total: 3, tag: 1 };
        let b = SumSketch { total: 4, tag: 2 };
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn default_space_bytes_scales_with_tuples() {
        let s = SumSketch { total: 0, tag: 0 };
        assert_eq!(s.space_bytes(), 16);
    }
}
