//! # cora-sketch
//!
//! Mergeable whole-stream summaries ("sketches") and exact baselines.
//!
//! The correlated-aggregation framework in `cora-core` reduces a correlated
//! aggregate query to the composition of *whole-stream* sketches (Property V
//! of Tirthapura & Woodruff, ICDE 2012). This crate provides those sketches:
//!
//! | aggregate | sketch | module |
//! |---|---|---|
//! | `F_2` | classic AMS sign sketch | [`ams_f2`] |
//! | `F_2` | fast AMS / Thorup–Zhang bucketed estimator (the paper's choice) | [`fast_ams`] |
//! | point frequencies | CountSketch | [`count_sketch`] |
//! | point frequencies | Count-Min | [`count_min`] |
//! | frequent items | SpaceSaving, Misra–Gries | [`space_saving`], [`misra_gries`] |
//! | `F_k`, k ≥ 2 | subsampling + SpaceSaving (Indyk–Woodruff-style) | [`fk`] |
//! | `F_0` | adaptive distinct sampling (Gibbons–Tirthapura) | [`f0::distinct_sampler`] |
//! | `F_0` | bottom-k (KMV) | [`f0::kmv`] |
//! | `F_0` | probabilistic counting (Flajolet–Martin) | [`f0::flajolet_martin`] |
//! | quantiles | Greenwald–Khanna | [`quantiles`] |
//! | everything, exactly | full frequency vector | [`exact`] |
//!
//! All summaries implement the traits in [`traits`]; estimation helpers live
//! in [`estimator_util`] and shared error types in [`error`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ams_f2;
pub mod codec;
pub mod count_min;
pub mod count_sketch;
pub mod error;
pub mod estimator_util;
pub mod exact;
pub mod f0;
pub mod fast_ams;
pub mod fk;
pub mod misra_gries;
pub mod quantiles;
pub mod space_saving;
pub mod traits;

pub use ams_f2::AmsF2Sketch;
pub use codec::{ByteReader, ByteWriter, CodecError, StateCodec};
pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use error::{Result, SketchError};
pub use exact::ExactFrequencies;
pub use f0::{DistinctSampler, F0Sketch, FlajoletMartin, KmvSketch};
pub use fast_ams::{DecayedF2Accumulator, FastAmsBatch, FastAmsPrepared, FastAmsSketch};
pub use fk::{FkPrepared, FkSketch};
pub use misra_gries::MisraGries;
pub use quantiles::GkQuantiles;
pub use space_saving::SpaceSaving;
pub use traits::{Estimate, MergeableSketch, PointQuery, SharedUpdate, SketchFactory, SpaceUsage, StreamSketch};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let mut f2 = FastAmsSketch::with_dimensions(16, 3, 1);
        f2.insert(1);
        assert!(f2.estimate() > 0.0);

        let mut f0 = F0Sketch::with_dimensions(16, 3, 1);
        f0.insert(1);
        assert_eq!(f0.estimate(), 1.0);

        let mut exact = ExactFrequencies::new();
        exact.insert(1);
        assert_eq!(exact.frequency_moment(1), 1.0);
    }
}
