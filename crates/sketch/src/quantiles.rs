//! Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001).
//!
//! The paper's motivating drill-down workflow (Section 1) pairs the correlated
//! sketch with a *whole-stream quantile summary* over the y dimension: "Using
//! a summary for correlated aggregate AGG, along with a whole stream quantile
//! summary for the size dimension ... the administrator can query the
//! aggregate of all those flows whose size was more than the median flow
//! size." This module provides that quantile summary.
//!
//! The summary stores tuples `(v, g, Δ)` where `g` is the gap in minimum rank
//! to the previous tuple and `Δ` bounds the rank uncertainty; it guarantees
//! that any rank query is answered within `ε · n`, using `O((1/ε) log(ε n))`
//! tuples.

use crate::error::{check_epsilon, Result, SketchError};
use crate::traits::SpaceUsage;

/// One GK tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GkTuple {
    value: u64,
    /// Gap between this tuple's minimum rank and the previous tuple's.
    g: u64,
    /// Rank uncertainty.
    delta: u64,
}

/// Greenwald–Khanna quantile summary over `u64` values.
#[derive(Debug, Clone)]
pub struct GkQuantiles {
    epsilon: f64,
    tuples: Vec<GkTuple>,
    count: u64,
    inserts_since_compress: u64,
}

impl GkQuantiles {
    /// Create a summary with rank error `epsilon · n`.
    pub fn new(epsilon: f64) -> Result<Self> {
        check_epsilon(epsilon)?;
        Ok(Self {
            epsilon,
            tuples: Vec::new(),
            count: 0,
            inserts_since_compress: 0,
        })
    }

    /// The configured error parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Insert one value.
    pub fn insert(&mut self, value: u64) {
        let delta = if self.count < (1.0 / (2.0 * self.epsilon)) as u64 {
            0
        } else {
            (2.0 * self.epsilon * self.count as f64).floor() as u64
        };
        // Find insertion position (first tuple with value >= v).
        let pos = self.tuples.partition_point(|t| t.value < value);
        let tuple = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: exact rank, delta = 0.
            GkTuple { value, g: 1, delta: 0 }
        } else {
            GkTuple { value, g: 1, delta }
        };
        self.tuples.insert(pos, tuple);
        self.count += 1;
        self.inserts_since_compress += 1;
        let compress_every = (1.0 / (2.0 * self.epsilon)).ceil() as u64;
        if self.inserts_since_compress >= compress_every {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Merge adjacent tuples whose combined uncertainty stays within budget.
    ///
    /// The first tuple (the minimum) is never merged away: keeping its rank
    /// exact is what guarantees that every rank query — including very low
    /// quantiles — has a tuple within `ε·n` of the target.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let budget = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let first = self.tuples[0];
        let mut out: Vec<GkTuple> = Vec::with_capacity(self.tuples.len());
        // Iterate the remaining tuples from the end, attempting to merge each
        // tuple into its successor.
        let mut iter = self.tuples[1..].iter().rev();
        let mut current = *iter.next().expect("len >= 3 so the tail has >= 2 tuples");
        for &t in iter {
            if t.g + current.g + current.delta <= budget {
                // Merge t into its successor.
                current.g += t.g;
            } else {
                out.push(current);
                current = t;
            }
        }
        out.push(current);
        out.push(first);
        out.reverse();
        self.tuples = out;
    }

    /// Return a value whose rank is within `ε·n` of `phi · n`.
    ///
    /// Returns an error if the summary is empty or `phi` is outside `[0, 1]`.
    pub fn quantile(&self, phi: f64) -> Result<u64> {
        if self.is_empty() {
            return Err(SketchError::EmptyQuery);
        }
        if !(0.0..=1.0).contains(&phi) {
            return Err(SketchError::InvalidParameter {
                name: "phi",
                detail: format!("quantile fraction must be in [0,1], got {phi}"),
            });
        }
        let target_rank = (phi * self.count as f64).ceil().max(1.0) as u64;
        let allowed = (self.epsilon * self.count as f64).ceil() as u64;
        let mut min_rank = 0u64;
        let mut prev_value = self.tuples.first().expect("non-empty").value;
        for t in &self.tuples {
            min_rank += t.g;
            if min_rank + t.delta > target_rank + allowed {
                return Ok(prev_value);
            }
            prev_value = t.value;
        }
        Ok(self.tuples.last().expect("non-empty").value)
    }

    /// Approximate rank (number of inserted values ≤ `value`).
    pub fn rank(&self, value: u64) -> u64 {
        let mut min_rank = 0u64;
        for t in &self.tuples {
            if t.value > value {
                break;
            }
            min_rank += t.g;
        }
        min_rank
    }
}

impl SpaceUsage for GkQuantiles {
    fn stored_tuples(&self) -> usize {
        self.tuples.len()
    }

    fn space_bytes(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<GkTuple>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_epsilon() {
        assert!(GkQuantiles::new(0.0).is_err());
        assert!(GkQuantiles::new(1.0).is_err());
        assert!(GkQuantiles::new(0.01).is_ok());
    }

    #[test]
    fn empty_query_errors() {
        let q = GkQuantiles::new(0.1).unwrap();
        assert_eq!(q.quantile(0.5), Err(SketchError::EmptyQuery));
        assert!(q.is_empty());
    }

    #[test]
    fn invalid_phi_rejected() {
        let mut q = GkQuantiles::new(0.1).unwrap();
        q.insert(5);
        assert!(q.quantile(-0.1).is_err());
        assert!(q.quantile(1.1).is_err());
    }

    #[test]
    fn single_value() {
        let mut q = GkQuantiles::new(0.1).unwrap();
        q.insert(42);
        assert_eq!(q.quantile(0.0).unwrap(), 42);
        assert_eq!(q.quantile(0.5).unwrap(), 42);
        assert_eq!(q.quantile(1.0).unwrap(), 42);
    }

    fn check_accuracy(values: &mut [u64], q: &GkQuantiles, eps: f64) {
        values.sort_unstable();
        let n = values.len() as f64;
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let estimate = q.quantile(phi).unwrap();
            // A value with duplicates occupies a whole range of ranks; the
            // target rank must fall within eps*n of that range.
            let lo_rank = values.partition_point(|&v| v < estimate) as f64 + 1.0;
            let hi_rank = values.partition_point(|&v| v <= estimate) as f64;
            let target = phi * n;
            let ok = target >= lo_rank - eps * n - 1.0 && target <= hi_rank + eps * n + 1.0;
            assert!(
                ok,
                "phi={phi}: value {estimate} spans ranks [{lo_rank}, {hi_rank}], target {target}"
            );
        }
    }

    #[test]
    fn accuracy_on_sorted_input() {
        let eps = 0.05;
        let mut q = GkQuantiles::new(eps).unwrap();
        let mut values: Vec<u64> = (0..20_000u64).collect();
        for &v in &values {
            q.insert(v);
        }
        check_accuracy(&mut values, &q, eps);
    }

    #[test]
    fn accuracy_on_reverse_sorted_input() {
        let eps = 0.05;
        let mut q = GkQuantiles::new(eps).unwrap();
        let mut values: Vec<u64> = (0..20_000u64).rev().collect();
        for &v in &values {
            q.insert(v);
        }
        check_accuracy(&mut values, &q, eps);
    }

    #[test]
    fn accuracy_on_random_input() {
        let eps = 0.05;
        let mut rng = StdRng::seed_from_u64(7);
        let mut q = GkQuantiles::new(eps).unwrap();
        let mut values: Vec<u64> = (0..30_000).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        for &v in &values {
            q.insert(v);
        }
        check_accuracy(&mut values, &q, eps);
    }

    #[test]
    fn accuracy_with_heavy_duplicates() {
        let eps = 0.05;
        let mut q = GkQuantiles::new(eps).unwrap();
        let mut values: Vec<u64> = (0..10_000u64).map(|x| x % 10).collect();
        for &v in &values {
            q.insert(v);
        }
        check_accuracy(&mut values, &q, eps);
    }

    #[test]
    fn space_is_sublinear() {
        let mut q = GkQuantiles::new(0.01).unwrap();
        let n = 100_000u64;
        for v in 0..n {
            q.insert(v);
        }
        assert!(
            q.stored_tuples() < (n as usize) / 20,
            "GK summary stores {} tuples for {} inserts",
            q.stored_tuples(),
            n
        );
        assert!(q.space_bytes() > 0);
    }

    #[test]
    fn rank_is_monotone() {
        let mut q = GkQuantiles::new(0.05).unwrap();
        for v in 0..5_000u64 {
            q.insert(v * 2);
        }
        let mut prev = 0;
        for v in (0..10_000u64).step_by(500) {
            let r = q.rank(v);
            assert!(r >= prev, "rank must be monotone");
            prev = r;
        }
    }

    #[test]
    fn count_tracks_inserts() {
        let mut q = GkQuantiles::new(0.1).unwrap();
        for v in 0..123u64 {
            q.insert(v);
        }
        assert_eq!(q.count(), 123);
    }
}
