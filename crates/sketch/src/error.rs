//! Error types shared by the sketch library.

use std::fmt;

/// Errors that can occur when operating on sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Two sketches could not be merged because they were built with
    /// different parameters (width, depth, seed, independence level, ...).
    ///
    /// Merging requires structurally identical sketches built from identical
    /// hash functions; anything else would silently produce garbage, so it is
    /// reported as an error instead.
    IncompatibleMerge {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A parameter passed to a constructor was outside its valid domain
    /// (e.g. `epsilon` not in `(0, 1)`).
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A query was made that the structure cannot answer (e.g. quantile query
    /// on an empty summary).
    EmptyQuery,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::IncompatibleMerge { detail } => {
                write!(f, "sketches cannot be merged: {detail}")
            }
            SketchError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            SketchError::EmptyQuery => write!(f, "query on an empty summary"),
        }
    }
}

impl std::error::Error for SketchError {}

/// Convenience result alias used across the sketch library.
pub type Result<T> = std::result::Result<T, SketchError>;

/// Validate that a relative-error parameter lies in `(0, 1)`.
pub fn check_epsilon(epsilon: f64) -> Result<()> {
    if epsilon > 0.0 && epsilon < 1.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(SketchError::InvalidParameter {
            name: "epsilon",
            detail: format!("must be in (0, 1), got {epsilon}"),
        })
    }
}

/// Validate that a failure-probability parameter lies in `(0, 1)`.
pub fn check_delta(delta: f64) -> Result<()> {
    if delta > 0.0 && delta < 1.0 && delta.is_finite() {
        Ok(())
    } else {
        Err(SketchError::InvalidParameter {
            name: "delta",
            detail: format!("must be in (0, 1), got {delta}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.1).is_ok());
        assert!(check_epsilon(0.999).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(1.0).is_err());
        assert!(check_epsilon(-0.5).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn delta_validation() {
        assert!(check_delta(0.01).is_ok());
        assert!(check_delta(0.0).is_err());
        assert!(check_delta(1.5).is_err());
        assert!(check_delta(f64::NAN).is_err());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SketchError::IncompatibleMerge {
            detail: "width 16 vs 32".into(),
        };
        assert!(e.to_string().contains("width 16 vs 32"));
        let e = SketchError::InvalidParameter {
            name: "epsilon",
            detail: "must be in (0, 1), got 2".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        assert_eq!(SketchError::EmptyQuery.to_string(), "query on an empty summary");
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&SketchError::EmptyQuery);
    }
}
