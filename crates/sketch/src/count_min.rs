//! Count-Min sketch (Cormode & Muthukrishnan, 2005).
//!
//! A depth × width array of non-negative counters; row `r` adds `w` to counter
//! `h_r(x)` and the point query takes the minimum over rows. The estimate
//! over-counts by at most `ε · ‖f‖₁` with probability `1 − δ` when
//! `width = ⌈e/ε⌉` and `depth = ⌈ln 1/δ⌉`.
//!
//! In this workspace Count-Min serves two roles: (a) the per-bucket frequency
//! estimator in the *ablation* variant of correlated heavy hitters (CountSketch
//! gives an `√F_2`-type additive bound, Count-Min an `F_1`-type bound — the
//! benchmark compares them), and (b) a point-query substrate for the rarity
//! estimator's collision filter. It only supports the cash-register model
//! (non-negative weights); turnstile use is rejected with a debug assertion.

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::traits::{MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;

/// Count-Min sketch for non-negative frequency estimation.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    hashes: Vec<PolynomialHash>,
    counters: Vec<u64>,
    width: usize,
    depth: usize,
    seed: u64,
    total_weight: u64,
}

impl CountMinSketch {
    /// Create a sketch with additive error `epsilon · ‖f‖₁` and failure
    /// probability `delta` per query.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        let width = ((std::f64::consts::E / epsilon).ceil() as usize).max(2);
        let depth = ((1.0 / delta).ln().ceil() as usize).max(1);
        Ok(Self::with_dimensions(width, depth, seed))
    }

    /// Create a sketch with explicit dimensions.
    pub fn with_dimensions(width: usize, depth: usize, seed: u64) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        let hashes = (0..depth)
            .map(|r| PolynomialHash::new(2, derive_seed(seed, r as u64)))
            .collect();
        Self {
            hashes,
            counters: vec![0; width * depth],
            width,
            depth,
            seed,
            total_weight: 0,
        }
    }

    /// Width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total inserted weight (`‖f‖₁`), tracked exactly.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }
}

impl StreamSketch for CountMinSketch {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "CountMinSketch only supports non-negative weights");
        let w = weight.max(0) as u64;
        for (r, h) in self.hashes.iter().enumerate() {
            let b = h.hash_range(item, self.width as u64) as usize;
            self.counters[r * self.width + b] += w;
        }
        self.total_weight += w;
    }
}

impl PointQuery for CountMinSketch {
    fn frequency_estimate(&self, item: u64) -> f64 {
        let mut best = u64::MAX;
        for (r, h) in self.hashes.iter().enumerate() {
            let b = h.hash_range(item, self.width as u64) as usize;
            best = best.min(self.counters[r * self.width + b]);
        }
        if best == u64::MAX {
            0.0
        } else {
            best as f64
        }
    }
}

impl MergeableSketch for CountMinSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.width != other.width || self.depth != other.depth || self.seed != other.seed {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "CountMin dims/seed mismatch: ({}x{}, {:#x}) vs ({}x{}, {:#x})",
                    self.depth, self.width, self.seed, other.depth, other.width, other.seed
                ),
            });
        }
        for (c, d) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += d;
        }
        self.total_weight += other.total_weight;
        Ok(())
    }
}

impl SpaceUsage for CountMinSketch {
    fn stored_tuples(&self) -> usize {
        self.counters.len()
    }

    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(CountMinSketch::new(0.0, 0.1, 1).is_err());
        assert!(CountMinSketch::new(0.1, 0.0, 1).is_err());
        assert!(CountMinSketch::new(0.01, 0.01, 1).is_ok());
    }

    #[test]
    fn dimension_formulas() {
        let s = CountMinSketch::new(0.01, 0.01, 1).unwrap();
        assert_eq!(s.width(), 272); // ceil(e / 0.01)
        assert_eq!(s.depth(), 5); // ceil(ln 100)
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::with_dimensions(50, 4, 3);
        let truth: Vec<(u64, i64)> = (0..500u64).map(|x| (x, (x % 17) as i64 + 1)).collect();
        for &(x, f) in &truth {
            cm.update(x, f);
        }
        for &(x, f) in &truth {
            assert!(
                cm.frequency_estimate(x) >= f as f64,
                "Count-Min underestimated item {x}"
            );
        }
    }

    #[test]
    fn overestimate_bounded_by_epsilon_l1() {
        let eps = 0.01;
        let mut cm = CountMinSketch::new(eps, 0.01, 7).unwrap();
        let truth: Vec<(u64, i64)> = (0..2000u64).map(|x| (x, 5)).collect();
        for &(x, f) in &truth {
            cm.update(x, f);
        }
        let l1 = cm.total_weight() as f64;
        let mut violations = 0usize;
        for &(x, f) in &truth {
            if cm.frequency_estimate(x) > f as f64 + eps * l1 {
                violations += 1;
            }
        }
        // The bound holds per-query with probability >= 0.99; allow a handful.
        assert!(violations < 60, "{violations} of 2000 queries violated the CM bound");
    }

    #[test]
    fn empty_sketch_returns_zero() {
        let cm = CountMinSketch::with_dimensions(8, 2, 1);
        assert_eq!(cm.frequency_estimate(123), 0.0);
        assert_eq!(cm.total_weight(), 0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let seed = 99;
        let mut full = CountMinSketch::with_dimensions(128, 4, seed);
        let mut a = CountMinSketch::with_dimensions(128, 4, seed);
        let mut b = CountMinSketch::with_dimensions(128, 4, seed);
        for x in 0..300u64 {
            full.update(x, 2);
            if x < 100 {
                a.update(x, 2);
            } else {
                b.update(x, 2);
            }
        }
        let merged = a.merged(&b).unwrap();
        for x in (0..300u64).step_by(23) {
            assert_eq!(merged.frequency_estimate(x), full.frequency_estimate(x));
        }
        assert_eq!(merged.total_weight(), full.total_weight());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let a = CountMinSketch::with_dimensions(64, 4, 1);
        let b = CountMinSketch::with_dimensions(64, 3, 1);
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn space_accounting() {
        let cm = CountMinSketch::with_dimensions(100, 5, 1);
        assert_eq!(cm.stored_tuples(), 500);
        assert_eq!(cm.space_bytes(), 4000);
    }
}
