//! Small statistical helpers shared by the estimators: medians, means of
//! slices, and the standard "median of means" amplification used to turn a
//! constant-probability estimator into an `(ε, δ)` one.

/// Return the median of a slice (average of the two middle elements for even
/// lengths). Returns `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.to_vec();
    median_mut(&mut v)
}

/// Median of a slice, sorting it in place — the allocation-free variant used
/// on hot paths (per-update threshold checks in the correlated framework).
/// Returns `None` for an empty slice.
pub fn median_mut(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    // `total_cmp` gives a total order that also handles any accidental NaN
    // deterministically instead of panicking.
    values.sort_unstable_by(|a, b| a.total_cmp(b));
    let n = values.len();
    Some(if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    })
}

/// Arithmetic mean of a slice; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Median of means: partition `values` into `groups` contiguous groups,
/// average each, and take the median of the group averages.
///
/// If `groups` is zero or exceeds the number of values, it is clamped to
/// sensible bounds. Returns `None` for an empty input.
pub fn median_of_means(values: &[f64], groups: usize) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let groups = groups.clamp(1, values.len());
    let per_group = values.len() / groups;
    let per_group = per_group.max(1);
    let means: Vec<f64> = values
        .chunks(per_group)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    median(&means)
}

/// Number of independent repetitions needed to drive the failure probability
/// of a constant-probability (say 3/4) estimator below `delta` by taking a
/// median: `O(log(1/δ))` with the standard Chernoff constant.
pub fn repetitions_for_delta(delta: f64) -> usize {
    debug_assert!(delta > 0.0 && delta < 1.0);
    // 48 ln(1/δ) / 7 is the textbook constant for boosting a 3/4-success
    // estimator; in practice a smaller constant works. We use ceil(4 ln(1/δ))
    // and force odd so the median is a single sample.
    let r = (4.0 * (1.0 / delta).ln()).ceil() as usize;
    let r = r.max(1);
    if r % 2 == 0 {
        r + 1
    } else {
        r
    }
}

/// Relative error between an estimate and the true value; zero if both zero.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn median_is_robust_to_outliers() {
        assert_eq!(median(&[1.0, 1.0, 1.0, 1.0, 1e18]), Some(1.0));
    }

    #[test]
    fn median_mut_matches_median() {
        let cases: [&[f64]; 4] = [&[], &[5.0], &[3.0, 1.0], &[9.0, 2.0, 4.0, 8.0, 1.0]];
        for case in cases {
            let mut scratch = case.to_vec();
            assert_eq!(median_mut(&mut scratch), median(case));
        }
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn median_of_means_reduces_variance() {
        // 9 values: one wild outlier. Mean is ruined, median-of-means is not.
        let values = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1000.0];
        let mom = median_of_means(&values, 3).unwrap();
        assert!(mom < 10.0, "median of means should suppress the outlier, got {mom}");
    }

    #[test]
    fn median_of_means_degenerate_groupings() {
        let values = [2.0, 4.0, 6.0];
        assert_eq!(median_of_means(&values, 0), Some(4.0));
        assert_eq!(median_of_means(&values, 100), Some(4.0));
        assert_eq!(median_of_means(&[], 3), None);
    }

    #[test]
    fn repetitions_monotone_in_delta() {
        let r1 = repetitions_for_delta(0.1);
        let r2 = repetitions_for_delta(0.01);
        let r3 = repetitions_for_delta(0.001);
        assert!(r1 <= r2 && r2 <= r3);
        assert!(r1 % 2 == 1 && r2 % 2 == 1 && r3 % 2 == 1, "repetitions must be odd");
        assert!(r1 >= 1);
    }

    #[test]
    fn relative_error_cases() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), f64::INFINITY);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
