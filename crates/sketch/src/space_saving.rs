//! The SpaceSaving / stream-summary algorithm (Metwally, Agrawal, El Abbadi,
//! 2005) for frequent-item counting with bounded over-estimation.
//!
//! SpaceSaving maintains at most `capacity` `(item, count, overestimate)`
//! entries. When a new item arrives and the summary is full, the entry with
//! the smallest count is *recycled*: the new item inherits that count (which
//! becomes its recorded over-estimation) plus its own weight. Guarantees:
//!
//! * every monitored item's count over-estimates its true frequency by at most
//!   the smallest count in the summary (≤ total weight / capacity);
//! * every item with true frequency above `total / capacity` is present.
//!
//! Crucially for the `F_k` estimator ([`crate::fk`]): **while the summary has
//! never been full, every count is exact and every inserted item is present.**
//! The subsampled levels of `FkSketch` exploit exactly this regime.
//!
//! Only non-negative weights are supported (cash-register model).

use crate::error::{Result, SketchError};
use crate::traits::{MergeableSketch, PointQuery, SpaceUsage, StreamSketch};
use std::collections::HashMap;

/// One monitored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceSavingEntry {
    /// The item identifier.
    pub item: u64,
    /// Recorded count (true frequency ≤ count ≤ true frequency + overestimate).
    pub count: u64,
    /// Upper bound on how much `count` over-estimates the true frequency.
    pub overestimate: u64,
}

/// SpaceSaving summary with a fixed capacity.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    entries: HashMap<u64, (u64, u64)>, // item -> (count, overestimate)
    capacity: usize,
    total_weight: u64,
    /// True once an eviction has happened (counts may be inexact from then on).
    ever_evicted: bool,
}

impl SpaceSaving {
    /// Create a summary monitoring at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        Self {
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
            capacity,
            total_weight: 0,
            ever_evicted: false,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total inserted weight.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of currently monitored items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no item is monitored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True iff the summary has never evicted an entry, i.e. every count is
    /// exact and every item ever inserted is still present.
    pub fn is_exact(&self) -> bool {
        !self.ever_evicted
    }

    /// Worst-case over-estimation of any count: the smallest monitored count
    /// if the structure has ever been full, zero otherwise.
    pub fn error_bound(&self) -> u64 {
        if self.is_exact() {
            0
        } else {
            self.entries.values().map(|&(c, _)| c).min().unwrap_or(0)
        }
    }

    /// Iterate over the monitored entries in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = SpaceSavingEntry> + '_ {
        self.entries.iter().map(|(&item, &(count, overestimate))| SpaceSavingEntry {
            item,
            count,
            overestimate,
        })
    }

    /// Entries sorted by decreasing count.
    pub fn sorted_entries(&self) -> Vec<SpaceSavingEntry> {
        let mut v: Vec<SpaceSavingEntry> = self.entries().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.item.cmp(&b.item)));
        v
    }

    /// All items whose *guaranteed* frequency (count − overestimate) is at
    /// least `threshold`.
    pub fn guaranteed_above(&self, threshold: u64) -> Vec<SpaceSavingEntry> {
        self.entries()
            .filter(|e| e.count.saturating_sub(e.overestimate) >= threshold)
            .collect()
    }

    fn insert_weighted(&mut self, item: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total_weight += weight;
        if let Some(entry) = self.entries.get_mut(&item) {
            entry.0 += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(item, (weight, 0));
            return;
        }
        // Recycle the minimum-count entry.
        self.ever_evicted = true;
        let (&victim, &(min_count, _)) = self
            .entries
            .iter()
            .min_by_key(|&(_, &(c, _))| c)
            .expect("capacity > 0 so the map is non-empty");
        self.entries.remove(&victim);
        self.entries.insert(item, (min_count + weight, min_count));
    }
}

impl StreamSketch for SpaceSaving {
    fn update(&mut self, item: u64, weight: i64) {
        debug_assert!(weight >= 0, "SpaceSaving only supports non-negative weights");
        self.insert_weighted(item, weight.max(0) as u64);
    }
}

impl PointQuery for SpaceSaving {
    fn frequency_estimate(&self, item: u64) -> f64 {
        self.entries.get(&item).map_or(0.0, |&(c, _)| c as f64)
    }
}

impl MergeableSketch for SpaceSaving {
    /// Merge two summaries (Agarwal et al., "Mergeable Summaries"): sum counts
    /// and over-estimates of common items, take the union, then keep the
    /// `capacity` largest entries, adding the count of the largest discarded
    /// entry to the over-estimation budget of survivors implicitly through the
    /// usual SpaceSaving error analysis.
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "SpaceSaving capacity mismatch: {} vs {}",
                    self.capacity, other.capacity
                ),
            });
        }
        for (&item, &(count, over)) in &other.entries {
            let e = self.entries.entry(item).or_insert((0, 0));
            e.0 += count;
            e.1 += over;
        }
        self.total_weight += other.total_weight;
        self.ever_evicted |= other.ever_evicted;
        if self.entries.len() > self.capacity {
            self.ever_evicted = true;
            let mut all: Vec<(u64, (u64, u64))> =
                self.entries.iter().map(|(&k, &v)| (k, v)).collect();
            all.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
            all.truncate(self.capacity);
            self.entries = all.into_iter().collect();
        }
        Ok(())
    }
}

impl SpaceUsage for SpaceSaving {
    fn stored_tuples(&self) -> usize {
        self.entries.len()
    }

    fn space_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<u64>() * 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }

    #[test]
    fn exact_while_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for x in 0..50u64 {
            ss.update(x, (x + 1) as i64);
        }
        assert!(ss.is_exact());
        assert_eq!(ss.error_bound(), 0);
        for x in 0..50u64 {
            assert_eq!(ss.frequency_estimate(x), (x + 1) as f64);
        }
        assert_eq!(ss.len(), 50);
        assert_eq!(ss.total_weight(), (1..=50).sum::<u64>());
    }

    #[test]
    fn eviction_keeps_heavy_items() {
        let mut ss = SpaceSaving::new(10);
        // Two heavy items and a long tail of singletons.
        for _ in 0..1000 {
            ss.update(1, 1);
            ss.update(2, 1);
        }
        for x in 100..600u64 {
            ss.update(x, 1);
        }
        assert!(!ss.is_exact());
        let top = ss.sorted_entries();
        let top_items: Vec<u64> = top.iter().take(2).map(|e| e.item).collect();
        assert!(top_items.contains(&1));
        assert!(top_items.contains(&2));
        // Counts of the heavy items never under-estimate.
        assert!(ss.frequency_estimate(1) >= 1000.0);
        assert!(ss.frequency_estimate(2) >= 1000.0);
    }

    #[test]
    fn overestimate_bounded_by_error_bound() {
        let mut ss = SpaceSaving::new(20);
        for x in 0..500u64 {
            ss.update(x % 50, 1);
        }
        let bound = ss.error_bound();
        for e in ss.entries() {
            let truth = 10.0; // every residue class 0..50 appears 10 times
            assert!(e.count as f64 >= truth || e.count >= 1);
            assert!(
                (e.count as f64) <= truth + bound as f64,
                "count {} exceeds truth+bound {}",
                e.count,
                truth + bound as f64
            );
        }
    }

    #[test]
    fn guaranteed_above_filters_by_lower_bound() {
        let mut ss = SpaceSaving::new(4);
        for _ in 0..100 {
            ss.update(7, 1);
        }
        for x in 0..40u64 {
            ss.update(x + 100, 1);
        }
        let guaranteed = ss.guaranteed_above(50);
        assert_eq!(guaranteed.len(), 1);
        assert_eq!(guaranteed[0].item, 7);
    }

    #[test]
    fn zero_weight_is_a_no_op() {
        let mut ss = SpaceSaving::new(4);
        ss.update(1, 0);
        assert!(ss.is_empty());
        assert_eq!(ss.total_weight(), 0);
    }

    #[test]
    fn merge_exact_summaries_is_exact_union() {
        let mut a = SpaceSaving::new(100);
        let mut b = SpaceSaving::new(100);
        for x in 0..30u64 {
            a.update(x, 2);
        }
        for x in 20..60u64 {
            b.update(x, 3);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.frequency_estimate(0), 2.0);
        assert_eq!(a.frequency_estimate(25), 5.0);
        assert_eq!(a.frequency_estimate(59), 3.0);
        assert!(a.is_exact());
    }

    #[test]
    fn merge_trims_to_capacity() {
        let mut a = SpaceSaving::new(10);
        let mut b = SpaceSaving::new(10);
        for x in 0..10u64 {
            a.update(x, (x + 1) as i64 * 10);
        }
        for x in 10..20u64 {
            b.update(x, (x + 1) as i64 * 10);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.len(), 10);
        assert!(!a.is_exact());
        // The largest items must survive the trim.
        assert!(a.frequency_estimate(19) > 0.0);
        assert_eq!(a.frequency_estimate(0), 0.0);
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSaving::new(10);
        let b = SpaceSaving::new(20);
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn space_accounting() {
        let mut ss = SpaceSaving::new(8);
        for x in 0..5u64 {
            ss.update(x, 1);
        }
        assert_eq!(ss.stored_tuples(), 5);
        assert_eq!(ss.space_bytes(), 5 * 24);
    }

    #[test]
    fn sorted_entries_are_descending() {
        let mut ss = SpaceSaving::new(16);
        for (x, f) in [(1u64, 5i64), (2, 50), (3, 20)] {
            ss.update(x, f);
        }
        let sorted = ss.sorted_entries();
        assert_eq!(sorted[0].item, 2);
        assert_eq!(sorted[1].item, 3);
        assert_eq!(sorted[2].item, 1);
    }
}
