//! The classic Alon–Matias–Szegedy sketch for the second frequency moment.
//!
//! Each atom maintains `Z = Σ_x s(x) · f_x` for a 4-wise independent sign hash
//! `s`; `Z²` is an unbiased estimator of `F_2` with variance at most `2 F_2²`.
//! Averaging `s1 = O(1/ε²)` atoms and taking the median of `s2 = O(log 1/δ)`
//! averages yields an `(ε, δ)`-estimator (Theorem 2.2 of AMS'99). This is the
//! textbook construction referenced by Property V of the correlated-aggregation
//! paper; the experiments use the faster bucketed variant in
//! [`crate::fast_ams`], and this module is kept both as a reference
//! implementation and as the comparison point for the ablation benchmarks.
//!
//! The sketch is a linear function of the frequency vector, so it supports
//! negative weights (turnstile updates) and merging by atom-wise addition.

use crate::error::{check_delta, check_epsilon, Result, SketchError};
use crate::estimator_util::median_mut;
use crate::traits::{Estimate, MergeableSketch, SpaceUsage, StreamSketch};
use cora_hash::mix::derive_seed;
use cora_hash::sign::FourWiseSignHash;
use cora_hash::traits::SignHash;

/// Classic AMS F2 sketch: `s2` groups of `s1` sign-sum atoms.
#[derive(Debug, Clone)]
pub struct AmsF2Sketch {
    /// Atom counters, laid out row-major: `groups` rows of `atoms_per_group`.
    atoms: Vec<i64>,
    /// Sign hash per atom (row-major, same layout as `atoms`).
    signs: Vec<FourWiseSignHash>,
    atoms_per_group: usize,
    groups: usize,
    seed: u64,
}

impl AmsF2Sketch {
    /// Build a sketch achieving relative error `epsilon` with failure
    /// probability `delta`, using hash functions derived from `seed`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        // Variance of one atom is <= 2 F2^2, so s1 = 8/eps^2 atoms give a
        // (1±eps) estimate with probability >= 3/4 (Chebyshev); s2 = O(log 1/δ)
        // medians boost the confidence.
        let atoms_per_group = ((8.0 / (epsilon * epsilon)).ceil() as usize).max(1);
        let groups = crate::estimator_util::repetitions_for_delta(delta);
        Ok(Self::with_dimensions(atoms_per_group, groups, seed))
    }

    /// Build a sketch with explicit dimensions (used by tests and ablations).
    pub fn with_dimensions(atoms_per_group: usize, groups: usize, seed: u64) -> Self {
        let atoms_per_group = atoms_per_group.max(1);
        let groups = groups.max(1);
        let total = atoms_per_group * groups;
        let signs = (0..total)
            .map(|i| FourWiseSignHash::new(derive_seed(seed, i as u64)))
            .collect();
        Self {
            atoms: vec![0; total],
            signs,
            atoms_per_group,
            groups,
            seed,
        }
    }

    /// Number of atoms per averaging group.
    pub fn atoms_per_group(&self) -> usize {
        self.atoms_per_group
    }

    /// Number of median groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The seed the hash functions were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl StreamSketch for AmsF2Sketch {
    #[inline]
    fn update(&mut self, item: u64, weight: i64) {
        for (atom, sign) in self.atoms.iter_mut().zip(self.signs.iter()) {
            *atom += sign.sign(item) * weight;
        }
    }
}

impl Estimate for AmsF2Sketch {
    fn estimate(&self) -> f64 {
        let mut group_means: Vec<f64> = self
            .atoms
            .chunks(self.atoms_per_group)
            .map(|group| {
                let sum: f64 = group.iter().map(|&z| (z as f64) * (z as f64)).sum();
                sum / group.len() as f64
            })
            .collect();
        median_mut(&mut group_means).unwrap_or(0.0)
    }
}

impl MergeableSketch for AmsF2Sketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.atoms_per_group != other.atoms_per_group
            || self.groups != other.groups
            || self.seed != other.seed
        {
            return Err(SketchError::IncompatibleMerge {
                detail: format!(
                    "AMS dims/seed mismatch: ({}, {}, {:#x}) vs ({}, {}, {:#x})",
                    self.atoms_per_group,
                    self.groups,
                    self.seed,
                    other.atoms_per_group,
                    other.groups,
                    other.seed
                ),
            });
        }
        for (a, b) in self.atoms.iter_mut().zip(other.atoms.iter()) {
            *a += b;
        }
        Ok(())
    }
}

impl SpaceUsage for AmsF2Sketch {
    fn stored_tuples(&self) -> usize {
        self.atoms.len()
    }

    fn space_bytes(&self) -> usize {
        self.atoms.len() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator_util::relative_error;

    fn exact_f2(freqs: &[(u64, i64)]) -> f64 {
        freqs.iter().map(|&(_, f)| (f as f64) * (f as f64)).sum()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(AmsF2Sketch::new(0.0, 0.1, 1).is_err());
        assert!(AmsF2Sketch::new(0.1, 0.0, 1).is_err());
        assert!(AmsF2Sketch::new(1.5, 0.1, 1).is_err());
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = AmsF2Sketch::new(0.3, 0.1, 7).unwrap();
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn single_item_estimate_is_exact() {
        // One item with frequency f: every atom holds ±f, so the estimate is
        // exactly f² regardless of the hash functions.
        let mut s = AmsF2Sketch::with_dimensions(16, 3, 11);
        for _ in 0..25 {
            s.insert(42);
        }
        assert_eq!(s.estimate(), 625.0);
    }

    #[test]
    fn estimates_within_error_on_uniform_frequencies() {
        let mut s = AmsF2Sketch::new(0.2, 0.05, 3).unwrap();
        let freqs: Vec<(u64, i64)> = (0..200u64).map(|x| (x, 10)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let truth = exact_f2(&freqs);
        let err = relative_error(s.estimate(), truth);
        assert!(err < 0.2, "relative error {err} exceeds epsilon");
    }

    #[test]
    fn estimates_within_error_on_skewed_frequencies() {
        let mut s = AmsF2Sketch::new(0.2, 0.05, 5).unwrap();
        // Zipf-ish: item x has frequency ~ 1000 / (x+1).
        let freqs: Vec<(u64, i64)> = (0..100u64).map(|x| (x, (1000 / (x + 1)) as i64)).collect();
        for &(x, f) in &freqs {
            s.update(x, f);
        }
        let truth = exact_f2(&freqs);
        let err = relative_error(s.estimate(), truth);
        assert!(err < 0.2, "relative error {err} exceeds epsilon");
    }

    #[test]
    fn negative_weights_cancel() {
        let mut s = AmsF2Sketch::with_dimensions(32, 3, 2);
        for x in 0..50u64 {
            s.update(x, 7);
        }
        for x in 0..50u64 {
            s.update(x, -7);
        }
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let seed = 17;
        let mut full = AmsF2Sketch::with_dimensions(64, 5, seed);
        let mut left = AmsF2Sketch::with_dimensions(64, 5, seed);
        let mut right = AmsF2Sketch::with_dimensions(64, 5, seed);
        for x in 0..300u64 {
            full.update(x, (x % 7) as i64 + 1);
            if x < 150 {
                left.update(x, (x % 7) as i64 + 1);
            } else {
                right.update(x, (x % 7) as i64 + 1);
            }
        }
        left.merge_from(&right).unwrap();
        assert_eq!(left.estimate(), full.estimate());
    }

    #[test]
    fn merge_rejects_different_seed() {
        let a = AmsF2Sketch::with_dimensions(8, 3, 1);
        let b = AmsF2Sketch::with_dimensions(8, 3, 2);
        assert!(matches!(
            a.merged(&b),
            Err(SketchError::IncompatibleMerge { .. })
        ));
    }

    #[test]
    fn merge_rejects_different_dimensions() {
        let a = AmsF2Sketch::with_dimensions(8, 3, 1);
        let b = AmsF2Sketch::with_dimensions(16, 3, 1);
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn space_accounting_matches_dimensions() {
        let s = AmsF2Sketch::with_dimensions(10, 5, 1);
        assert_eq!(s.stored_tuples(), 50);
        assert_eq!(s.space_bytes(), 400);
    }

    #[test]
    fn parameter_sizing_decreases_with_larger_epsilon() {
        let tight = AmsF2Sketch::new(0.1, 0.1, 1).unwrap();
        let loose = AmsF2Sketch::new(0.3, 0.1, 1).unwrap();
        assert!(tight.atoms_per_group() > loose.atoms_per_group());
    }
}
