//! Bit-identity pins for the fast-AMS kernel paths.
//!
//! The flat-lane sketch ([`FastAmsSketch`]) has several routes to the same
//! counters: per-tuple scalar updates, prepared single updates, the unrolled
//! prepared-batch kernel (whole batches and arbitrary sub-ranges), merges,
//! and snapshot round trips. Every route must produce **bit-identical**
//! state — not approximately equal estimates — because the correlated
//! framework mixes the routes freely (scalar inserts, batched inserts,
//! query-time merges, crash recovery) and any divergence would make the
//! structure depend on which code path happened to run.
//!
//! The reference model is built directly on [`PolynomialHash`] — the
//! mathematical definition of the estimator — so these tests also pin the
//! inline fixed-arity hash evaluators against the hash functions they were
//! copied from. State is compared through the snapshot codec's byte
//! encoding, which captures every counter exactly.

use cora_sketch::{
    ByteReader, ByteWriter, Estimate, FastAmsBatch, FastAmsSketch, MergeableSketch, SharedUpdate,
    StateCodec, StreamSketch,
};

use cora_hash::mix::derive_seed;
use cora_hash::polynomial::PolynomialHash;
use cora_hash::traits::HashFunction64;

use proptest::prelude::*;

/// Independent scalar reference: rows of plain `Vec<i64>` counters driven by
/// [`PolynomialHash`] lookups per update — no flat lane, no sideband, no
/// prepared coordinates, no unrolling.
struct ReferenceModel {
    rows: Vec<Vec<i64>>,
    bucket_hashes: Vec<PolynomialHash>,
    sign_hashes: Vec<PolynomialHash>,
}

impl ReferenceModel {
    fn new(width: usize, depth: usize, seed: u64) -> Self {
        let row_seed = |r: u64| derive_seed(seed, r);
        Self {
            rows: vec![vec![0i64; width]; depth],
            bucket_hashes: (0..depth as u64)
                .map(|r| PolynomialHash::new(2, derive_seed(row_seed(r), 0xB)))
                .collect(),
            sign_hashes: (0..depth as u64)
                .map(|r| PolynomialHash::new(4, derive_seed(row_seed(r), 0x5)))
                .collect(),
        }
    }

    fn update(&mut self, item: u64, weight: i64) {
        let width = self.rows[0].len() as u64;
        for (row, (bh, sh)) in self
            .rows
            .iter_mut()
            .zip(self.bucket_hashes.iter().zip(&self.sign_hashes))
        {
            let b = bh.hash_range(item, width) as usize;
            let sign = if (sh.hash64(item) >> 62) & 1 == 1 { 1 } else { -1 };
            row[b] += sign * weight;
        }
    }

    fn estimate(&self) -> f64 {
        median(
            self.rows
                .iter()
                .map(|row| row.iter().map(|&c| (c as i128) * (c as i128)).sum::<i128>() as f64)
                .collect(),
        )
    }

    fn frequency_estimate(&self, item: u64) -> f64 {
        let width = self.rows[0].len() as u64;
        median(
            self.rows
                .iter()
                .zip(self.bucket_hashes.iter().zip(&self.sign_hashes))
                .map(|(row, (bh, sh))| {
                    let b = bh.hash_range(item, width) as usize;
                    let sign = if (sh.hash64(item) >> 62) & 1 == 1 { 1 } else { -1 };
                    (sign * row[b]) as f64
                })
                .collect(),
        )
    }
}

/// Median with the estimator's convention: mean of the two middle samples
/// for an even row count.
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// The sketch's exact counter state as snapshot bytes (width, depth, seed,
/// and every counter) — byte equality here is bit equality of the lanes.
fn state_bytes(s: &FastAmsSketch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    s.encode_state(&mut w);
    w.into_bytes()
}

/// Drive `items` through every update route and assert all routes land on
/// identical bytes; returns the scalar-path sketch for further checks.
fn assert_routes_identical(width: usize, depth: usize, seed: u64, items: &[(u64, i64)]) -> FastAmsSketch {
    // Route 1: per-tuple scalar updates.
    let mut scalar = FastAmsSketch::with_dimensions(width, depth, seed);
    for &(x, w) in items {
        scalar.update(x, w);
    }

    // Route 2: prepared single updates.
    let mut prepared_path = FastAmsSketch::with_dimensions(width, depth, seed);
    let mut prepared = Default::default();
    for &(x, w) in items {
        prepared_path.prepare_into(x, w, &mut prepared);
        prepared_path.apply_prepared(&prepared);
    }

    // Route 3: one prepared batch applied whole through the unrolled kernel.
    let mut batch = FastAmsBatch::default();
    scalar.prepare_batch_into(items, &mut batch);
    let mut batched = FastAmsSketch::with_dimensions(width, depth, seed);
    batched.apply_prepared_range(&batch, 0..items.len());

    // Route 4: the same batch applied in uneven sub-ranges (exercises the
    // kernel's unrolled quads *and* its scalar remainder at every cut).
    let mut ranged = FastAmsSketch::with_dimensions(width, depth, seed);
    let n = items.len();
    let cuts = [0, n / 7, n / 3, n / 3 + 1, (2 * n) / 3, n];
    let mut sorted_cuts: Vec<usize> = cuts.to_vec();
    sorted_cuts.sort_unstable();
    for pair in sorted_cuts.windows(2) {
        ranged.apply_prepared_range(&batch, pair[0]..pair[1]);
    }

    // Route 5: split the stream in two, sketch the halves, merge.
    let mut left = FastAmsSketch::with_dimensions(width, depth, seed);
    let mut right = FastAmsSketch::with_dimensions(width, depth, seed);
    for (i, &(x, w)) in items.iter().enumerate() {
        if i % 2 == 0 {
            left.update(x, w);
        } else {
            right.update(x, w);
        }
    }
    left.merge_from(&right).expect("same-shape merge");

    // Route 6: snapshot round trip of the scalar sketch.
    let bytes = state_bytes(&scalar);
    let mut restored = FastAmsSketch::with_dimensions(width, depth, seed);
    let mut reader = ByteReader::new(&bytes);
    restored.decode_state(&mut reader).expect("decode own snapshot");

    let expected = state_bytes(&scalar);
    assert_eq!(state_bytes(&prepared_path), expected, "prepared-single path diverged");
    assert_eq!(state_bytes(&batched), expected, "batch kernel diverged");
    assert_eq!(state_bytes(&ranged), expected, "ranged batch kernel diverged");
    assert_eq!(state_bytes(&left), expected, "merge path diverged");
    assert_eq!(state_bytes(&restored), expected, "snapshot round trip diverged");

    // And all of it must equal the PolynomialHash-driven reference model —
    // compared through both estimators (for depth 1 the frequency estimate
    // *is* the raw signed counter, so this pins individual counters too).
    let mut reference = ReferenceModel::new(width, depth, seed);
    for &(x, w) in items {
        reference.update(x, w);
    }
    assert_eq!(
        scalar.estimate(),
        reference.estimate(),
        "estimate diverges from the reference model"
    );
    let mut probes: Vec<u64> = items.iter().map(|&(x, _)| x).collect();
    probes.sort_unstable();
    probes.dedup();
    probes.truncate(64);
    probes.extend([0, 1, u64::MAX, 0xDEAD_BEEF]); // absent keys probe zero counters
    for item in probes {
        assert_eq!(
            scalar.frequency_estimate(item),
            reference.frequency_estimate(item),
            "frequency estimate for {item} diverges from the reference model"
        );
    }
    scalar
}

/// Deterministic xorshift so the named stream shapes are reproducible.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn uniform_stream(n: usize, seed: u64) -> Vec<(u64, i64)> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            let x = xorshift(&mut s);
            (x % 1_000_000, ((x >> 32) % 9) as i64 - 4)
        })
        .map(|(x, w)| (x, if w == 0 { 1 } else { w }))
        .collect()
}

fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, i64)> {
    // Approximate zipf(1.0) over 10k items via inverse-rank sampling.
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            let u = (xorshift(&mut s) % 10_000) + 1;
            let rank = 10_000 / u; // heavy head, long tail
            (rank, ((u % 7) as i64) - 3)
        })
        .map(|(x, w)| (x, if w == 0 { 2 } else { w }))
        .collect()
}

fn low_entropy_stream(n: usize) -> Vec<(u64, i64)> {
    // Three distinct keys, long same-key runs: duplicate buckets inside the
    // kernel's unrolled quads on every row.
    (0..n).map(|i| ((i / 64 % 3) as u64, 1)).collect()
}

#[test]
fn named_stream_shapes_are_bit_identical_across_routes() {
    for (name, items) in [
        ("uniform", uniform_stream(3_000, 0xA11CE)),
        ("zipf", zipf_stream(3_000, 0xB0B)),
        ("low_entropy", low_entropy_stream(3_000)),
    ] {
        let sketch = assert_routes_identical(200, 3, 7, &items);
        assert!(sketch.estimate() > 0.0, "{name}: estimate collapsed to zero");
    }
}

#[test]
fn trimmed_routes_match_native_shallow_sketch() {
    // A trimmed sketch must behave exactly like a natively-shallow sketch on
    // every route (rows derive per-row seeds, so prefixes agree).
    let items = uniform_stream(2_000, 0x7E57);
    let mut deep = FastAmsSketch::with_dimensions(128, 9, 11);
    let active = deep.trim_to_delta(0.3).expect("trim empty sketch");
    assert!(active < 9);
    let mut batch = FastAmsBatch::default();
    deep.prepare_batch_into(&items, &mut batch);
    deep.apply_prepared_range(&batch, 0..items.len());

    let mut shallow = FastAmsSketch::with_dimensions(128, active, 11);
    for &(x, w) in &items {
        shallow.update(x, w);
    }
    assert_eq!(deep.estimate(), shallow.estimate());
    assert_eq!(deep.frequency_estimate(42), shallow.frequency_estimate(42));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary turnstile streams over arbitrary (small) geometries: all
    /// update routes land on identical bytes and match the reference model.
    #[test]
    fn arbitrary_streams_are_bit_identical_across_routes(
        width in 2usize..64,
        depth in 1usize..6,
        seed in 0u64..1024,
        items in proptest::collection::vec((0u64..100_000, -50i64..50), 1..400),
    ) {
        let items: Vec<(u64, i64)> = items
            .into_iter()
            .map(|(x, w)| (x, if w == 0 { 1 } else { w }))
            .collect();
        assert_routes_identical(width, depth, seed, &items);
    }
}
