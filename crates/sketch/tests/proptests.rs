//! Property-based tests for the whole-stream sketches: merge semantics,
//! linearity, and agreement with exact baselines on small inputs.

use cora_sketch::{
    DistinctSampler, Estimate, ExactFrequencies, F0Sketch, FastAmsSketch, KmvSketch,
    MergeableSketch, MisraGries, PointQuery, SpaceSaving, SpaceUsage, StreamSketch,
};
use proptest::prelude::*;

/// Strategy: a small stream of (item, weight) pairs with positive weights.
fn small_stream() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..200, 1i64..20), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_ams_merge_equals_concatenation(a in small_stream(), b in small_stream(), seed in any::<u64>()) {
        let mut sa = FastAmsSketch::with_dimensions(64, 3, seed);
        let mut sb = FastAmsSketch::with_dimensions(64, 3, seed);
        let mut sc = FastAmsSketch::with_dimensions(64, 3, seed);
        for &(x, w) in &a { sa.update(x, w); sc.update(x, w); }
        for &(x, w) in &b { sb.update(x, w); sc.update(x, w); }
        let merged = sa.merged(&sb).unwrap();
        prop_assert_eq!(merged.estimate(), sc.estimate());
    }

    #[test]
    fn fast_ams_is_linear_in_weights(a in small_stream(), seed in any::<u64>()) {
        // Inserting the stream and then its negation must cancel exactly.
        let mut s = FastAmsSketch::with_dimensions(64, 3, seed);
        for &(x, w) in &a { s.update(x, w); }
        for &(x, w) in &a { s.update(x, -w); }
        prop_assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn kmv_merge_is_order_independent(a in small_stream(), b in small_stream(), seed in any::<u64>()) {
        let mut ab = KmvSketch::new(32, seed);
        let mut ba = KmvSketch::new(32, seed);
        for &(x, _) in &a { ab.insert(x); }
        for &(x, _) in &b { ab.insert(x); }
        for &(x, _) in &b { ba.insert(x); }
        for &(x, _) in &a { ba.insert(x); }
        prop_assert_eq!(ab.estimate(), ba.estimate());
    }

    #[test]
    fn distinct_sampler_never_exceeds_capacity(a in small_stream(), seed in any::<u64>(), cap in 4usize..64) {
        let mut s = DistinctSampler::new(cap, seed);
        for &(x, _) in &a { s.insert(x); }
        prop_assert!(s.sample_size() <= cap);
        prop_assert!(s.stored_tuples() <= cap);
    }

    #[test]
    fn f0_exact_when_small(a in prop::collection::vec(0u64..50, 1..40), seed in any::<u64>()) {
        // Fewer distinct items than capacity: the sampler is exact.
        let mut s = F0Sketch::with_dimensions(128, 3, seed);
        let mut exact = ExactFrequencies::new();
        for &x in &a { s.insert(x); exact.insert(x); }
        prop_assert_eq!(s.estimate(), exact.frequency_moment(0));
    }

    #[test]
    fn space_saving_exact_under_capacity(a in prop::collection::vec((0u64..30, 1i64..10), 1..60)) {
        let mut ss = SpaceSaving::new(64);
        let mut exact = ExactFrequencies::new();
        for &(x, w) in &a { ss.update(x, w); exact.update(x, w); }
        prop_assert!(ss.is_exact());
        for (x, f) in exact.iter() {
            prop_assert_eq!(ss.frequency_estimate(x), f as f64);
        }
    }

    #[test]
    fn space_saving_counts_never_underestimate(a in small_stream()) {
        let mut ss = SpaceSaving::new(8);
        let mut exact = ExactFrequencies::new();
        for &(x, w) in &a { ss.update(x, w); exact.update(x, w); }
        for e in ss.entries() {
            prop_assert!(e.count as i64 >= exact.frequency(e.item),
                "SpaceSaving undercounted item {}", e.item);
        }
    }

    #[test]
    fn misra_gries_never_overestimates(a in small_stream()) {
        let mut mg = MisraGries::new(8);
        let mut exact = ExactFrequencies::new();
        for &(x, w) in &a { mg.update(x, w); exact.update(x, w); }
        for (x, f) in exact.iter() {
            prop_assert!(mg.frequency_estimate(x) <= f as f64 + 1e-9);
        }
    }

    #[test]
    fn exact_frequencies_merge_is_vector_addition(a in small_stream(), b in small_stream()) {
        let mut ea = ExactFrequencies::new();
        let mut eb = ExactFrequencies::new();
        let mut ec = ExactFrequencies::new();
        for &(x, w) in &a { ea.update(x, w); ec.update(x, w); }
        for &(x, w) in &b { eb.update(x, w); ec.update(x, w); }
        ea.merge_from(&eb).unwrap();
        for x in 0u64..200 {
            prop_assert_eq!(ea.frequency(x), ec.frequency(x));
        }
    }

    #[test]
    fn exact_moments_are_monotone_in_k(a in small_stream()) {
        // For integer frequencies >= 1, F_{k+1} >= F_k.
        let mut e = ExactFrequencies::new();
        for &(x, w) in &a { e.update(x, w); }
        let f1 = e.frequency_moment(1);
        let f2 = e.frequency_moment(2);
        let f3 = e.frequency_moment(3);
        prop_assert!(f2 >= f1 - 1e-9);
        prop_assert!(f3 >= f2 - 1e-9);
    }
}
