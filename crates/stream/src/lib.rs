//! # cora-stream
//!
//! The streaming substrate around the correlated-aggregation library:
//!
//! * [`mod@tuple`] — the `(x, y, weight)` stream model (cash-register and
//!   turnstile);
//! * [`generators`] — the paper's experimental workloads (Uniform, Zipf(α),
//!   the Ethernet-trace surrogate, and stress generators);
//! * [`multipass`] — the `O(log y_max)`-pass MULTIPASS algorithm for the
//!   turnstile model (Algorithm 4) over a replayable [`multipass::StoredStream`];
//! * [`lower_bound`] — GREATER-THAN hard instances behind the single-pass
//!   lower bound (Section 4.1);
//! * [`async_window`] — sliding-window aggregation over asynchronous
//!   (out-of-order) streams via the reduction to correlated aggregates;
//! * [`windowed`] — the exponential-histogram pane ring answering
//!   `(time window, y-threshold)` two-dimensional slices (sliding, landmark,
//!   and fading-factor decayed variants) by composing mergeable panes;
//! * [`sharded`] — the worker-sharded parallel ingest front-end
//!   ([`ShardedIngest`]): lock-free SPSC rings feeding N same-seeded
//!   correlated sketches, merged at query time (Property V);
//! * [`driver`] — measurement plumbing shared by the experiment harness;
//! * [`json`] — hand-rolled JSON helpers for the report types (the build is
//!   offline, so there is no `serde`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod async_window;
pub mod driver;
pub mod generators;
pub mod json;
pub mod lower_bound;
pub mod multipass;
pub mod sharded;
pub mod tuple;
pub mod windowed;

pub use async_window::{AsyncWindowCount, AsyncWindowF2};
pub use windowed::{
    windowed_count, windowed_f0, windowed_f2, PaneConfig, PaneRing, WindowPane, WindowedCount,
    WindowedF0, WindowedF2,
};
pub use sharded::{sharded_correlated_f2, ShardReader, ShardedIngest};
pub use driver::{default_thresholds, relative_errors, time_ingest, RunReport};
pub use generators::{
    f0_experiment_generators, f2_experiment_generators, DatasetGenerator, EthernetGenerator,
    SortedYGenerator, UniformGenerator, ZipfGenerator,
};
pub use lower_bound::{greater_than_instance, solve_exactly};
pub use multipass::{multipass_f2, MultipassEstimator, StoredStream};
pub use tuple::{summarize, DatasetSummary, StreamTuple};
