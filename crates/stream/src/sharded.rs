//! Worker-sharded parallel ingest front-end for correlated sketches
//! (scale-out ingest, as opposed to the scale-up hot-path work inside
//! `cora-core`).
//!
//! ## Why sharding is lossless here
//!
//! The paper's Property V requires every per-bucket summary inside one
//! correlated structure to share hash seeds, so that bucket summaries
//! *compose*: the merge of the sketches of two multisets is a sketch of their
//! union. The same property lifts one level up — two whole
//! [`CorrelatedSketch`]es built with the same configuration and seed over
//! *disjoint sub-streams* merge into a sketch of the concatenated stream
//! ([`CorrelatedSketch::merge_from`]). Per-bucket stores are linear (exact
//! frequency vectors add entry-wise, fast-AMS counters add counter-wise), so
//! a merged bucket is indistinguishable from one built sequentially; the only
//! composition-specific error term is Algorithm 3's boundary-bucket omission,
//! which grows at most linearly in the number of shards and is absorbed by
//! the α budget for small shard counts (see the property tests in
//! `tests/tests/sharded_merge.rs`).
//!
//! Because of that, a stream may be partitioned *arbitrarily* across N
//! ingest workers — no key-based routing is needed — and queries answered by
//! merging the per-worker sketches. [`ShardedIngest`] packages this:
//!
//! * the caller's thread batches tuples and hands each batch to one worker
//!   round-robin through a **hand-rolled lock-free bounded SPSC ring** (one
//!   ring per worker; single producer = the caller, single consumer = the
//!   worker);
//! * each worker owns a same-seeded [`CorrelatedSketch`] and applies batches
//!   with the amortized [`CorrelatedSketch::update_batch`] path;
//! * queries merge the shard sketches into a **composite** that is cached
//!   and invalidated by per-shard generation counters (one generation per
//!   applied batch) through the unified query core's
//!   [`cora_core::GenCache`], so a quiescent system answers
//!   repeated queries from the cache — and through the composite's own
//!   memoized compositions — without re-merging anything. Mixed
//!   update/query loads can additionally opt into a **stale-tolerant**
//!   composite with [`ShardedIngest::with_merge_every`], which defers the
//!   N-shard re-merge until `k` new batches have been applied (staleness
//!   bounded by `(k − 1) · batch_size` tuples).
//!
//! ```
//! use cora_stream::sharded::sharded_correlated_f2;
//!
//! let mut ingest = sharded_correlated_f2(0.2, 0.1, 1023, 100_000, 7, 4).unwrap();
//! for i in 0..10_000u64 {
//!     ingest.insert(i % 500, i % 1024).unwrap();
//! }
//! ingest.flush(); // barrier: every accepted tuple is applied
//! let f2_below_200 = ingest.query(200).unwrap();
//! assert!(f2_below_200 > 0.0);
//! ```

use cora_core::{CoreError, CorrelatedAggregate, CorrelatedConfig, CorrelatedSketch, F2Aggregate};
use cora_core::{GenCache, Result, SketchStats};
use cora_sketch::codec::StateCodec;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Default number of tuples per dispatched batch.
const DEFAULT_BATCH_SIZE: usize = 1024;

/// Ring capacity in batches (power of two). With the default batch size this
/// bounds the in-flight buffer per worker to 32k tuples.
const RING_CAPACITY: usize = 32;

/// Consumer spins this many times on an empty ring before parking.
const IDLE_SPINS: u32 = 64;

/// A cursor on its own cache line, so the producer's tail and the consumer's
/// head do not false-share.
#[repr(align(64))]
struct PaddedCursor(AtomicUsize);

/// Hand-rolled lock-free bounded single-producer single-consumer ring.
///
/// The module enforces the SPSC discipline by construction: only the
/// [`ShardedIngest`] front-end (behind `&mut self`) pushes, and only the
/// owning worker thread pops. Slots are `MaybeUninit`; a slot is initialized
/// exactly between the producer's `tail` release-store and the consumer's
/// matching acquire-load (and vice versa for reuse after `head` advances).
struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read.
    head: PaddedCursor,
    /// Next slot the producer will write.
    tail: PaddedCursor,
}

// SAFETY: the ring hands each value from exactly one thread to exactly one
// other thread; the release/acquire pairs on `tail` (push -> pop) and `head`
// (pop -> slot reuse) order the slot writes. `T: Send` is required because
// values cross threads.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: capacity - 1,
            head: PaddedCursor(AtomicUsize::new(0)),
            tail: PaddedCursor(AtomicUsize::new(0)),
        }
    }

    /// Producer side: enqueue `value`, or hand it back if the ring is full.
    fn try_push(&self, value: T) -> std::result::Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(value);
        }
        // SAFETY: the slot at `tail` was consumed (head advanced past it) or
        // never written; only this producer writes slots at `tail`.
        unsafe {
            (*self.slots[tail & self.mask].get()).write(value);
        }
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeue the oldest value, if any.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` means the producer finished writing this slot
        // (the acquire on `tail` orders the slot write before this read), and
        // only this consumer reads slots at `head`.
        let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any values still in flight.
        while self.try_pop().is_some() {}
    }
}

/// State shared between the front-end and one worker thread.
struct Shard<A: CorrelatedAggregate> {
    ring: SpscRing<Vec<(u64, u64)>>,
    sketch: Mutex<CorrelatedSketch<A>>,
    /// A second, same-seeded sketch fed only the batches applied since the
    /// last [`ShardedIngest::take_delta`] cut — the per-shard half of the
    /// replication delta. `None` until delta tracking is enabled; the extra
    /// sketch work runs on the worker thread, off the producer's path.
    delta: Mutex<Option<CorrelatedSketch<A>>>,
    /// Batches fully applied to `sketch` — the shard's update *generation*,
    /// read by the composite cache for invalidation and by `flush` as its
    /// progress barrier.
    processed: AtomicU64,
    /// Set (after the final batches are enqueued) to tell the worker to
    /// drain and exit.
    shutdown: AtomicBool,
}

impl<A: CorrelatedAggregate> Shard<A> {
    fn apply(&self, batch: &[(u64, u64)]) {
        {
            let mut sketch = self
                .sketch
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sketch
                .update_batch(batch)
                .expect("y values validated before dispatch");
        }
        {
            let mut delta = self
                .delta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(delta) = delta.as_mut() {
                delta
                    .update_batch(batch)
                    .expect("y values validated before dispatch");
            }
        }
        // Release: a reader that observes the new generation must also see
        // the sketch contents it describes (the mutexes already order the
        // sketches themselves; the counter rides behind them).
        self.processed.fetch_add(1, Ordering::Release);
    }
}

/// The worker loop: drain the ring, park when idle, exit on shutdown.
fn worker_loop<A>(shard: &Shard<A>)
where
    A: CorrelatedAggregate,
{
    let mut idle = 0u32;
    loop {
        match shard.ring.try_pop() {
            Some(batch) => {
                idle = 0;
                shard.apply(&batch);
            }
            None => {
                if shard.shutdown.load(Ordering::Acquire) {
                    // Shutdown is flagged only after the last push, but this
                    // thread may have seen an empty ring *before* loading the
                    // flag — drain once more now that the flag's acquire
                    // ordering makes those pushes visible.
                    while let Some(batch) = shard.ring.try_pop() {
                        shard.apply(&batch);
                    }
                    return;
                }
                idle = idle.saturating_add(1);
                if idle < IDLE_SPINS {
                    std::hint::spin_loop();
                } else {
                    // Park instead of burn-spinning: keeps the front-end
                    // usable on machines with fewer cores than shards (the
                    // producer unparks us after every push).
                    thread::park_timeout(Duration::from_micros(200));
                }
            }
        }
    }
}

/// Total batches applied since `cached` (the per-shard generation vector a
/// composite was built from): the composite's staleness in batches. Public
/// because the serving layer (`cora-serve`) uses the same arithmetic to
/// decide when its background merger rebuilds the published composite.
pub fn staleness(cached: &[u64], current: &[u64]) -> u64 {
    cached
        .iter()
        .zip(current)
        .map(|(&c, &n)| n.saturating_sub(c))
        .sum()
}

/// A read-side handle onto a [`ShardedIngest`]'s shard sketches, detached
/// from the front-end's `&mut self` ingest API so a **background merger
/// thread** can rebuild the merged composite off the ingest and query paths
/// (see `cora-serve`).
///
/// The handle shares the shard state through `Arc`s: building a composite
/// locks each shard's sketch briefly (the same locks the ingest workers take
/// per applied batch), never the front-end itself. A reader that outlives
/// its front-end keeps working against the final, frozen shard state.
pub struct ShardReader<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    shards: Vec<Arc<Shard<A>>>,
    agg: A,
    config: CorrelatedConfig,
}

impl<A> Clone for ShardReader<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            agg: self.agg.clone(),
            config: self.config.clone(),
        }
    }
}

impl<A> ShardReader<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    /// The configuration every shard sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// The per-shard applied-batch counters (the generation vector composite
    /// caches are validated against).
    pub fn generations(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.processed.load(Ordering::Acquire))
            .collect()
    }

    /// Merge every shard sketch into a fresh composite, returning it with
    /// the generation vector read **before** the merge — the composite
    /// contains at least those batches, so tagging it with the pre-read
    /// vector keeps staleness estimates conservative.
    pub fn build_composite(&self) -> Result<(Vec<u64>, CorrelatedSketch<A>)> {
        let generations = self.generations();
        let mut sketch = CorrelatedSketch::new(self.agg.clone(), self.config.clone())?;
        for shard in &self.shards {
            let shard_sketch = shard
                .sketch
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sketch.merge_from(&shard_sketch)?;
        }
        Ok((generations, sketch))
    }
}

/// A worker-sharded ingest front-end over N same-seeded correlated sketches.
///
/// Tuples accepted by [`insert`](Self::insert) / [`ingest`](Self::ingest) are
/// batched and distributed round-robin to worker threads over lock-free SPSC
/// rings; queries merge the per-worker sketches into a cached composite. See
/// the [module docs](self) for why the partition is lossless.
///
/// Consistency model: queries observe every batch already *applied* by the
/// workers — call [`flush`](Self::flush) first for a read-your-writes
/// barrier over everything accepted so far. Dropping the front-end flushes
/// implicitly and joins the workers.
pub struct ShardedIngest<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    shards: Vec<Arc<Shard<A>>>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Unpark handles, indexed like `shards`.
    worker_threads: Vec<thread::Thread>,
    /// Per-shard count of batches enqueued (producer side of the barrier).
    sent: Vec<u64>,
    /// Tuples accepted but not yet dispatched to any ring.
    buffer: Vec<(u64, u64)>,
    batch_size: usize,
    next_shard: usize,
    items_accepted: u64,
    agg: A,
    config: CorrelatedConfig,
    padded_y_max: u64,
    /// Merged composite, cached under the per-shard generation vector it was
    /// built from (the unified query core's generation-validated cache).
    composite: Mutex<GenCache<Vec<u64>, (), CorrelatedSketch<A>>>,
    /// Rebuild the composite only once this many new batches have been
    /// applied since it was built (1 = always fresh).
    merge_every: u64,
    /// Whether the shards carry per-shard delta sketches (see
    /// [`Self::enable_delta_tracking`]).
    delta_tracking: bool,
    /// Replication generation: the number of delta cuts taken so far. A cut
    /// covers the tuples applied in the span `(g_from, g_to]` of this
    /// counter.
    delta_gen: u64,
}

impl<A> ShardedIngest<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    /// Spawn `num_shards` ingest workers, each owning a fresh
    /// [`CorrelatedSketch`] built from `agg` and `config` (same seed, so the
    /// shard sketches are mutually mergeable).
    pub fn new(agg: A, config: CorrelatedConfig, num_shards: usize) -> Result<Self> {
        if num_shards == 0 {
            return Err(CoreError::InvalidParameter {
                name: "num_shards",
                detail: "at least one ingest worker is required".into(),
            });
        }
        let padded_y_max = config.padded_y_max();
        let mut shards = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        let mut worker_threads = Vec::with_capacity(num_shards);
        // On any failure, shut down and join the workers spawned so far —
        // otherwise they would park-loop forever with nobody holding their
        // shutdown flag.
        let abort = |shards: &[Arc<Shard<A>>], workers: Vec<thread::JoinHandle<()>>| {
            for shard in shards {
                shard.shutdown.store(true, Ordering::Release);
            }
            for handle in workers {
                handle.thread().unpark();
                let _ = handle.join();
            }
        };
        for _ in 0..num_shards {
            let sketch = match CorrelatedSketch::new(agg.clone(), config.clone()) {
                Ok(sketch) => sketch,
                Err(e) => {
                    abort(&shards, workers);
                    return Err(e);
                }
            };
            let shard = Arc::new(Shard {
                ring: SpscRing::new(RING_CAPACITY),
                sketch: Mutex::new(sketch),
                delta: Mutex::new(None),
                processed: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            });
            let worker_shard = Arc::clone(&shard);
            let handle = match thread::Builder::new()
                .name("cora-shard".into())
                .spawn(move || worker_loop(&worker_shard))
            {
                Ok(handle) => handle,
                Err(e) => {
                    abort(&shards, workers);
                    return Err(CoreError::InvalidParameter {
                        name: "num_shards",
                        detail: format!("could not spawn ingest worker: {e}"),
                    });
                }
            };
            worker_threads.push(handle.thread().clone());
            workers.push(handle);
            shards.push(shard);
        }
        Ok(Self {
            shards,
            workers,
            worker_threads,
            sent: vec![0; num_shards],
            buffer: Vec::with_capacity(DEFAULT_BATCH_SIZE),
            batch_size: DEFAULT_BATCH_SIZE,
            next_shard: 0,
            items_accepted: 0,
            agg,
            config,
            padded_y_max,
            composite: Mutex::new(GenCache::new(1)),
            merge_every: 1,
            delta_tracking: false,
            delta_gen: 0,
        })
    }

    /// Override the dispatch batch size (builder style; clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Tolerate a **stale** composite for up to `k` applied batches (builder
    /// style; clamped to ≥ 1, default 1 = always fresh).
    ///
    /// With `k > 1`, a query reuses the cached merged composite until the
    /// workers have applied at least `k` new batches since it was built, so
    /// mixed update/query loads stop paying a full N-shard merge on every
    /// generation change. **Staleness bound:** an admitted composite is
    /// missing at most `k − 1` applied batches, i.e. at most
    /// `(k − 1) · batch_size` tuples (plus whatever is still buffered or in
    /// flight, which even a fresh merge never sees before
    /// [`flush`](Self::flush)). Queries are still monotone: each rebuild
    /// includes everything applied at that point, and
    /// [`flush`](Self::flush)-then-query is exact again once the lag reaches
    /// `k` — call sites that need read-your-writes semantics should keep the
    /// default `k = 1`.
    pub fn with_merge_every(mut self, k: u64) -> Self {
        self.merge_every = k.max(1);
        self
    }

    /// Number of ingest workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration every shard sketch was built with.
    pub fn config(&self) -> &CorrelatedConfig {
        &self.config
    }

    /// Total tuples accepted so far (buffered, in flight, or applied).
    pub fn items_accepted(&self) -> u64 {
        self.items_accepted
    }

    /// Accept one `(x, y)` tuple with unit weight.
    pub fn insert(&mut self, x: u64, y: u64) -> Result<()> {
        if y > self.padded_y_max {
            return Err(CoreError::YOutOfRange {
                y,
                y_max: self.padded_y_max,
            });
        }
        self.buffer.push((x, y));
        self.items_accepted += 1;
        if self.buffer.len() >= self.batch_size {
            self.dispatch_buffer();
        }
        Ok(())
    }

    /// Accept a slice of tuples. Validated up front: if any `y` is out of
    /// range an error is returned and **no** tuple of the slice is accepted.
    pub fn ingest(&mut self, tuples: &[(u64, u64)]) -> Result<()> {
        for &(_, y) in tuples {
            if y > self.padded_y_max {
                return Err(CoreError::YOutOfRange {
                    y,
                    y_max: self.padded_y_max,
                });
            }
        }
        self.items_accepted += tuples.len() as u64;
        let mut rest = tuples;
        while !rest.is_empty() {
            // The buffer can already exceed the batch size if
            // `with_batch_size` shrank it mid-stream; flush first so `room`
            // below cannot underflow.
            if self.buffer.len() >= self.batch_size {
                self.dispatch_buffer();
            }
            let room = self.batch_size - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.batch_size {
                self.dispatch_buffer();
            }
        }
        Ok(())
    }

    /// Panic with a clear message if worker `idx` exited before shutdown —
    /// it can only have died by panicking (e.g. a bug inside `update_batch`),
    /// and every wait loop in the front-end would otherwise hang on its
    /// never-advancing counters. (`Drop` also re-raises an unobserved worker
    /// panic when not already unwinding.)
    fn assert_worker_alive(&self, idx: usize) {
        if self.workers[idx].is_finished() {
            panic!("cora-shard ingest worker {idx} died (panicked) — see its panic output");
        }
    }

    /// Seal the active buffer (if non-empty) and enqueue it round-robin.
    fn dispatch_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.batch_size));
        let shard_idx = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        let shard = &self.shards[shard_idx];
        let mut pending = batch;
        loop {
            match shard.ring.try_push(pending) {
                Ok(()) => break,
                Err(back) => {
                    // Ring full: backpressure. Yield so the worker can run
                    // even when there are fewer cores than threads.
                    self.assert_worker_alive(shard_idx);
                    pending = back;
                    self.worker_threads[shard_idx].unpark();
                    thread::yield_now();
                }
            }
        }
        self.sent[shard_idx] += 1;
        self.worker_threads[shard_idx].unpark();
    }

    /// Barrier: dispatch everything buffered and wait until every worker has
    /// applied every batch enqueued so far. After `flush` returns, queries
    /// observe all accepted tuples.
    pub fn flush(&mut self) {
        self.dispatch_buffer();
        for idx in 0..self.shards.len() {
            let target = self.sent[idx];
            let mut spins = 0u32;
            while self.shards[idx].processed.load(Ordering::Acquire) < target {
                self.assert_worker_alive(idx);
                self.worker_threads[idx].unpark();
                spins = spins.saturating_add(1);
                if spins < IDLE_SPINS {
                    thread::yield_now();
                } else {
                    thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Run `f` against the merged composite of all shard sketches.
    ///
    /// The composite is cached under the per-shard generation vector it was
    /// built from and revalidated through the unified query core's
    /// [`GenCache`]: while no worker applies a new batch — or, with
    /// [`with_merge_every`](Self::with_merge_every), while fewer than `k`
    /// new batches have been applied since the composite was built —
    /// repeated calls reuse the merged sketch (whose own query compositions
    /// are memoized in turn).
    pub fn with_composite<R>(&self, f: impl FnOnce(&CorrelatedSketch<A>) -> R) -> Result<R> {
        // The cache lock is held across the rebuild: concurrent queries that
        // miss would otherwise each run the N-shard merge, and a slower
        // older-generation build finishing last would overwrite a fresher
        // cached composite (GenCache::insert clears on generation change).
        // Workers never take this lock, so ingest is not blocked. The
        // generation vector is read under the lock for the same reason —
        // the tag must not lag the admission decision.
        let mut cache = self
            .composite
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let generations: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.processed.load(Ordering::Acquire))
            .collect();
        let admit = |cached: &Vec<u64>| staleness(cached, &generations) < self.merge_every;
        if let Some(sketch) = cache.get_if(admit, &()) {
            return Ok(f(sketch));
        }
        let sketch = self.fresh_composite()?;
        Ok(f(cache.insert(generations, (), sketch)))
    }

    /// Merge every shard sketch into a fresh composite, bypassing the cache
    /// and any `merge_every` staleness tolerance.
    fn fresh_composite(&self) -> Result<CorrelatedSketch<A>> {
        let mut sketch = CorrelatedSketch::new(self.agg.clone(), self.config.clone())?;
        for shard in &self.shards {
            let shard_sketch = shard
                .sketch
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sketch.merge_from(&shard_sketch)?;
        }
        Ok(sketch)
    }

    /// A detached read-side handle for background composite rebuilds (see
    /// [`ShardReader`]).
    pub fn reader(&self) -> ShardReader<A> {
        ShardReader {
            shards: self.shards.clone(),
            agg: self.agg.clone(),
            config: self.config.clone(),
        }
    }

    /// Estimate `f({x : y ≤ c})` over everything applied so far (Algorithm 3
    /// against the merged composite).
    pub fn query(&self, c: u64) -> Result<f64> {
        self.with_composite(|s| s.query(c))?
    }

    /// Estimate the aggregate over the entire applied stream.
    pub fn query_all(&self) -> Result<f64> {
        self.query(self.padded_y_max)
    }

    /// A clone of the merged composite sketch, for callers that need the
    /// full query surface (stats, compose-level access) detached from the
    /// front-end.
    pub fn composite_sketch(&self) -> Result<CorrelatedSketch<A>> {
        self.with_composite(Clone::clone)
    }

    /// Structure statistics of the merged composite.
    pub fn stats(&self) -> Result<SketchStats> {
        self.with_composite(CorrelatedSketch::stats)
    }

    /// Whether the shards are tracking per-shard replication deltas.
    pub fn delta_tracking_enabled(&self) -> bool {
        self.delta_tracking
    }

    /// The replication generation: how many delta cuts have been taken. The
    /// next [`Self::take_delta`] covers `(delta_generation(), +1]`.
    pub fn delta_generation(&self) -> u64 {
        self.delta_gen
    }

    /// Start tracking replication deltas: each shard gets a second
    /// same-seeded sketch fed every batch applied from now on, so
    /// [`Self::take_delta`] can cut an incremental sketch covering exactly
    /// the tuples since the previous cut. Flushes first, so tuples accepted
    /// before this call belong to the pre-tracking base, never to a delta.
    /// Idempotent; the extra per-batch sketch work runs on the worker
    /// threads.
    pub fn enable_delta_tracking(&mut self) -> Result<()> {
        if self.delta_tracking {
            return Ok(());
        }
        self.flush();
        let mut fresh = Vec::with_capacity(self.shards.len());
        for _ in 0..self.shards.len() {
            fresh.push(CorrelatedSketch::new(self.agg.clone(), self.config.clone())?);
        }
        for (shard, sketch) in self.shards.iter().zip(fresh) {
            *shard.delta.lock().unwrap_or_else(PoisonError::into_inner) = Some(sketch);
        }
        self.delta_tracking = true;
        Ok(())
    }

    /// Cut a replication delta: flush (barrier), swap every shard's delta
    /// sketch for a fresh one, and merge the swapped-out sketches into one
    /// composite covering exactly the tuples applied in `(g_from, g_to]`.
    /// Returns `(g_from, g_to, delta)`; merging `delta` into any structure
    /// holding everything up to `g_from` yields the structure for
    /// everything up to `g_to` (Property V). Requires
    /// [`Self::enable_delta_tracking`] first.
    pub fn take_delta(&mut self) -> Result<(u64, u64, CorrelatedSketch<A>)> {
        if !self.delta_tracking {
            return Err(CoreError::InvalidParameter {
                name: "delta_tracking",
                detail: "enable_delta_tracking() must be called before take_delta()".into(),
            });
        }
        self.flush();
        // Build the replacements before touching any shard, so a constructor
        // failure leaves every delta tracker intact.
        let mut fresh = Vec::with_capacity(self.shards.len());
        for _ in 0..self.shards.len() {
            fresh.push(CorrelatedSketch::new(self.agg.clone(), self.config.clone())?);
        }
        let mut delta = CorrelatedSketch::new(self.agg.clone(), self.config.clone())?;
        for (shard, replacement) in self.shards.iter().zip(fresh) {
            let taken = {
                let mut slot = shard.delta.lock().unwrap_or_else(PoisonError::into_inner);
                slot.replace(replacement)
            };
            delta.merge_from(&taken.expect("delta tracking enabled above"))?;
        }
        let g_from = self.delta_gen;
        self.delta_gen += 1;
        Ok((g_from, self.delta_gen, delta))
    }
}

impl<A> ShardedIngest<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
    <A as CorrelatedAggregate>::Sketch: StateCodec,
{
    /// Serialise the front-end's state: flush every accepted tuple (barrier),
    /// merge all shards into a fresh composite — ignoring any `merge_every`
    /// staleness tolerance — and snapshot it as one framework frame (see
    /// `cora_core::snapshot` for the format). The frame carries the full
    /// configuration and seed, so [`Self::restore_from`] rebuilds a
    /// front-end that answers every query identically and whose sketches
    /// stay merge-compatible with other same-seeded shards.
    pub fn snapshot(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out)?;
        Ok(out)
    }

    /// [`Self::snapshot`], appending the frame to a caller-provided buffer.
    pub fn snapshot_to(&mut self, out: &mut Vec<u8>) -> Result<()> {
        self.flush();
        self.fresh_composite()?.snapshot_to(out);
        Ok(())
    }

    /// Rebuild a sharded front-end from [`Self::snapshot`] bytes, spawning
    /// `num_shards` fresh workers (the shard count need not match the
    /// snapshotting front-end's — the snapshot is one merged composite).
    ///
    /// The restored composite is installed as shard 0's sketch, so the first
    /// query's N-way merge sees the full pre-snapshot state plus whatever
    /// the new workers have applied since.
    pub fn restore_from(agg: A, num_shards: usize, bytes: &[u8]) -> Result<Self> {
        let composite = CorrelatedSketch::restore_from(agg.clone(), bytes)?;
        let config = composite.config().clone();
        let mut front = Self::new(agg, config, num_shards)?;
        front.items_accepted = composite.items_processed();
        *front.shards[0]
            .sketch
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = composite;
        Ok(front)
    }
}

impl<A> Drop for ShardedIngest<A>
where
    A: CorrelatedAggregate + Send + 'static,
    CorrelatedSketch<A>: Send,
{
    fn drop(&mut self) {
        // Hand any buffered tuples to a worker, then tell everyone to drain
        // and exit. (Pushes are sequenced before the Release store, and the
        // workers re-drain after acquiring the flag, so nothing is lost.)
        self.dispatch_buffer();
        for shard in &self.shards {
            shard.shutdown.store(true, Ordering::Release);
        }
        for t in &self.worker_threads {
            t.unpark();
        }
        for handle in self.workers.drain(..) {
            if handle.join().is_err() && !thread::panicking() {
                // Surface a worker panic that nothing else observed (e.g. the
                // producer dropped without another flush); skip when already
                // unwinding to avoid a double-panic abort.
                panic!("cora-shard ingest worker panicked; its sketch data is lost");
            }
        }
    }
}

/// Build a [`ShardedIngest`] for correlated `F_2` — the sharded counterpart
/// of [`cora_core::correlated_f2_seeded`].
pub fn sharded_correlated_f2(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
    seed: u64,
    num_shards: usize,
) -> Result<ShardedIngest<F2Aggregate>> {
    let agg = F2Aggregate::new(epsilon, delta, seed);
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(seed);
    ShardedIngest::new(agg, config, num_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_core::correlated_f2_seeded;

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring: SpscRing<u64> = SpscRing::new(4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        // Wrap-around keeps FIFO order.
        for round in 0..10u64 {
            assert!(ring.try_push(round).is_ok());
            assert!(ring.try_push(round + 100).is_ok());
            assert_eq!(ring.try_pop(), Some(round));
            assert_eq!(ring.try_pop(), Some(round + 100));
        }
    }

    #[test]
    fn ring_drop_releases_in_flight_values() {
        let value = Arc::new(());
        {
            let ring: SpscRing<Arc<()>> = SpscRing::new(8);
            ring.try_push(Arc::clone(&value)).unwrap();
            ring.try_push(Arc::clone(&value)).unwrap();
            assert_eq!(Arc::strong_count(&value), 3);
        }
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn ring_transfers_across_threads() {
        let ring = Arc::new(SpscRing::<u64>::new(8));
        let consumer_ring = Arc::clone(&ring);
        let consumer = thread::spawn(move || {
            let mut received = Vec::new();
            while received.len() < 1000 {
                match consumer_ring.try_pop() {
                    Some(v) => received.push(v),
                    None => thread::yield_now(),
                }
            }
            received
        });
        for i in 0..1000u64 {
            let mut v = i;
            while let Err(back) = ring.try_push(v) {
                v = back;
                thread::yield_now();
            }
        }
        let received = consumer.join().unwrap();
        assert_eq!(received, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_matches_sequential_after_flush() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 3)
            .unwrap()
            .with_batch_size(64);
        let mut seq = correlated_f2_seeded(0.3, 0.1, 1023, 10_000, 7).unwrap();
        for i in 0..500u64 {
            let (x, y) = (i % 40, (i * 13) % 900);
            sharded.insert(x, y).unwrap();
            seq.insert(x, y).unwrap();
        }
        sharded.flush();
        let stats = sharded.stats().unwrap();
        assert_eq!(stats.items_processed, 500);
        assert_eq!(sharded.items_accepted(), 500);
        // Small stream: everything is exact, so answers must be identical.
        for c in (0..1024u64).step_by(128) {
            assert_eq!(sharded.query(c).unwrap(), seq.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn composite_cache_revalidates_on_new_batches() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2)
            .unwrap()
            .with_batch_size(32);
        for i in 0..200u64 {
            sharded.insert(i % 10, i % 1024).unwrap();
        }
        sharded.flush();
        let first = sharded.query(1023).unwrap();
        assert_eq!(sharded.query(1023).unwrap(), first);
        for i in 0..200u64 {
            sharded.insert(i % 10, 5).unwrap();
        }
        sharded.flush();
        let second = sharded.query(1023).unwrap();
        assert!(second > first, "composite must pick up new batches: {first} -> {second}");
    }

    #[test]
    fn merge_every_k_serves_stale_composites_within_bound() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2)
            .unwrap()
            .with_batch_size(32)
            .with_merge_every(4);
        for i in 0..320u64 {
            sharded.insert(i % 10, i % 1024).unwrap(); // exactly 10 batches
        }
        sharded.flush();
        let first = sharded.query(1023).unwrap();
        // One more applied batch: lag 1 < 4, the stale composite is served.
        for i in 0..32u64 {
            sharded.insert(i % 10, 5).unwrap();
        }
        sharded.flush();
        assert_eq!(
            sharded.query(1023).unwrap(),
            first,
            "lag below merge_every must serve the stale composite"
        );
        // Three more batches: lag reaches 4, the rebuild sees every tuple.
        for i in 0..96u64 {
            sharded.insert(i % 10, 5).unwrap();
        }
        sharded.flush();
        let refreshed = sharded.query(1023).unwrap();
        assert!(
            refreshed > first,
            "lag at merge_every must rebuild: {first} -> {refreshed}"
        );
        assert_eq!(sharded.stats().unwrap().items_processed, 448);
    }

    #[test]
    fn rejects_out_of_range_y_atomically() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 255, 1_000, 7, 2).unwrap();
        assert!(sharded.insert(1, 100_000).is_err());
        assert!(sharded.ingest(&[(1, 3), (2, 100_000), (3, 7)]).is_err());
        assert_eq!(sharded.items_accepted(), 0);
        sharded.flush();
        assert_eq!(sharded.stats().unwrap().items_processed, 0);
    }

    #[test]
    fn drop_without_flush_applies_buffered_tuples() {
        // Dropping must not lose accepted tuples nor hang; verify via a
        // composite clone taken before the drop of a *flushed* twin.
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2).unwrap();
        for i in 0..100u64 {
            sharded.insert(i, i % 1024).unwrap();
        }
        drop(sharded); // buffered batch dispatched + workers joined
    }

    #[test]
    fn bulk_ingest_matches_scalar_inserts() {
        let tuples: Vec<(u64, u64)> = (0..700u64).map(|i| (i % 37, (i * 11) % 1024)).collect();
        let mut bulk = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2)
            .unwrap()
            .with_batch_size(128);
        let mut scalar = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2)
            .unwrap()
            .with_batch_size(128);
        bulk.ingest(&tuples).unwrap();
        for &(x, y) in &tuples {
            scalar.insert(x, y).unwrap();
        }
        bulk.flush();
        scalar.flush();
        for c in (0..1024u64).step_by(256) {
            assert_eq!(bulk.query(c).unwrap(), scalar.query(c).unwrap());
        }
    }

    #[test]
    fn shrinking_batch_size_mid_stream_does_not_underflow() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2).unwrap();
        for i in 0..500u64 {
            sharded.insert(i % 20, i % 1024).unwrap(); // buffers under default 1024
        }
        sharded = sharded.with_batch_size(8); // buffer (500) now exceeds the batch size
        let more: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 20, i % 1024)).collect();
        sharded.ingest(&more).unwrap();
        sharded.flush();
        assert_eq!(sharded.stats().unwrap().items_processed, 600);
    }

    #[test]
    fn reader_builds_composites_off_the_front_end() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 2)
            .unwrap()
            .with_batch_size(32);
        let reader = sharded.reader();
        assert_eq!(reader.generations(), vec![0, 0]);
        for i in 0..320u64 {
            sharded.insert(i % 10, i % 1024).unwrap();
        }
        sharded.flush();
        let generations = reader.generations();
        assert_eq!(generations.iter().sum::<u64>(), 10);
        let (tag, composite) = reader.build_composite().unwrap();
        assert_eq!(tag, generations);
        assert_eq!(composite.items_processed(), 320);
        // The reader's composite answers like the front-end's.
        for c in (0..1024u64).step_by(256) {
            assert_eq!(composite.query(c).unwrap(), sharded.query(c).unwrap());
        }
        assert_eq!(staleness(&tag, &reader.generations()), 0);
    }

    #[test]
    fn snapshot_restore_round_trips_the_front_end() {
        let mut original = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 3)
            .unwrap()
            .with_batch_size(64);
        for i in 0..5_000u64 {
            original.insert(i % 80, (i * 13) % 1024).unwrap();
        }
        let bytes = original.snapshot().unwrap();
        let agg = F2Aggregate::new(0.3, 0.1, 7);
        // Restore with a different shard count: the snapshot is one merged
        // composite, so the worker count is a fresh choice.
        let mut restored = ShardedIngest::restore_from(agg, 2, &bytes).unwrap();
        assert_eq!(restored.items_accepted(), 5_000);
        restored.flush();
        for c in (0..1024u64).step_by(128) {
            assert_eq!(restored.query(c).unwrap(), original.query(c).unwrap(), "c={c}");
        }
        assert_eq!(
            restored.stats().unwrap().items_processed,
            original.stats().unwrap().items_processed
        );
        // The restored front-end keeps ingesting and reflects new tuples.
        for i in 0..500u64 {
            restored.insert(i % 10, 5).unwrap();
        }
        restored.flush();
        assert_eq!(restored.stats().unwrap().items_processed, 5_500);
        assert!(restored.query(1023).unwrap() > original.query(1023).unwrap());
    }

    #[test]
    fn snapshot_rejects_wrong_seed_and_corruption() {
        let mut original = sharded_correlated_f2(0.3, 0.1, 255, 1_000, 7, 2).unwrap();
        for i in 0..200u64 {
            original.insert(i, i % 256).unwrap();
        }
        let bytes = original.snapshot().unwrap();
        let wrong_seed = F2Aggregate::new(0.3, 0.1, 8);
        assert!(ShardedIngest::restore_from(wrong_seed, 2, &bytes).is_err());
        let agg = F2Aggregate::new(0.3, 0.1, 7);
        let mut corrupt = bytes;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 4;
        assert!(ShardedIngest::restore_from(agg, 2, &corrupt).is_err());
    }

    #[test]
    fn delta_cuts_cover_disjoint_spans_and_recompose_the_stream() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, 3)
            .unwrap()
            .with_batch_size(32);
        // Cutting before enabling is an error; enabling twice is fine.
        assert!(sharded.take_delta().is_err());
        // Tuples accepted before enabling belong to the base, not a delta.
        for i in 0..300u64 {
            sharded.insert(i % 30, i % 1024).unwrap();
        }
        sharded.enable_delta_tracking().unwrap();
        sharded.enable_delta_tracking().unwrap();
        assert!(sharded.delta_tracking_enabled());
        assert_eq!(sharded.delta_generation(), 0);
        let base = sharded.composite_sketch().unwrap();

        // Replay the base + each delta into an independent replica and check
        // it matches the live front-end exactly (small stream: exact stores,
        // so answers are bit-identical).
        let agg = F2Aggregate::new(0.3, 0.1, 7);
        let mut replica =
            CorrelatedSketch::new(agg, sharded.config().clone()).unwrap();
        replica.merge_from(&base).unwrap();
        let mut items_replayed = base.items_processed();
        for round in 0..3u64 {
            for i in 0..200u64 {
                let v = round * 1000 + i;
                sharded.insert(v % 50, (v * 7) % 1024).unwrap();
            }
            let (g_from, g_to, delta) = sharded.take_delta().unwrap();
            assert_eq!((g_from, g_to), (round, round + 1));
            assert_eq!(delta.items_processed(), 200);
            items_replayed += delta.items_processed();
            replica.merge_from(&delta).unwrap();
        }
        // An empty span cuts an empty (but valid) delta.
        let (_, _, empty) = sharded.take_delta().unwrap();
        assert_eq!(empty.items_processed(), 0);
        replica.merge_from(&empty).unwrap();
        assert_eq!(replica.items_processed(), items_replayed);
        sharded.flush();
        for c in (0..1024u64).step_by(128) {
            assert_eq!(replica.query(c).unwrap(), sharded.query(c).unwrap(), "c={c}");
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let agg = F2Aggregate::new(0.3, 0.1, 7);
        let config = CorrelatedConfig::new(0.3, 0.1, 1023, 40).unwrap().with_seed(7);
        assert!(ShardedIngest::new(agg, config, 0).is_err());
    }
}
