//! The MULTIPASS algorithm (Section 4.2, Algorithm 4 of the paper).
//!
//! With arbitrary positive *and negative* weights, no small single-pass
//! summary for correlated aggregates exists (Section 4.1); the paper
//! complements the lower bound with an `O(log y_max)`-pass algorithm: binary
//! search, in parallel for every power of `(1+ε)`, for the y position at which
//! the correlated aggregate crosses that value. A query for threshold `τ` then
//! returns `(1+ε)^i` for the largest `i` whose recorded position `p(i)` is at
//! most `τ`.
//!
//! The module provides:
//!
//! * [`StoredStream`] — a replayable stream (e.g. data on disk or tape in the
//!   paper's motivation) that counts how many passes have been made over it;
//! * [`MultipassEstimator`] — the output of the algorithm: the positions
//!   `p(0..r)` plus the `(1+ε)` ladder, answering queries for any `τ`;
//! * [`multipass_f2`] — the instantiation for `F_2` in the turnstile model,
//!   using the linear (deletion-friendly) fast-AMS sketch as the classical
//!   whole-stream algorithm `A`.

use crate::tuple::StreamTuple;
use cora_sketch::{Estimate, FastAmsSketch, StreamSketch};
use std::cell::Cell;

/// A replayable stream that counts sequential passes, modelling data stored on
/// a medium that only supports efficient sequential scans.
#[derive(Debug, Clone, Default)]
pub struct StoredStream {
    tuples: Vec<StreamTuple>,
    passes: Cell<usize>,
}

impl StoredStream {
    /// Wrap a vector of tuples.
    pub fn new(tuples: Vec<StreamTuple>) -> Self {
        Self {
            tuples,
            passes: Cell::new(0),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the stream holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of sequential passes made so far.
    pub fn passes(&self) -> usize {
        self.passes.get()
    }

    /// Iterate over the stream once, incrementing the pass counter.
    pub fn scan(&self) -> impl Iterator<Item = &StreamTuple> {
        self.passes.set(self.passes.get() + 1);
        self.tuples.iter()
    }

    /// Direct access without counting a pass (used by exact baselines in
    /// tests; the multipass algorithm itself always goes through [`scan`]).
    ///
    /// [`scan`]: StoredStream::scan
    pub fn tuples(&self) -> &[StreamTuple] {
        &self.tuples
    }
}

/// The output of the MULTIPASS algorithm: positions of the `(1+ε)^i` level
/// crossings along the y axis.
#[derive(Debug, Clone)]
pub struct MultipassEstimator {
    epsilon: f64,
    /// `positions[i]` = the y position `p(i)` for value `(1+ε)^i`.
    positions: Vec<u64>,
    passes_used: usize,
}

impl MultipassEstimator {
    /// The QUERY-RESPONSE procedure: the largest `i` with `p(i) ≤ τ` yields
    /// the estimate `(1+ε)^i`; if no position is ≤ τ the estimate is 0.
    pub fn query(&self, tau: u64) -> f64 {
        let mut best: Option<usize> = None;
        for (i, &p) in self.positions.iter().enumerate() {
            if p <= tau {
                best = Some(i);
            }
        }
        match best {
            Some(i) => (1.0 + self.epsilon).powi(i as i32),
            None => 0.0,
        }
    }

    /// The recorded crossing positions `p(0..r)`.
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Number of passes over the stored stream the construction used.
    pub fn passes_used(&self) -> usize {
        self.passes_used
    }

    /// The accuracy parameter the estimator was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// One streaming pass evaluating `F_2` restricted to `y ≤ p` for several
/// thresholds `p` at once. Returns one estimate per threshold, using sketches
/// with identical randomness (`seed`), as Algorithm 4 requires ("fix the
/// random string of A for the rest of this algorithm").
fn f2_estimates_for_thresholds(
    stream: &StoredStream,
    thresholds: &[u64],
    width: usize,
    depth: usize,
    seed: u64,
) -> Vec<f64> {
    let mut sketches: Vec<FastAmsSketch> = thresholds
        .iter()
        .map(|_| FastAmsSketch::with_dimensions(width, depth, seed))
        .collect();
    for tuple in stream.scan() {
        for (sketch, &threshold) in sketches.iter_mut().zip(thresholds.iter()) {
            if tuple.y <= threshold {
                sketch.update(tuple.x, tuple.weight);
            }
        }
    }
    sketches.iter().map(Estimate::estimate).collect()
}

/// Run the MULTIPASS algorithm for the correlated `F_2` aggregate over a
/// turnstile stream (weights may be negative).
///
/// `epsilon` controls both the `(1+ε)` ladder spacing and the whole-stream
/// sketch accuracy; `y_max` bounds the y domain (padded to a power of two
/// internally, as in the paper's "without loss of generality, `y_max + 1` is a
/// power of 2").
pub fn multipass_f2(
    stream: &StoredStream,
    epsilon: f64,
    delta: f64,
    y_max: u64,
    seed: u64,
) -> MultipassEstimator {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let passes_before = stream.passes();

    // Pad y_max + 1 to a power of two.
    let mut padded = 1u64;
    while padded <= y_max {
        padded <<= 1;
    }
    let y_max = padded - 1;
    let log_y = padded.trailing_zeros();

    let width = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(8);
    let depth = ((1.0 / delta).ln().ceil() as usize).max(1) | 1;

    // Pass 1: estimate f over the entire stream to size the ladder.
    let f_total = f2_estimates_for_thresholds(stream, &[y_max], width, depth, seed)[0].max(1.0);
    let r = (f_total.ln() / (1.0 + epsilon).ln()).ceil() as usize;

    // Binary search, in parallel for every ladder rung, over y positions.
    let mut positions: Vec<u64> = vec![(y_max.saturating_sub(1)) / 2; r + 1];
    let targets: Vec<f64> = (0..=r).map(|i| (1.0 + epsilon).powi(i as i32)).collect();
    for j in 2..=log_y as u64 {
        let estimates = f2_estimates_for_thresholds(stream, &positions, width, depth, seed);
        let step = (y_max + 1) >> j;
        for i in 0..=r {
            if estimates[i] > targets[i] {
                positions[i] = positions[i].saturating_sub(step);
            } else {
                positions[i] = (positions[i] + step).min(y_max);
            }
        }
    }
    // Final adjustment (Algorithm 4, step 11).
    let estimates = f2_estimates_for_thresholds(stream, &positions, width, depth, seed);
    for i in 0..=r {
        if estimates[i] < targets[i] {
            positions[i] = (positions[i] + 1).min(y_max);
        }
    }

    MultipassEstimator {
        epsilon,
        positions,
        passes_used: stream.passes() - passes_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_sketch::ExactFrequencies;
    #[allow(unused_imports)]
    use cora_sketch::Estimate as _;

    fn exact_correlated_f2(stream: &StoredStream, tau: u64) -> f64 {
        let mut freqs = ExactFrequencies::new();
        for t in stream.tuples() {
            if t.y <= tau {
                freqs.update(t.x, t.weight);
            }
        }
        freqs.frequency_moment(2)
    }

    #[test]
    fn stored_stream_counts_passes() {
        let s = StoredStream::new(vec![StreamTuple::new(1, 1); 10]);
        assert_eq!(s.passes(), 0);
        assert_eq!(s.scan().count(), 10);
        assert_eq!(s.scan().count(), 10);
        assert_eq!(s.passes(), 2);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    fn multipass_uses_logarithmically_many_passes() {
        let tuples: Vec<StreamTuple> = (0..2_000u64)
            .map(|i| StreamTuple::new(i % 50, (i * 13) % 1024))
            .collect();
        let stream = StoredStream::new(tuples);
        let est = multipass_f2(&stream, 0.25, 0.1, 1023, 7);
        // 1 sizing pass + (log2(1024) - 1) search passes + 1 adjustment pass.
        assert_eq!(est.passes_used(), 1 + 9 + 1);
        assert!(est.positions().len() > 4);
    }

    #[test]
    fn multipass_estimates_track_exact_values_insert_only() {
        let tuples: Vec<StreamTuple> = (0..20_000u64)
            .map(|i| StreamTuple::new(i % 200, (i * 797) % 4096))
            .collect();
        let stream = StoredStream::new(tuples);
        let eps = 0.2;
        let est = multipass_f2(&stream, eps, 0.05, 4095, 11);
        for &tau in &[256u64, 1024, 2048, 4095] {
            let truth = exact_correlated_f2(&stream, tau);
            let approx = est.query(tau);
            let err = (approx - truth).abs() / truth;
            assert!(
                err < 3.0 * eps,
                "tau={tau}: multipass {approx} vs exact {truth} (err {err})"
            );
        }
    }

    #[test]
    fn multipass_handles_deletions() {
        // Insert a block of tuples and then delete half of them; the correlated
        // F2 must reflect the post-deletion frequencies, which no small
        // single-pass summary could do (Section 4.1).
        let mut tuples = Vec::new();
        for i in 0..5_000u64 {
            tuples.push(StreamTuple::weighted(i % 100, (i * 31) % 2048, 2));
        }
        for i in 0..5_000u64 {
            if i % 2 == 0 {
                tuples.push(StreamTuple::weighted(i % 100, (i * 31) % 2048, -2));
            }
        }
        let stream = StoredStream::new(tuples);
        let eps = 0.25;
        let est = multipass_f2(&stream, eps, 0.05, 2047, 13);
        for &tau in &[512u64, 2047] {
            let truth = exact_correlated_f2(&stream, tau);
            let approx = est.query(tau);
            let err = (approx - truth).abs() / truth.max(1.0);
            assert!(
                err < 3.0 * eps,
                "tau={tau}: multipass {approx} vs exact {truth} (err {err})"
            );
        }
    }

    #[test]
    fn query_below_all_positions_is_zero() {
        let tuples: Vec<StreamTuple> = (0..100u64)
            .map(|i| StreamTuple::new(i, 500 + i % 10))
            .collect();
        let stream = StoredStream::new(tuples);
        let est = multipass_f2(&stream, 0.3, 0.1, 1023, 3);
        assert_eq!(est.query(0), 0.0);
        assert!(est.query(1023) > 0.0);
        assert_eq!(est.epsilon(), 0.3);
    }
}
