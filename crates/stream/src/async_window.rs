//! Sliding-window aggregation over asynchronous (out-of-order) streams via the
//! reduction to correlated aggregates (Section 1.1 of the paper).
//!
//! In an asynchronous stream, elements carry generation timestamps but may be
//! observed out of order. A sliding-window query at wall-clock time `T` with
//! window width `W` aggregates the elements whose timestamp is in
//! `[T − W, T]`. The paper observes that this is a correlated aggregate in
//! disguise: mapping each timestamp `t` to `y = t_max − t` turns "timestamp at
//! least `T − W`" into "y at most `t_max − (T − W)`" — a threshold known only
//! at query time, exactly what the correlated sketch supports.
//!
//! [`AsyncWindowF2`] and [`AsyncWindowCount`] wrap the corresponding
//! correlated sketches behind a window-oriented API.
//!
//! This reduction answers any suffix window exactly at base-tick resolution,
//! but the single sketch's y-domain spans all of `[0, t_max]` and nothing is
//! ever forgotten. The pane ring in [`crate::windowed`] makes the opposite
//! trade: pane-quantized window edges in exchange for bounded pane counts,
//! retention/expiry, landmark queries, a second (y-threshold) dimension, and
//! a fading-factor decayed variant.

use cora_core::error::Result;
use cora_core::f2::{correlated_f2_seeded, CorrelatedF2};
use cora_core::sum::CorrelatedCount;
use cora_core::{AlphaPolicy, CorrelatedConfig, CorrelatedSketch};

/// Sliding-window `F_2` over an asynchronous stream.
#[derive(Debug, Clone)]
pub struct AsyncWindowF2 {
    inner: CorrelatedF2,
    t_max: u64,
}

impl AsyncWindowF2 {
    /// Build a window sketch for timestamps in `[0, t_max]`.
    pub fn new(
        epsilon: f64,
        delta: f64,
        t_max: u64,
        max_stream_len: u64,
        seed: u64,
    ) -> Result<Self> {
        Ok(Self {
            inner: correlated_f2_seeded(epsilon, delta, t_max, max_stream_len, seed)?,
            t_max,
        })
    }

    /// Observe an element with identifier `x` generated at timestamp `t`
    /// (elements may arrive in any order).
    pub fn observe(&mut self, x: u64, t: u64) -> Result<()> {
        let y = self.t_max.saturating_sub(t);
        self.inner.insert(x, y)
    }

    /// Estimate `F_2` of the identifiers whose timestamp lies in
    /// `[now − window, now]` (timestamps newer than `now` are excluded by
    /// construction only if they have not been observed; callers should pass
    /// `now` no smaller than the largest observed timestamp).
    pub fn query_window(&self, now: u64, window: u64) -> Result<f64> {
        let oldest = now.saturating_sub(window);
        let c = self.t_max.saturating_sub(oldest);
        self.inner.query(c)
    }

    /// Total stored tuples (space accounting).
    pub fn stored_tuples(&self) -> usize {
        self.inner.stored_tuples()
    }
}

/// Sliding-window count of elements over an asynchronous stream.
#[derive(Debug, Clone)]
pub struct AsyncWindowCount {
    inner: CorrelatedCount,
    t_max: u64,
}

impl AsyncWindowCount {
    /// Build a window counter for timestamps in `[0, t_max]`.
    pub fn new(epsilon: f64, delta: f64, t_max: u64, max_stream_len: u64, seed: u64) -> Result<Self> {
        let agg = cora_core::sum::CountAggregate::new();
        let config = CorrelatedConfig::new(
            epsilon,
            delta,
            t_max,
            cora_core::CorrelatedAggregate::f_max_log2(&agg, max_stream_len),
        )?
        .with_seed(seed)
        .with_alpha_policy(AlphaPolicy::default());
        Ok(Self {
            inner: CorrelatedSketch::new(agg, config)?,
            t_max,
        })
    }

    /// Observe an element generated at timestamp `t`.
    pub fn observe(&mut self, x: u64, t: u64) -> Result<()> {
        let y = self.t_max.saturating_sub(t);
        self.inner.insert(x, y)
    }

    /// Estimate the number of elements with timestamp in `[now − window, now]`.
    pub fn query_window(&self, now: u64, window: u64) -> Result<f64> {
        let oldest = now.saturating_sub(window);
        let c = self.t_max.saturating_sub(oldest);
        self.inner.query(c)
    }

    /// Total stored tuples (space accounting).
    pub fn stored_tuples(&self) -> usize {
        self.inner.stored_tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    #[test]
    fn window_count_matches_truth_on_out_of_order_arrivals() {
        let t_max = 100_000u64;
        let mut w = AsyncWindowCount::new(0.2, 0.1, t_max, 100_000, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Timestamps uniform over [0, t_max], observed in shuffled order.
        let mut events: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (i % 500, rng.gen_range(0..=t_max)))
            .collect();
        events.shuffle(&mut rng);
        for &(x, t) in &events {
            w.observe(x, t).unwrap();
        }
        let now = t_max;
        for &window in &[10_000u64, 40_000, 100_000] {
            let truth = events.iter().filter(|&&(_, t)| t >= now - window).count() as f64;
            let est = w.query_window(now, window).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(err < 0.25, "window {window}: est {est}, truth {truth}");
        }
    }

    #[test]
    fn window_f2_is_insensitive_to_arrival_order() {
        let t_max = 10_000u64;
        let mut in_order = AsyncWindowF2::new(0.25, 0.1, t_max, 50_000, 5).unwrap();
        let mut shuffled = AsyncWindowF2::new(0.25, 0.1, t_max, 50_000, 5).unwrap();
        let mut events: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 100, (i * 2) % t_max)).collect();
        for &(x, t) in &events {
            in_order.observe(x, t).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(11);
        events.shuffle(&mut rng);
        for &(x, t) in &events {
            shuffled.observe(x, t).unwrap();
        }
        let a = in_order.query_window(t_max, 5_000).unwrap();
        let b = shuffled.query_window(t_max, 5_000).unwrap();
        let rel = (a - b).abs() / a.max(1.0);
        assert!(rel < 0.15, "order sensitivity: {a} vs {b}");
    }

    #[test]
    fn space_stays_sublinear() {
        let t_max = 1 << 20;
        let mut w = AsyncWindowCount::new(0.3, 0.2, t_max, 1 << 20, 9).unwrap();
        let n = 100_000u64;
        for i in 0..n {
            w.observe(i % 1000, (i * 17) % t_max).unwrap();
        }
        assert!(
            (w.stored_tuples() as u64) < n / 2,
            "window sketch stores {} tuples for {n} events",
            w.stored_tuples()
        );
    }
}
