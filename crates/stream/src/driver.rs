//! Measurement driver: feeds generated datasets into sketches while recording
//! the quantities the paper's evaluation section reports — sketch size in
//! stored tuples, bytes, per-record processing time, and relative error
//! against the exact (linear-storage) baseline.

use crate::json;
use crate::tuple::StreamTuple;
use std::time::Instant;

/// One measured data point, serialisable so the figure binaries can emit both
/// human-readable tables and machine-readable JSON series.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Dataset name.
    pub dataset: String,
    /// Sketch / algorithm name.
    pub sketch: String,
    /// Requested relative error ε.
    pub epsilon: f64,
    /// Stream size (number of tuples fed).
    pub stream_len: usize,
    /// Sketch size in stored tuples (the paper's space unit).
    pub stored_tuples: usize,
    /// Approximate sketch size in bytes.
    pub space_bytes: usize,
    /// Nanoseconds per processed record (amortised).
    pub ns_per_record: f64,
    /// Measured relative errors at the probed thresholds (empty when no exact
    /// baseline was computed).
    pub relative_errors: Vec<f64>,
}

impl RunReport {
    /// The worst measured relative error, if any thresholds were probed.
    pub fn max_relative_error(&self) -> Option<f64> {
        self.relative_errors
            .iter()
            .copied()
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Render as a TSV row (used by the figure binaries).
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{:.3}\t{}\t{}\t{}\t{:.1}\t{}",
            self.dataset,
            self.sketch,
            self.epsilon,
            self.stream_len,
            self.stored_tuples,
            self.space_bytes,
            self.ns_per_record,
            self.max_relative_error()
                .map_or_else(|| "-".to_string(), |e| format!("{e:.4}"))
        )
    }

    /// The TSV header matching [`RunReport::tsv_row`].
    pub fn tsv_header() -> &'static str {
        "dataset\tsketch\tepsilon\tstream_len\tstored_tuples\tspace_bytes\tns_per_record\tmax_rel_error"
    }

    /// Serialise as a JSON object (hand-rolled; see [`crate::json`]). Floats
    /// use shortest round-trip formatting, so
    /// [`RunReport::from_json`] recovers the report exactly.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"dataset":{},"sketch":{},"epsilon":{},"stream_len":{},"stored_tuples":{},"space_bytes":{},"ns_per_record":{},"relative_errors":{}}}"#,
            json::escape(&self.dataset),
            json::escape(&self.sketch),
            json::float(self.epsilon),
            self.stream_len,
            self.stored_tuples,
            self.space_bytes,
            json::float(self.ns_per_record),
            json::float_array(&self.relative_errors),
        )
    }

    /// Parse a report back from its [`RunReport::to_json`] form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut out = Self {
            dataset: String::new(),
            sketch: String::new(),
            epsilon: 0.0,
            stream_len: 0,
            stored_tuples: 0,
            space_bytes: 0,
            ns_per_record: 0.0,
            relative_errors: Vec::new(),
        };
        for (key, value) in json::parse_object(text)? {
            match key.as_str() {
                "dataset" => out.dataset = json::parse_string(&value)?,
                "sketch" => out.sketch = json::parse_string(&value)?,
                "epsilon" => out.epsilon = json::parse_f64(&value)?,
                "stream_len" => out.stream_len = json::parse_u64(&value)? as usize,
                "stored_tuples" => out.stored_tuples = json::parse_u64(&value)? as usize,
                "space_bytes" => out.space_bytes = json::parse_u64(&value)? as usize,
                "ns_per_record" => out.ns_per_record = json::parse_f64(&value)?,
                "relative_errors" => out.relative_errors = json::parse_f64_array(&value)?,
                other => return Err(format!("unknown RunReport field {other:?}")),
            }
        }
        Ok(out)
    }
}

/// Feed `tuples` into a sketch through `insert`, returning the amortised
/// nanoseconds per record.
pub fn time_ingest<I>(tuples: &[StreamTuple], mut insert: I) -> f64
where
    I: FnMut(&StreamTuple),
{
    if tuples.is_empty() {
        return 0.0;
    }
    let start = Instant::now();
    for t in tuples {
        insert(t);
    }
    start.elapsed().as_nanos() as f64 / tuples.len() as f64
}

/// Probe a sketch at the given thresholds, comparing against an exact truth.
/// `estimate_and_truth(c)` returns `(estimate, truth)` or `None` to skip a
/// threshold. The result is one relative error per probed threshold.
pub fn relative_errors<E>(thresholds: &[u64], mut estimate_and_truth: E) -> Vec<f64>
where
    E: FnMut(u64) -> Option<(f64, f64)>,
{
    let mut out = Vec::with_capacity(thresholds.len());
    for &c in thresholds {
        if let Some((estimate, truth)) = estimate_and_truth(c) {
            let err = if truth == 0.0 {
                if estimate == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (estimate - truth).abs() / truth
            };
            out.push(err);
        }
    }
    out
}

/// Evenly spaced query thresholds over `[0, y_max]` (always includes `y_max`),
/// matching how the experiments probe the structures.
pub fn default_thresholds(y_max: u64, count: usize) -> Vec<u64> {
    let count = count.max(1) as u64;
    let mut out: Vec<u64> = (1..=count).map(|i| y_max / count * i).collect();
    if let Some(last) = out.last_mut() {
        *last = y_max;
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_core::ExactCorrelated;

    #[test]
    fn default_thresholds_cover_the_domain() {
        let t = default_thresholds(1000, 4);
        assert_eq!(t, vec![250, 500, 750, 1000]);
        assert_eq!(default_thresholds(10, 1), vec![10]);
        assert!(default_thresholds(3, 10).last() == Some(&3));
    }

    #[test]
    fn ingest_timing_and_error_probing() {
        let tuples: Vec<StreamTuple> = (0..5_000u64)
            .map(|i| StreamTuple::new(i % 40, i % 1000))
            .collect();
        let mut sketch = cora_core::f2::correlated_f2_seeded(0.3, 0.1, 999, 10_000, 3).unwrap();
        let mut exact = ExactCorrelated::new();
        for t in &tuples {
            exact.insert(t.x, t.y);
        }
        let ns = time_ingest(&tuples, |t| sketch.insert(t.x, t.y).unwrap());
        assert!(ns > 0.0);
        let errors = relative_errors(&default_thresholds(999, 4), |c| {
            Some((sketch.query(c).unwrap(), exact.frequency_moment(2, c)))
        });
        assert_eq!(errors.len(), 4);
        assert!(errors.iter().all(|&e| e < 0.3), "errors {errors:?}");

        let stats = sketch.stats();
        let report = RunReport {
            dataset: "unit-test".into(),
            sketch: "correlated-f2".into(),
            epsilon: 0.3,
            stream_len: tuples.len(),
            stored_tuples: stats.stored_tuples,
            space_bytes: stats.space_bytes,
            ns_per_record: ns,
            relative_errors: errors,
        };
        assert!(report.max_relative_error().unwrap() < 0.3);
        assert!(report.tsv_row().contains("unit-test"));
        assert!(RunReport::tsv_header().starts_with("dataset"));
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn empty_stream_and_zero_truth_edge_cases() {
        assert_eq!(time_ingest(&[], |_t| {}), 0.0);
        let errors = relative_errors(&[10, 20], |c| Some((0.0, if c == 10 { 0.0 } else { 5.0 })));
        assert_eq!(errors[0], 0.0);
        assert_eq!(errors[1], 1.0);
        let skipped = relative_errors(&[1, 2, 3], |_| None);
        assert!(skipped.is_empty());
    }
}
