//! Dataset generators reproducing the workloads of the paper's Section 5.
//!
//! * [`UniformGenerator`] — "the Uniform data set ... x is generated uniformly
//!   at random from {0,…,500000} and y ... from {0,…,1000000}";
//! * [`ZipfGenerator`] — "the Zipfian data set, with α = 1 [and α = 2]. Here
//!   the x values are generated according to the Zipfian distribution ... and
//!   the y values ... uniformly at random";
//! * [`EthernetGenerator`] — a synthetic stand-in for the LBL Ethernet packet
//!   traces used for the `F_0` experiments (the original traces are not
//!   redistributable; see DESIGN.md "Substitutions"). It preserves the two
//!   properties the paper relies on: a *small* x domain (packet sizes) and
//!   timestamp-valued y from two interleaved bursty sources;
//! * [`SortedYGenerator`] — an adversarial-ish workload where y arrives in
//!   increasing order (the worst case for eviction watermarks), used in tests
//!   and ablations.
//!
//! All generators are deterministic given their seed.

use crate::tuple::StreamTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common interface for dataset generators.
pub trait DatasetGenerator {
    /// Human-readable name used in reports ("Uniform", "Zipf, alpha=1", ...).
    fn name(&self) -> String;

    /// Largest x value this generator can emit.
    fn x_max(&self) -> u64;

    /// Largest y value this generator can emit.
    fn y_max(&self) -> u64;

    /// Generate the next tuple.
    fn next_tuple(&mut self) -> StreamTuple;

    /// Generate `n` tuples into a vector.
    fn generate(&mut self, n: usize) -> Vec<StreamTuple> {
        (0..n).map(|_| self.next_tuple()).collect()
    }
}

/// Uniform x and y (the paper's "Uniform" dataset).
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    rng: StdRng,
    x_max: u64,
    y_max: u64,
}

impl UniformGenerator {
    /// Generator with the paper's default domains: x ∈ [0, 500000],
    /// y ∈ [0, 1000000].
    pub fn paper_defaults(seed: u64) -> Self {
        Self::new(500_000, 1_000_000, seed)
    }

    /// Generator with explicit domains.
    pub fn new(x_max: u64, y_max: u64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            x_max,
            y_max,
        }
    }
}

impl DatasetGenerator for UniformGenerator {
    fn name(&self) -> String {
        "Uniform".to_string()
    }

    fn x_max(&self) -> u64 {
        self.x_max
    }

    fn y_max(&self) -> u64 {
        self.y_max
    }

    fn next_tuple(&mut self) -> StreamTuple {
        StreamTuple::new(
            self.rng.gen_range(0..=self.x_max),
            self.rng.gen_range(0..=self.y_max),
        )
    }
}

/// Zipfian x (parameter α), uniform y (the paper's "Zipf" datasets).
///
/// Sampling uses a precomputed cumulative distribution over the x domain and
/// binary search; the CDF costs `O(x_max)` memory once per generator, which is
/// negligible next to the streams being generated.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    rng: StdRng,
    cdf: Vec<f64>,
    alpha: f64,
    y_max: u64,
}

impl ZipfGenerator {
    /// Generator with the paper's default domains: x ∈ [0, 500000],
    /// y ∈ [0, 1000000].
    pub fn paper_defaults(alpha: f64, seed: u64) -> Self {
        Self::new(alpha, 500_000, 1_000_000, seed)
    }

    /// Generator with explicit domains.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or `x_max == 0`.
    pub fn new(alpha: f64, x_max: u64, y_max: u64, seed: u64) -> Self {
        assert!(alpha >= 0.0, "Zipf parameter must be non-negative");
        assert!(x_max > 0, "Zipf x domain must be non-empty");
        let n = (x_max + 1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
            cdf,
            alpha,
            y_max,
        }
    }

    /// The Zipf parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DatasetGenerator for ZipfGenerator {
    fn name(&self) -> String {
        format!("Zipf, alpha={}", self.alpha)
    }

    fn x_max(&self) -> u64 {
        (self.cdf.len() - 1) as u64
    }

    fn y_max(&self) -> u64 {
        self.y_max
    }

    fn next_tuple(&mut self) -> StreamTuple {
        let u: f64 = self.rng.gen();
        let x = self.cdf.partition_point(|&p| p < u) as u64;
        StreamTuple::new(x.min(self.x_max()), self.rng.gen_range(0..=self.y_max))
    }
}

/// Synthetic Ethernet-trace surrogate (see DESIGN.md "Substitutions").
///
/// Two interleaved sources (a "LAN" and a "WAN" trace) emit packets whose
/// sizes cluster around a handful of modal values in `[64, 2000]` — giving the
/// small x domain the paper highlights for this dataset — and whose
/// millisecond timestamps advance in bursts.
#[derive(Debug, Clone)]
pub struct EthernetGenerator {
    rng: StdRng,
    clock_ms: [u64; 2],
    next_source: usize,
    y_max: u64,
}

impl EthernetGenerator {
    /// Modal packet sizes (bytes) used by the synthetic trace.
    const MODES: [u64; 6] = [64, 570, 576, 1072, 1500, 1518];

    /// A generator whose timestamps stay below `y_max` milliseconds
    /// (default experiment setting: one hour of traffic, `y_max = 3_600_000`).
    pub fn new(y_max: u64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            clock_ms: [0, 0],
            next_source: 0,
            y_max,
        }
    }

    /// Paper-scale defaults (~2 million packets over one hour).
    pub fn paper_defaults(seed: u64) -> Self {
        Self::new(3_600_000, seed)
    }
}

impl DatasetGenerator for EthernetGenerator {
    fn name(&self) -> String {
        "Ethernet".to_string()
    }

    fn x_max(&self) -> u64 {
        2000
    }

    fn y_max(&self) -> u64 {
        self.y_max
    }

    fn next_tuple(&mut self) -> StreamTuple {
        // Alternate between the two interleaved traces, as the paper's
        // combined dataset does.
        let source = self.next_source;
        self.next_source = 1 - self.next_source;

        // Packet size: a modal value plus small jitter, clamped to the domain.
        let mode = Self::MODES[self.rng.gen_range(0..Self::MODES.len())];
        let jitter = self.rng.gen_range(0..=40u64);
        let size = (mode + jitter).min(self.x_max());

        // Timestamp: bursty arrivals — usually sub-millisecond gaps, with
        // occasional idle periods.
        let gap = if self.rng.gen_bool(0.02) {
            self.rng.gen_range(5..50u64)
        } else {
            u64::from(self.rng.gen_bool(0.3))
        };
        self.clock_ms[source] = (self.clock_ms[source] + gap).min(self.y_max);
        StreamTuple::new(size, self.clock_ms[source])
    }
}

/// y values arrive in strictly increasing order (stress case for eviction).
#[derive(Debug, Clone)]
pub struct SortedYGenerator {
    rng: StdRng,
    x_max: u64,
    y_max: u64,
    next_y: u64,
}

impl SortedYGenerator {
    /// Generator over the given domains.
    pub fn new(x_max: u64, y_max: u64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            x_max,
            y_max,
            next_y: 0,
        }
    }
}

impl DatasetGenerator for SortedYGenerator {
    fn name(&self) -> String {
        "SortedY".to_string()
    }

    fn x_max(&self) -> u64 {
        self.x_max
    }

    fn y_max(&self) -> u64 {
        self.y_max
    }

    fn next_tuple(&mut self) -> StreamTuple {
        let y = self.next_y;
        self.next_y = (self.next_y + 1).min(self.y_max);
        StreamTuple::new(self.rng.gen_range(0..=self.x_max), y)
    }
}

/// The named dataset line-up of the paper's F2 experiments.
pub fn f2_experiment_generators(seed: u64) -> Vec<Box<dyn DatasetGenerator>> {
    vec![
        Box::new(UniformGenerator::paper_defaults(seed)),
        Box::new(ZipfGenerator::paper_defaults(1.0, seed ^ 1)),
        Box::new(ZipfGenerator::paper_defaults(2.0, seed ^ 2)),
    ]
}

/// The named dataset line-up of the paper's F0 experiments (adds the Ethernet
/// surrogate and widens the x domain to 1,000,000 as in Section 5.2).
pub fn f0_experiment_generators(seed: u64) -> Vec<Box<dyn DatasetGenerator>> {
    vec![
        Box::new(EthernetGenerator::paper_defaults(seed ^ 3)),
        Box::new(UniformGenerator::new(1_000_000, 1_000_000, seed)),
        Box::new(ZipfGenerator::new(1.0, 1_000_000, 1_000_000, seed ^ 1)),
        Box::new(ZipfGenerator::new(2.0, 1_000_000, 1_000_000, seed ^ 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_respects_domains_and_is_deterministic() {
        let mut a = UniformGenerator::new(100, 1000, 7);
        let mut b = UniformGenerator::new(100, 1000, 7);
        let ta = a.generate(500);
        let tb = b.generate(500);
        assert_eq!(ta, tb);
        for t in &ta {
            assert!(t.x <= 100 && t.y <= 1000);
            assert_eq!(t.weight, 1);
        }
    }

    #[test]
    fn uniform_covers_the_domain_roughly_evenly() {
        let mut g = UniformGenerator::new(9, 9, 3);
        let tuples = g.generate(10_000);
        let mut counts = [0usize; 10];
        for t in &tuples {
            counts[t.x as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 1000.0).abs() < 200.0,
                "x value {i} appeared {c} times"
            );
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let mut g = ZipfGenerator::new(1.0, 10_000, 100, 5);
        let tuples = g.generate(50_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for t in &tuples {
            *counts.entry(t.x).or_default() += 1;
        }
        let top = *counts.get(&0).unwrap_or(&0);
        let mid = *counts.get(&100).unwrap_or(&0);
        assert!(top > 20 * mid.max(1), "rank 0 ({top}) should dwarf rank 100 ({mid})");
    }

    #[test]
    fn zipf_alpha_2_is_more_skewed_than_alpha_1() {
        let count_top = |alpha: f64| {
            let mut g = ZipfGenerator::new(alpha, 10_000, 100, 9);
            g.generate(20_000).iter().filter(|t| t.x == 0).count()
        };
        assert!(count_top(2.0) > count_top(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn zipf_rejects_negative_alpha() {
        let _ = ZipfGenerator::new(-1.0, 10, 10, 1);
    }

    #[test]
    fn ethernet_has_small_x_domain_and_monotone_per_source_time() {
        let mut g = EthernetGenerator::new(1_000_000, 11);
        let tuples = g.generate(20_000);
        let distinct_x: std::collections::HashSet<u64> = tuples.iter().map(|t| t.x).collect();
        assert!(distinct_x.len() < 300, "x domain should be small, got {}", distinct_x.len());
        for t in &tuples {
            assert!(t.x >= 64 && t.x <= 2000);
            assert!(t.y <= 1_000_000);
        }
        // Timestamps from each alternating source are non-decreasing.
        let evens: Vec<u64> = tuples.iter().step_by(2).map(|t| t.y).collect();
        assert!(evens.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorted_generator_emits_increasing_y() {
        let mut g = SortedYGenerator::new(50, 10_000, 1);
        let tuples = g.generate(1000);
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(t.y, i as u64);
        }
    }

    #[test]
    fn experiment_lineups_have_expected_members() {
        let f2 = f2_experiment_generators(1);
        assert_eq!(f2.len(), 3);
        assert_eq!(f2[0].name(), "Uniform");
        let f0 = f0_experiment_generators(1);
        assert_eq!(f0.len(), 4);
        assert_eq!(f0[0].name(), "Ethernet");
        assert!(f0[1].x_max() == 1_000_000);
    }
}
