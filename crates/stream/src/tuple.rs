//! The stream model: two-dimensional tuples `(x, y)` with optional integer
//! weights (the turnstile model of Section 4 of the paper).

use crate::json;

/// One stream element: an item identifier `x`, a numeric attribute `y`, and an
/// integer weight `z` (1 for plain insertions, negative for deletions in the
/// turnstile model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamTuple {
    /// Item identifier (the aggregation dimension).
    pub x: u64,
    /// Numeric attribute (the selection dimension).
    pub y: u64,
    /// Weight; `1` in the cash-register model, possibly negative in the
    /// turnstile model.
    pub weight: i64,
}

impl StreamTuple {
    /// A unit-weight tuple.
    pub fn new(x: u64, y: u64) -> Self {
        Self { x, y, weight: 1 }
    }

    /// A weighted tuple.
    pub fn weighted(x: u64, y: u64, weight: i64) -> Self {
        Self { x, y, weight }
    }

    /// True iff the weight is negative (a deletion).
    pub fn is_deletion(&self) -> bool {
        self.weight < 0
    }

    /// Serialise as a JSON object (hand-rolled; see [`crate::json`]).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"x":{},"y":{},"weight":{}}}"#,
            self.x, self.y, self.weight
        )
    }

    /// Parse a tuple back from its [`StreamTuple::to_json`] form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut out = Self::weighted(0, 0, 1);
        for (key, value) in json::parse_object(text)? {
            match key.as_str() {
                "x" => out.x = json::parse_u64(&value)?,
                "y" => out.y = json::parse_u64(&value)?,
                "weight" => out.weight = json::parse_i64(&value)?,
                other => return Err(format!("unknown StreamTuple field {other:?}")),
            }
        }
        Ok(out)
    }
}

/// Summary statistics of a generated dataset, used in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Human-readable dataset name ("Uniform", "Zipf(1.0)", "Ethernet", ...).
    pub name: String,
    /// Number of tuples.
    pub len: usize,
    /// Largest x value.
    pub x_max: u64,
    /// Largest y value.
    pub y_max: u64,
    /// Whether any tuple carries a non-unit or negative weight.
    pub weighted: bool,
}

/// Compute a [`DatasetSummary`] for a slice of tuples.
pub fn summarize(name: &str, tuples: &[StreamTuple]) -> DatasetSummary {
    DatasetSummary {
        name: name.to_string(),
        len: tuples.len(),
        x_max: tuples.iter().map(|t| t.x).max().unwrap_or(0),
        y_max: tuples.iter().map(|t| t.y).max().unwrap_or(0),
        weighted: tuples.iter().any(|t| t.weight != 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = StreamTuple::new(3, 9);
        assert_eq!(t.weight, 1);
        assert!(!t.is_deletion());
        let d = StreamTuple::weighted(3, 9, -2);
        assert!(d.is_deletion());
    }

    #[test]
    fn summary_of_empty_slice() {
        let s = summarize("empty", &[]);
        assert_eq!(s.len, 0);
        assert_eq!(s.x_max, 0);
        assert_eq!(s.y_max, 0);
        assert!(!s.weighted);
    }

    #[test]
    fn summary_reports_maxima_and_weights() {
        let tuples = vec![
            StreamTuple::new(5, 100),
            StreamTuple::new(9, 7),
            StreamTuple::weighted(2, 3, 4),
        ];
        let s = summarize("mix", &tuples);
        assert_eq!(s.len, 3);
        assert_eq!(s.x_max, 9);
        assert_eq!(s.y_max, 100);
        assert!(s.weighted);
    }

    #[test]
    fn tuples_serialize_round_trip() {
        let t = StreamTuple::weighted(1, 2, -3);
        let json = t.to_json();
        assert_eq!(json, r#"{"x":1,"y":2,"weight":-3}"#);
        let back = StreamTuple::from_json(&json).unwrap();
        assert_eq!(t, back);
    }
}
