//! Hard instances from the GREATER-THAN reduction (Section 4.1 of the paper).
//!
//! The paper's single-pass lower bound for correlated aggregation with
//! deletions encodes an instance of the two-party GREATER-THAN communication
//! problem into a turnstile stream: Alice inserts `(1 + a_i, i)` with weight
//! `+1` for every bit `a_i` of her number, Bob inserts `(1 + b_i, i)` with
//! weight `−1`. After both halves, the weight of `(1 + v, i)` is non-zero iff
//! the two numbers differ in bit `i` and `v` matches the party whose bit is
//! set, so the smallest index `τ` with a positive correlated aggregate — and
//! which identifier carries it — reveals which number is larger.
//!
//! A bounded-memory single-pass summary that answered correlated queries after
//! such a stream would therefore solve GREATER-THAN in one message, violating
//! the `Ω(r^{1/t})` communication bound. This module builds those instances
//! and solves them exactly (linear storage) and via the multipass algorithm,
//! so the examples and benches can demonstrate both sides of Figure 1's
//! dichotomy: "linear space lower bound, constant passes" vs. "sublinear
//! space, logarithmic passes".

use crate::tuple::StreamTuple;
use std::cmp::Ordering;

/// Build the turnstile stream encoding one GREATER-THAN instance.
///
/// Bit `i = 0` is the most significant bit, as in the paper's reduction, so
/// the smallest differing index decides the comparison.
pub fn greater_than_instance(a: u64, b: u64, bits: u32) -> Vec<StreamTuple> {
    assert!((1..=63).contains(&bits), "bits must be in [1, 63]");
    let mut stream = Vec::with_capacity(2 * bits as usize);
    for i in 0..bits {
        let shift = bits - 1 - i;
        let a_bit = (a >> shift) & 1;
        let b_bit = (b >> shift) & 1;
        stream.push(StreamTuple::weighted(1 + a_bit, u64::from(i), 1));
        stream.push(StreamTuple::weighted(1 + b_bit, u64::from(i), -1));
    }
    stream
}

/// Solve a GREATER-THAN instance exactly from its stream encoding, mimicking
/// the query procedure of the reduction: scan thresholds `τ = 0, 1, 2, …` and
/// find the first with a non-zero correlated aggregate.
pub fn solve_exactly(stream: &[StreamTuple], bits: u32) -> Ordering {
    for tau in 0..u64::from(bits) {
        // Net weight per identifier restricted to y <= tau.
        let mut w1 = 0i64; // identifier 1 + 0 (bit value 0)
        let mut w2 = 0i64; // identifier 1 + 1 (bit value 1)
        for t in stream.iter().filter(|t| t.y <= tau) {
            match t.x {
                1 => w1 += t.weight,
                2 => w2 += t.weight,
                _ => {}
            }
        }
        if w1 != 0 || w2 != 0 {
            // The first differing bit: whoever holds the 1-bit is larger.
            // Alice's tuple carries +1, so a positive weight on identifier 2
            // means Alice's bit is 1 (a > b); a positive weight on identifier 1
            // means Alice's bit is 0 (a < b).
            return if w2 > 0 || w1 < 0 {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }
    }
    Ordering::Equal
}

/// The number of bits of state any single-pass algorithm must keep to answer
/// correlated aggregate queries on such instances, per Theorem 6 of the paper:
/// `y_max^{Ω(1/t)} / log y_max` for `t` passes. Exposed so reports can print
/// the bound next to the measured sketch sizes.
pub fn single_pass_lower_bound_bits(y_max: u64) -> f64 {
    let y = y_max.max(2) as f64;
    y / y.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_has_two_tuples_per_bit_and_cancelling_weights() {
        let s = greater_than_instance(0b1010, 0b1010, 4);
        assert_eq!(s.len(), 8);
        // Equal inputs: every (x, y) pair cancels.
        assert_eq!(solve_exactly(&s, 4), Ordering::Equal);
        let total_weight: i64 = s.iter().map(|t| t.weight).sum();
        assert_eq!(total_weight, 0);
    }

    #[test]
    fn solves_known_comparisons() {
        for &(a, b) in &[(5u64, 3u64), (3, 5), (12, 12), (1, 0), (0, 1), (255, 254)] {
            let s = greater_than_instance(a, b, 8);
            assert_eq!(solve_exactly(&s, 8), a.cmp(&b), "a={a}, b={b}");
        }
    }

    #[test]
    fn exhaustive_small_instances() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                let s = greater_than_instance(a, b, 4);
                assert_eq!(solve_exactly(&s, 4), a.cmp(&b), "a={a}, b={b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_zero_bits() {
        let _ = greater_than_instance(1, 2, 0);
    }

    #[test]
    fn lower_bound_grows_with_domain() {
        assert!(single_pass_lower_bound_bits(1 << 20) > single_pass_lower_bound_bits(1 << 10));
    }
}
