//! Minimal JSON emit/parse helpers for the report types.
//!
//! The workspace builds offline, so instead of `serde`/`serde_json` the two
//! serialisable structs ([`crate::tuple::StreamTuple`],
//! [`crate::driver::RunReport`]) hand-roll their JSON through these helpers.
//! The subset supported is exactly what flat report objects need: string,
//! integer, float, bool, and float-array values, one level deep. Floats are
//! emitted with Rust's shortest round-trip formatting (`{:?}`), so
//! `emit -> parse` is lossless.

/// Escape a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit one float as JSON: shortest round-trip formatting for finite values,
/// `null` for non-finite ones (JSON has no inf/NaN literals; this matches
/// serde_json's default behaviour).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Emit a `[1.0,2.5,...]` array from a float slice; finite values round-trip
/// losslessly, non-finite values become `null` (parsed back as NaN).
pub fn float_array(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&float(*v));
    }
    out.push(']');
    out
}

/// Split a flat JSON object into `(key, raw value text)` pairs.
///
/// Values are returned verbatim (still quoted/bracketed); decode them with
/// [`parse_string`], [`parse_f64`], [`parse_u64`] or [`parse_f64_array`].
/// Nested objects are not supported — the report types are flat.
pub fn parse_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let text = text.trim();
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {text:?}"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        let (key, after_key) = take_string(rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?;
        let (value, after_value) = take_value(after_colon.trim_start())?;
        fields.push((key, value));
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("expected ',' before {rest:?}")),
        }
    }
    Ok(fields)
}

/// Decode a quoted JSON string value.
pub fn parse_string(raw: &str) -> Result<String, String> {
    let (s, rest) = take_string(raw.trim())?;
    if rest.trim().is_empty() {
        Ok(s)
    } else {
        Err(format!("trailing data after string: {rest:?}"))
    }
}

/// Decode a JSON number as `f64`; `null` (the emit form of non-finite
/// values, see [`float`]) decodes as NaN.
pub fn parse_f64(raw: &str) -> Result<f64, String> {
    let raw = raw.trim();
    if raw == "null" {
        return Ok(f64::NAN);
    }
    raw.parse::<f64>()
        .map_err(|e| format!("bad float {raw:?}: {e}"))
}

/// Decode a JSON number as `u64`.
pub fn parse_u64(raw: &str) -> Result<u64, String> {
    raw.trim()
        .parse::<u64>()
        .map_err(|e| format!("bad integer {raw:?}: {e}"))
}

/// Decode a JSON number as `i64`.
pub fn parse_i64(raw: &str) -> Result<i64, String> {
    raw.trim()
        .parse::<i64>()
        .map_err(|e| format!("bad integer {raw:?}: {e}"))
}

/// Decode a `[..]` array of JSON numbers.
pub fn parse_f64_array(raw: &str) -> Result<Vec<f64>, String> {
    let inner = raw
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("not a JSON array: {raw:?}"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(parse_f64).collect()
}

/// Consume one string literal from the front of `text`, returning the decoded
/// string and the remaining text.
fn take_string(text: &str) -> Result<(String, &str), String> {
    let body = text
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string at {text:?}"))?;
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &body[i + 1..])),
            '\\' => match chars.next().map(|(_, e)| e) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// Consume one value (string, array, or bare scalar) from the front of
/// `text`, returning its raw text and the remaining input.
fn take_value(text: &str) -> Result<(String, &str), String> {
    if text.starts_with('"') {
        let (_, rest) = take_string(text)?;
        let consumed = text.len() - rest.len();
        return Ok((text[..consumed].to_string(), rest));
    }
    if let Some(body) = text.strip_prefix('[') {
        // Flat arrays only (no nesting needed for the report types).
        let close = body
            .find(']')
            .ok_or_else(|| format!("unterminated array at {text:?}"))?;
        return Ok((text[..close + 2].to_string(), &body[close + 1..]));
    }
    let end = text
        .find([',', '}'])
        .unwrap_or(text.len());
    Ok((text[..end].trim_end().to_string(), &text[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_specials() {
        let s = "a\"b\\c\nd\te";
        let escaped = escape(s);
        assert_eq!(parse_string(&escaped).unwrap(), s);
    }

    #[test]
    fn object_parsing_splits_fields() {
        let fields =
            parse_object(r#"{"name":"zipf","eps":0.25,"n":100,"errs":[0.1,0.2],"ok":true}"#)
                .unwrap();
        assert_eq!(fields.len(), 5);
        assert_eq!(parse_string(&fields[0].1).unwrap(), "zipf");
        assert_eq!(parse_f64(&fields[1].1).unwrap(), 0.25);
        assert_eq!(parse_u64(&fields[2].1).unwrap(), 100);
        assert_eq!(parse_f64_array(&fields[3].1).unwrap(), vec![0.1, 0.2]);
        assert_eq!(fields[4].1, "true");
    }

    #[test]
    fn float_arrays_round_trip_losslessly() {
        let values = vec![0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300];
        assert_eq!(parse_f64_array(&float_array(&values)).unwrap(), values);
        assert_eq!(parse_f64_array("[]").unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn non_finite_floats_emit_valid_json() {
        // JSON has no inf/NaN literals; they emit as null and parse as NaN.
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(f64::NEG_INFINITY), "null");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float_array(&[1.0, f64::INFINITY]), "[1.0,null]");
        let back = parse_f64_array("[1.0,null]").unwrap();
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_nan());
    }

    #[test]
    fn keys_containing_escapes_survive() {
        let fields = parse_object(r#"{"a\"b":"c,d"}"#).unwrap();
        assert_eq!(fields[0].0, "a\"b");
        assert_eq!(parse_string(&fields[0].1).unwrap(), "c,d");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_object("[]").is_err());
        assert!(parse_object(r#"{"a" 1}"#).is_err());
        assert!(parse_string("plain").is_err());
        assert!(parse_f64_array("{}").is_err());
    }
}
