//! Windowed and time-decayed correlated aggregates.
//!
//! The whole-stream structures in `cora-core` answer one-dimensional slices:
//! "AGG of the items whose `y ≤ c`". Production queries are usually
//! two-dimensional — *"F2 of destinations with flow size ≤ c **over the last
//! hour**"*. This module adds the time dimension with an
//! exponential-histogram-style ring of sealed, mergeable sketch *panes*:
//!
//! * the tick axis is tiled into base panes of [`PaneConfig::pane_ticks`]
//!   ticks each; the pane containing the newest timestamp is *open*, older
//!   panes are *sealed*;
//! * every pane is a full correlated sketch built with the **same seed and
//!   configuration**, so pane merges are lossless (Property V, PR 3's
//!   `merge_from`);
//! * whenever more than [`PaneConfig::k`] sealed panes share a size class,
//!   the two oldest are buddy-merged into one pane of the next class — old
//!   history coarsens geometrically, keeping the ring at `O(k · log W)`
//!   panes for a span of `W` ticks;
//! * a window query selects the `O(log W)` panes inside the window and
//!   composes them through [`CorrelatedSketch::merge_all`]; the composite is
//!   memoized in a generation-keyed [`GenCache`] so repeated window queries
//!   cost one cache probe plus the framework's own threshold-compose cache.
//!
//! ## Resolved windows
//!
//! Pane boundaries quantize time. A query for `(now, window)` is answered
//! over the **resolved window**: the union of whole panes whose start lies
//! inside the requested span. The resolved window never reaches *earlier*
//! than requested (the partially-covered oldest pane is excluded), so the
//! estimate covers exactly the tuples with `resolved_lo ≤ t < resolved_hi` —
//! [`PaneRing::resolved_window`] reports the span so callers (and the test
//! oracle) can compare against exact recomputation honestly. Base-pane
//! granularity bounds the snap at the fresh end of history; coarsened panes
//! bound it geometrically further back, exactly as in an exponential
//! histogram.
//!
//! ## Retention and staleness
//!
//! With [`PaneConfig::retention`] set, panes whose whole span falls behind
//! `t_latest − retention` are dropped. Queries reaching past the expiry
//! horizon fail with [`CoreError::WindowExpired`] instead of silently
//! undercounting; late tuples older than the horizon are counted in
//! [`PaneRing::late_dropped`] and discarded. Without retention the ring is a
//! *landmark* structure: it keeps (coarsening) history forever and
//! [`PaneRing::query_landmark`] answers "since tick `l`" slices.
//!
//! ## Asynchronous arrivals
//!
//! Tuples may arrive out of timestamp order (the paper's asynchronous-stream
//! setting, Section 1.1 — see [`crate::async_window`] for the pure
//! reduction). A late tuple is routed to the sealed pane containing its
//! timestamp; if its slot was already buddy-merged it lands in the coarser
//! covering pane, and if it falls in a never-observed gap a fresh sealed
//! base pane is created in place. Unlike [`crate::async_window`], whose
//! reduction stores the whole stream's worth of sketch state to answer any
//! suffix, the pane ring trades resolution for bounded panes and adds
//! retention, landmark and decayed variants.
//!
//! ## Decayed variant
//!
//! [`WindowedF2::query_decayed`] answers a fading-factor query: every tuple
//! contributes with weight `λ^age` where age is measured in ticks from the
//! newest tick of the tuple's *pane* (decay is pane-granular — within a pane
//! all tuples share a weight). The per-pane composed stores are folded into a
//! [`DecayedF2Accumulator`], which scales AMS counters linearly, so the
//! result estimates the F2 of the decayed frequency vector.

use cora_core::f0::CorrelatedF0;
use cora_core::f2::F2Aggregate;
use cora_core::snapshot::{self, SnapshotKind};
use cora_core::sum::CountAggregate;
use cora_core::{
    BucketStore, CoreError, CorrelatedAggregate, CorrelatedConfig, CorrelatedSketch, GenCache,
    Result,
};
use cora_sketch::codec::{ByteReader, ByteWriter};
use cora_sketch::{DecayedF2Accumulator, StateCodec};
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Composite-window cache slots kept per ring (distinct resolved windows
/// memoized at the current generation).
const WINDOW_CACHE_CAPACITY: usize = 8;

/// Geometry of a pane ring: base-pane width, per-class budget, retention.
///
/// # Choosing `pane_ticks`
///
/// Finer panes buy window-edge resolution but cost accuracy: a sealed pane's
/// dyadic buckets are frozen at whatever refinement its own (short) slice of
/// the stream produced, and pane merges union buckets — they can never
/// re-split them. Merging many tens of panes that each held only tens of
/// tuples therefore compounds into systematic underestimates at low
/// y-thresholds. Size panes so each base pane sees at least a few hundred
/// tuples; the windowed row of the accuracy report measures exactly this
/// trade-off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaneConfig {
    /// Width of a base (class-0) pane in ticks. Pane boundaries are the
    /// multiples of this value; it is the finest window resolution.
    pub pane_ticks: u64,
    /// Maximum sealed panes per size class before the two oldest are
    /// buddy-merged into the next class. Larger `k` keeps finer resolution
    /// deeper into history at the cost of more panes (`≥ 2`).
    pub k: usize,
    /// Ticks of history to retain, measured back from the newest observed
    /// timestamp. `None` retains everything (landmark mode).
    pub retention: Option<u64>,
}

impl PaneConfig {
    /// A landmark-mode config with per-class budget 4.
    pub fn new(pane_ticks: u64) -> Self {
        Self { pane_ticks, k: 4, retention: None }
    }

    /// Set the per-class pane budget.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the retention horizon in ticks.
    pub fn with_retention(mut self, retention: u64) -> Self {
        self.retention = Some(retention);
        self
    }

    /// Check the geometry is usable.
    pub fn validate(&self) -> Result<()> {
        if self.pane_ticks == 0 {
            return Err(CoreError::InvalidParameter {
                name: "pane_ticks",
                detail: "base pane width must be at least one tick".to_string(),
            });
        }
        if self.k < 2 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                detail: format!("per-class pane budget must be at least 2, got {}", self.k),
            });
        }
        if let Some(r) = self.retention {
            if r < self.pane_ticks {
                return Err(CoreError::InvalidParameter {
                    name: "retention",
                    detail: format!(
                        "retention ({r} ticks) must cover at least one base pane ({} ticks)",
                        self.pane_ticks
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A correlated sketch usable as one pane of a [`PaneRing`]: insertable,
/// losslessly mergeable with same-configured siblings (Property V), and
/// self-framing for snapshots.
pub trait WindowPane: Clone + fmt::Debug {
    /// Insert one `(x, y)` tuple.
    fn pane_insert(&mut self, x: u64, y: u64) -> Result<()>;
    /// Merge a same-configured pane into this one.
    fn pane_merge_from(&mut self, other: &Self) -> Result<()>;
    /// A fresh, empty pane sharing this pane's configuration and seed.
    fn fresh(&self) -> Result<Self>;
    /// Answer the correlated query at threshold `c`.
    fn pane_query(&self, c: u64) -> Result<f64>;
    /// Tuples currently stored (space accounting).
    fn pane_stored_tuples(&self) -> usize;
    /// Append this pane's state as one self-validating snapshot frame.
    fn encode_frame(&self, out: &mut Vec<u8>);
    /// Rebuild a pane from a frame produced by [`WindowPane::encode_frame`],
    /// rejecting frames whose configuration differs from `template`'s.
    fn decode_frame(template: &Self, bytes: &[u8]) -> Result<Self>;
}

impl<A> WindowPane for CorrelatedSketch<A>
where
    A: CorrelatedAggregate + fmt::Debug,
    A::Sketch: StateCodec,
{
    fn pane_insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.insert(x, y)
    }

    fn pane_merge_from(&mut self, other: &Self) -> Result<()> {
        self.merge_from(other)
    }

    fn fresh(&self) -> Result<Self> {
        CorrelatedSketch::new(self.aggregate().clone(), self.config().clone())
    }

    fn pane_query(&self, c: u64) -> Result<f64> {
        self.query(c)
    }

    fn pane_stored_tuples(&self) -> usize {
        self.stored_tuples()
    }

    fn encode_frame(&self, out: &mut Vec<u8>) {
        self.snapshot_to(out);
    }

    fn decode_frame(template: &Self, bytes: &[u8]) -> Result<Self> {
        let pane = CorrelatedSketch::restore_from(template.aggregate().clone(), bytes)?;
        if pane.config() != template.config() {
            return Err(CoreError::Snapshot {
                detail: "pane frame carries a different configuration than the ring".to_string(),
            });
        }
        Ok(pane)
    }
}

impl WindowPane for CorrelatedF0 {
    fn pane_insert(&mut self, x: u64, y: u64) -> Result<()> {
        self.insert(x, y)
    }

    fn pane_merge_from(&mut self, other: &Self) -> Result<()> {
        self.merge_from(other)
    }

    fn fresh(&self) -> Result<Self> {
        CorrelatedF0::with_seed(
            self.epsilon(),
            self.delta(),
            self.x_domain_log2(),
            self.y_max(),
            self.seed(),
        )
    }

    fn pane_query(&self, c: u64) -> Result<f64> {
        self.query(c)
    }

    fn pane_stored_tuples(&self) -> usize {
        self.stored_tuples()
    }

    fn encode_frame(&self, out: &mut Vec<u8>) {
        self.snapshot_to(out);
    }

    fn decode_frame(template: &Self, bytes: &[u8]) -> Result<Self> {
        let pane = CorrelatedF0::restore_from(bytes)?;
        let same = pane.epsilon() == template.epsilon()
            && pane.delta() == template.delta()
            && pane.x_domain_log2() == template.x_domain_log2()
            && pane.y_max() == template.y_max()
            && pane.seed() == template.seed();
        if !same {
            return Err(CoreError::Snapshot {
                detail: "pane frame carries different F0 parameters than the ring".to_string(),
            });
        }
        Ok(pane)
    }
}

/// One pane: a half-open tick span `[start, end)` plus its sketch. `class`
/// records how many buddy-merges produced it (a class-`ℓ` pane absorbed
/// `2^ℓ`-ish base panes; gaps can stretch its span further).
#[derive(Debug, Clone)]
struct Pane<P> {
    start: u64,
    end: u64,
    class: u32,
    sketch: P,
}

/// An exponential-histogram-style ring of sealed correlated-sketch panes
/// answering `(time window, y-threshold)` two-dimensional slices.
///
/// Generic over the pane type `P`; use the aliases [`WindowedF2`],
/// [`WindowedCount`] and [`WindowedF0`] (constructed by [`windowed_f2`],
/// [`windowed_count`], [`windowed_f0`]).
pub struct PaneRing<P: WindowPane> {
    /// Empty template pane: configuration + seed donor for fresh panes.
    proto: P,
    config: PaneConfig,
    /// Panes sorted by `start`, non-overlapping; the last contains the newest
    /// observed timestamp.
    panes: Vec<Pane<P>>,
    t_latest: u64,
    has_data: bool,
    late_dropped: u64,
    /// Ticks strictly before this may have been lost to retention expiry.
    expired_through: Option<u64>,
    /// Mutation counter — the composite cache's generation key.
    generation: u64,
    /// Memoized window composites keyed by `(resolved_lo, resolved_hi)`.
    composite: Mutex<GenCache<u64, (u64, u64), P>>,
    /// Composites materialized since construction; a repeated window query
    /// must not advance this (the acceptance probe for cache hits).
    composites_built: AtomicU64,
}

/// Windowed correlated F2 over `(x, y, t)` tuples.
pub type WindowedF2 = PaneRing<CorrelatedSketch<F2Aggregate>>;
/// Windowed correlated count (selectivity) over `(x, y, t)` tuples.
pub type WindowedCount = PaneRing<CorrelatedSketch<CountAggregate>>;
/// Windowed correlated F0 (distinct `x`) over `(x, y, t)` tuples.
pub type WindowedF0 = PaneRing<CorrelatedF0>;

/// Build a [`WindowedF2`] ring: correlated F2 panes with accuracy
/// `(epsilon, delta)` over y values in `[0, y_max]`, sized for
/// `max_stream_len` tuples, all sharing `seed`.
pub fn windowed_f2(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
    seed: u64,
    panes: PaneConfig,
) -> Result<WindowedF2> {
    let proto = cora_core::correlated_f2_seeded(epsilon, delta, y_max, max_stream_len, seed)?;
    PaneRing::new(proto, panes)
}

/// Build a [`WindowedCount`] ring (correlated count panes).
pub fn windowed_count(
    epsilon: f64,
    delta: f64,
    y_max: u64,
    max_stream_len: u64,
    seed: u64,
    panes: PaneConfig,
) -> Result<WindowedCount> {
    let agg = CountAggregate::new();
    let config = CorrelatedConfig::new(epsilon, delta, y_max, agg.f_max_log2(max_stream_len))?
        .with_seed(seed);
    PaneRing::new(CorrelatedSketch::new(agg, config)?, panes)
}

/// Build a [`WindowedF0`] ring (correlated distinct-count panes over an
/// identifier domain of `2^x_domain_log2`).
pub fn windowed_f0(
    epsilon: f64,
    delta: f64,
    x_domain_log2: u32,
    y_max: u64,
    seed: u64,
    panes: PaneConfig,
) -> Result<WindowedF0> {
    let proto = CorrelatedF0::with_seed(epsilon, delta, x_domain_log2, y_max, seed)?;
    PaneRing::new(proto, panes)
}

impl<P: WindowPane> PaneRing<P> {
    /// Wrap an **empty** template sketch into a pane ring. The template is
    /// never inserted into; it donates configuration and seed to every pane.
    pub fn new(proto: P, config: PaneConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            proto,
            config,
            panes: Vec::new(),
            t_latest: 0,
            has_data: false,
            late_dropped: 0,
            expired_through: None,
            generation: 0,
            composite: Mutex::new(GenCache::new(WINDOW_CACHE_CAPACITY)),
            composites_built: AtomicU64::new(0),
        })
    }

    /// Observe tuple `(x, y)` at timestamp `t` (ticks; arrivals may be out of
    /// order). Tuples older than the retention horizon are dropped and
    /// counted in [`PaneRing::late_dropped`].
    ///
    /// The common case — `t` lands in an existing pane and does not advance
    /// the clock past anything — is just the pane insert plus O(1)
    /// bookkeeping: expiry can only drop panes when `t_latest` advances, and
    /// after every pane creation the rebalance pass runs to a fixed point
    /// (no class over budget), so neither needs to run again until the pane
    /// set or the clock actually changes.
    pub fn observe(&mut self, x: u64, y: u64, t: u64) -> Result<()> {
        let panes_before = self.panes.len();
        match self.route(t)? {
            Some(idx) => self.panes[idx].sketch.pane_insert(x, y)?,
            None => {
                self.late_dropped += 1;
                self.expired_through =
                    Some(self.expired_through.unwrap_or(0).max(t.saturating_add(1)));
                self.generation += 1;
                return Ok(());
            }
        }
        let created = self.panes.len() > panes_before;
        let advanced = !self.has_data || t > self.t_latest;
        if advanced {
            self.t_latest = t;
            self.has_data = true;
        }
        self.generation += 1;
        if advanced {
            self.expire();
        }
        if created {
            return self.rebalance();
        }
        Ok(())
    }

    /// Index of the pane owning timestamp `t`, creating a pane if `t` falls
    /// in a gap or beyond the tiling; `None` when `t` is behind the
    /// retention/expiry horizon.
    fn route(&mut self, t: u64) -> Result<Option<usize>> {
        let i = self.panes.partition_point(|p| p.start <= t);
        if i > 0 && t < self.panes[i - 1].end {
            return Ok(Some(i - 1));
        }
        // `t` is uncovered. Pane boundaries are multiples of `pane_ticks`, so
        // the base slot around `t` is disjoint from every existing pane.
        if self.is_expired(t) {
            return Ok(None);
        }
        let start = t - t % self.config.pane_ticks;
        let pane = Pane {
            start,
            end: start.saturating_add(self.config.pane_ticks),
            class: 0,
            sketch: self.proto.fresh()?,
        };
        self.panes.insert(i, pane);
        Ok(Some(i))
    }

    fn is_expired(&self, t: u64) -> bool {
        if self.expired_through.is_some_and(|b| t < b) {
            return true;
        }
        match self.config.retention {
            Some(r) if self.has_data => t < self.t_latest.saturating_add(1).saturating_sub(r),
            _ => false,
        }
    }

    /// Drop panes that fell entirely behind the retention horizon.
    fn expire(&mut self) {
        let Some(r) = self.config.retention else { return };
        if !self.has_data {
            return;
        }
        let cutoff = self.t_latest.saturating_add(1).saturating_sub(r);
        let drop = self.panes.partition_point(|p| p.end <= cutoff);
        if drop > 0 {
            let horizon = self.panes[drop - 1].end;
            self.expired_through = Some(self.expired_through.unwrap_or(0).max(horizon));
            self.panes.drain(..drop);
        }
    }

    /// Enforce the per-class budget over sealed panes: while some class holds
    /// more than `k` sealed panes, merge the oldest of that class with its
    /// immediate (older-side-first) neighbour into the next class. With
    /// in-order arrivals classes are age-sorted and this is the textbook
    /// exponential-histogram buddy merge; a late base pane wedged between
    /// coarse panes merges with whatever neighbours it, which still preserves
    /// the tiling.
    fn rebalance(&mut self) -> Result<()> {
        loop {
            let sealed = self.panes.len().saturating_sub(1);
            if sealed < 2 {
                return Ok(());
            }
            let mut counts: Vec<(u32, usize)> = Vec::new();
            for p in &self.panes[..sealed] {
                match counts.iter_mut().find(|(c, _)| *c == p.class) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((p.class, 1)),
                }
            }
            counts.sort_unstable();
            let Some(&(class, _)) = counts.iter().find(|&&(_, n)| n > self.config.k) else {
                return Ok(());
            };
            let i = self
                .panes
                .iter()
                .position(|p| p.class == class)
                .expect("class was counted above");
            debug_assert!(i + 1 < self.panes.len() - 1, "must not merge into the open pane");
            let removed = self.panes.remove(i + 1);
            let target = &mut self.panes[i];
            target.end = removed.end;
            target.class = target.class.max(removed.class) + 1;
            target.sketch.pane_merge_from(&removed.sketch)?;
        }
    }

    /// Pane indices whose `start` lies in `[t_lo, now]`, or
    /// [`CoreError::WindowExpired`] when `t_lo` reaches behind the expiry
    /// horizon.
    fn resolve(&self, now: u64, t_lo: u64) -> Result<Range<usize>> {
        if let Some(b) = self.expired_through {
            if t_lo < b {
                return Err(CoreError::WindowExpired {
                    requested_start: t_lo,
                    earliest_available: self.panes.first().map_or(b, |p| p.start),
                });
            }
        }
        let lo = self.panes.partition_point(|p| p.start < t_lo);
        let hi = self.panes.partition_point(|p| p.start <= now);
        Ok(lo..hi.max(lo))
    }

    /// The pane-aligned span `[resolved_lo, resolved_hi)` a query for
    /// `window` ticks ending at `now` is actually answered over, or `None`
    /// when no pane falls inside the request. The estimate covers exactly the
    /// tuples with `resolved_lo ≤ t < resolved_hi`.
    pub fn resolved_window(&self, now: u64, window: u64) -> Result<Option<(u64, u64)>> {
        let t_lo = now.saturating_add(1).saturating_sub(window);
        let r = self.resolve(now, t_lo)?;
        if r.is_empty() {
            return Ok(None);
        }
        Ok(Some((self.panes[r.start].start, self.panes[r.end - 1].end)))
    }

    /// Query the last `window` ticks ending at the newest observed timestamp
    /// with y-threshold `c` (zero when the ring is empty).
    pub fn query_sliding(&self, window: u64, c: u64) -> Result<f64> {
        if !self.has_data {
            return Ok(0.0);
        }
        self.query_at(self.t_latest, window, c)
    }

    /// Query the `window` ticks ending at `now` (which may trail the newest
    /// observed timestamp) with y-threshold `c`.
    pub fn query_at(&self, now: u64, window: u64, c: u64) -> Result<f64> {
        let t_lo = now.saturating_add(1).saturating_sub(window);
        self.query_span(now, t_lo, c)
    }

    /// Landmark query: everything observed at or after tick `landmark`, with
    /// y-threshold `c`.
    pub fn query_landmark(&self, landmark: u64, c: u64) -> Result<f64> {
        if !self.has_data {
            return Ok(0.0);
        }
        self.query_span(self.t_latest, landmark, c)
    }

    fn query_span(&self, now: u64, t_lo: u64, c: u64) -> Result<f64> {
        let r = self.resolve(now, t_lo)?;
        if r.is_empty() {
            return Ok(0.0);
        }
        let key = (self.panes[r.start].start, self.panes[r.end - 1].end);
        self.with_composite(r, key, |p| p.pane_query(c))
    }

    /// Run `f` against the merged composite of `panes[range]`, reusing the
    /// generation-keyed cache: a repeated query at an unchanged ring costs a
    /// probe, not a re-merge.
    fn with_composite<R>(
        &self,
        range: Range<usize>,
        key: (u64, u64),
        f: impl FnOnce(&P) -> Result<R>,
    ) -> Result<R> {
        let generation = self.generation;
        {
            let cache = self.composite.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(p) = cache.get(&generation, &key) {
                return f(p);
            }
        }
        let mut built = self.proto.fresh()?;
        for pane in &self.panes[range] {
            built.pane_merge_from(&pane.sketch)?;
        }
        self.composites_built.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.composite.lock().unwrap_or_else(PoisonError::into_inner);
        f(cache.insert(generation, key, built))
    }

    /// Newest observed timestamp, if any tuple has been observed.
    pub fn t_latest(&self) -> Option<u64> {
        self.has_data.then_some(self.t_latest)
    }

    /// The tick span currently covered by panes (start of the oldest to end
    /// of the newest), if any.
    pub fn coverage(&self) -> Option<(u64, u64)> {
        match (self.panes.first(), self.panes.last()) {
            (Some(a), Some(b)) => Some((a.start, b.end)),
            _ => None,
        }
    }

    /// Number of live panes.
    pub fn pane_count(&self) -> usize {
        self.panes.len()
    }

    /// `(start, end, class)` of every live pane, oldest first. Tests and the
    /// decayed-oracle use this to reproduce pane-granular semantics exactly.
    pub fn pane_spans(&self) -> Vec<(u64, u64, u32)> {
        self.panes.iter().map(|p| (p.start, p.end, p.class)).collect()
    }

    /// Pane geometry.
    pub fn pane_config(&self) -> &PaneConfig {
        &self.config
    }

    /// The empty template pane every real pane is configured from (for
    /// inspecting the sketch parameters a ring was built with).
    pub fn template(&self) -> &P {
        &self.proto
    }

    /// Late tuples discarded for falling behind the retention horizon.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Ticks strictly before this value may have been lost to expiry.
    pub fn expired_through(&self) -> Option<u64> {
        self.expired_through
    }

    /// Tuples stored across all panes.
    pub fn stored_tuples(&self) -> usize {
        self.panes.iter().map(|p| p.sketch.pane_stored_tuples()).sum()
    }

    /// Mutation counter (the composite cache generation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Window composites materialized so far. Repeating a query at an
    /// unchanged ring must not advance this — the cache-hit probe used by the
    /// acceptance tests.
    pub fn composites_built(&self) -> u64 {
        self.composites_built.load(Ordering::Relaxed)
    }

    /// The decay weight a pane with span end `span_end` carries at the
    /// current clock: `λ^age`, age in ticks from the pane's newest tick to
    /// the newest observed timestamp (0 for the pane holding it).
    pub fn decay_weight(&self, lambda: f64, span_end: u64) -> f64 {
        let age = self.t_latest.saturating_add(1).saturating_sub(span_end);
        lambda.powi(i32::try_from(age.min(i32::MAX as u64)).unwrap_or(i32::MAX))
    }

    /// Serialize the ring body (geometry, clock, panes as nested frames).
    fn encode_ring_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.config.pane_ticks);
        w.put_len(self.config.k);
        w.put_opt_u64(self.config.retention);
        w.put_bool(self.has_data);
        w.put_u64(self.t_latest);
        w.put_u64(self.late_dropped);
        w.put_opt_u64(self.expired_through);
        w.put_len(self.panes.len());
        let mut frame = Vec::new();
        for pane in &self.panes {
            w.put_u64(pane.start);
            w.put_u64(pane.end);
            w.put_u32(pane.class);
            frame.clear();
            pane.sketch.encode_frame(&mut frame);
            w.put_len(frame.len());
            w.put_bytes(&frame);
        }
    }

    /// Rebuild a ring around `proto` from bytes written by
    /// [`PaneRing::encode_ring_state`], validating geometry and tiling. Each
    /// pane is a full nested snapshot frame, so a corrupted or truncated pane
    /// fails its own magic/checksum validation before any state is decoded.
    fn decode_ring_state(proto: P, r: &mut ByteReader<'_>) -> Result<Self> {
        let corrupt = |detail: String| CoreError::Snapshot { detail };
        let pane_ticks = r.get_u64()?;
        let k = r.get_len()?;
        let retention = r.get_opt_u64()?;
        let config = PaneConfig { pane_ticks, k, retention };
        config.validate().map_err(|e| corrupt(format!("pane geometry: {e}")))?;
        let mut ring = PaneRing::new(proto, config)?;
        ring.has_data = r.get_bool()?;
        ring.t_latest = r.get_u64()?;
        ring.late_dropped = r.get_u64()?;
        ring.expired_through = r.get_opt_u64()?;
        let n = r.get_count(8 + 8 + 4 + 8)?;
        for _ in 0..n {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let class = r.get_u32()?;
            let len = r.get_len()?;
            let bytes = r.take(len)?;
            if start >= end || start % pane_ticks != 0 || end % pane_ticks != 0 {
                return Err(corrupt(format!("pane span [{start}, {end}) is not tile-aligned")));
            }
            if let Some(prev) = ring.panes.last() {
                if start < prev.end {
                    return Err(corrupt(format!(
                        "pane [{start}, {end}) overlaps its predecessor ending at {}",
                        prev.end
                    )));
                }
            }
            let sketch = P::decode_frame(&ring.proto, bytes)?;
            ring.panes.push(Pane { start, end, class, sketch });
        }
        if ring.has_data {
            let inside = ring
                .panes
                .last()
                .is_some_and(|p| p.start <= ring.t_latest && ring.t_latest < p.end);
            if !inside {
                return Err(corrupt(format!(
                    "newest timestamp {} lies outside the newest pane",
                    ring.t_latest
                )));
            }
        } else if !ring.panes.is_empty() {
            return Err(corrupt("panes present but no timestamp recorded".to_string()));
        }
        Ok(ring)
    }
}

impl<P: WindowPane> Clone for PaneRing<P> {
    /// The clone starts with a cold composite cache (memoized composites are
    /// cheap to rebuild and keep the clone independent).
    fn clone(&self) -> Self {
        Self {
            proto: self.proto.clone(),
            config: self.config.clone(),
            panes: self.panes.clone(),
            t_latest: self.t_latest,
            has_data: self.has_data,
            late_dropped: self.late_dropped,
            expired_through: self.expired_through,
            generation: self.generation,
            composite: Mutex::new(GenCache::new(WINDOW_CACHE_CAPACITY)),
            composites_built: AtomicU64::new(0),
        }
    }
}

impl<P: WindowPane> fmt::Debug for PaneRing<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PaneRing")
            .field("config", &self.config)
            .field("panes", &self.pane_spans())
            .field("t_latest", &self.t_latest())
            .field("late_dropped", &self.late_dropped)
            .field("expired_through", &self.expired_through)
            .finish()
    }
}

impl WindowedF2 {
    /// Fading-factor F2: every tuple weighted by `λ^age`, decay applied at
    /// pane granularity (see [`PaneRing::decay_weight`]). `λ = 1` recovers
    /// the undecayed landmark estimate; smaller `λ` forgets old panes
    /// geometrically — the cheap alternative to a hard window when staleness
    /// should fade rather than cut off.
    pub fn query_decayed(&self, lambda: f64, c: u64) -> Result<f64> {
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "lambda",
                detail: format!("decay factor must be in (0, 1], got {lambda}"),
            });
        }
        if !self.has_data {
            return Ok(0.0);
        }
        let mut acc = DecayedF2Accumulator::new(&self.proto.aggregate().new_sketch());
        for pane in &self.panes {
            let g = self.decay_weight(lambda, pane.end);
            pane.sketch.with_composed(c, |store| -> Result<()> {
                match store {
                    BucketStore::Exact(freqs) => {
                        for (item, count) in freqs.iter() {
                            acc.add_item(item, g * count as f64);
                        }
                        Ok(())
                    }
                    BucketStore::Sketched(s) => acc.add_sketch(s, g).map_err(CoreError::from),
                }
            })??;
        }
        Ok(acc.estimate())
    }
}

impl<A> PaneRing<CorrelatedSketch<A>>
where
    A: CorrelatedAggregate + fmt::Debug,
    A::Sketch: StateCodec,
{
    /// Serialize the ring into one self-validating snapshot frame
    /// ([`SnapshotKind::WindowedFramework`]); pane states are nested frames
    /// validated individually on restore.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`PaneRing::snapshot`] appending to a caller buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        snapshot::encode_config(self.proto.config(), &mut w);
        self.encode_ring_state(&mut w);
        snapshot::seal_frame_into(SnapshotKind::WindowedFramework, w.as_bytes(), out);
    }

    /// Rebuild a ring from [`PaneRing::snapshot`] bytes. `agg` must be the
    /// aggregate the ring was built with (fingerprint-checked per pane).
    pub fn restore_from(agg: A, bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::WindowedFramework)?;
        let mut r = ByteReader::new(payload);
        let config = snapshot::decode_config(&mut r).map_err(CoreError::from)?;
        let proto = CorrelatedSketch::new(agg, config)?;
        let ring = Self::decode_ring_state(proto, &mut r)?;
        r.expect_end().map_err(CoreError::from)?;
        Ok(ring)
    }
}

impl WindowedF0 {
    /// Serialize the ring into one self-validating snapshot frame
    /// ([`SnapshotKind::WindowedF0`]).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_to(&mut out);
        out
    }

    /// [`WindowedF0::snapshot`] appending to a caller buffer.
    pub fn snapshot_to(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        w.put_f64(self.proto.epsilon());
        w.put_f64(self.proto.delta());
        w.put_u32(self.proto.x_domain_log2());
        w.put_u64(self.proto.y_max());
        w.put_u64(self.proto.seed());
        self.encode_ring_state(&mut w);
        snapshot::seal_frame_into(SnapshotKind::WindowedF0, w.as_bytes(), out);
    }

    /// Rebuild a ring from [`WindowedF0::snapshot`] bytes (self-contained:
    /// the F0 parameters travel in the frame).
    pub fn restore_from(bytes: &[u8]) -> Result<Self> {
        let payload = snapshot::open_frame(bytes, SnapshotKind::WindowedF0)?;
        let mut r = ByteReader::new(payload);
        let epsilon = r.get_f64().map_err(CoreError::from)?;
        let delta = r.get_f64().map_err(CoreError::from)?;
        let x_domain_log2 = r.get_u32().map_err(CoreError::from)?;
        let y_max = r.get_u64().map_err(CoreError::from)?;
        let seed = r.get_u64().map_err(CoreError::from)?;
        let proto = CorrelatedF0::with_seed(epsilon, delta, x_domain_log2, y_max, seed)?;
        let ring = Self::decode_ring_state(proto, &mut r)?;
        r.expect_end().map_err(CoreError::from)?;
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_f2(pane_ticks: u64, k: usize, retention: Option<u64>) -> WindowedF2 {
        let mut cfg = PaneConfig::new(pane_ticks).with_k(k);
        cfg.retention = retention;
        windowed_f2(0.2, 0.1, 1023, 100_000, 42, cfg).unwrap()
    }

    fn tiling_ok<P: WindowPane>(ring: &PaneRing<P>) {
        let spans = ring.pane_spans();
        let ticks = ring.pane_config().pane_ticks;
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {spans:?}");
        }
        for &(s, e, _) in &spans {
            assert!(s < e && s % ticks == 0 && e % ticks == 0, "misaligned: {spans:?}");
        }
    }

    #[test]
    fn pane_count_stays_logarithmic() {
        let mut ring = small_f2(10, 2, None);
        for t in 0..20_000u64 {
            ring.observe(t % 37, t % 1024, t).unwrap();
        }
        tiling_ok(&ring);
        // 2000 base panes coarsen into O(k log) live panes.
        assert!(ring.pane_count() <= 2 * 12 + 2, "{} panes", ring.pane_count());
        let (lo, hi) = ring.coverage().unwrap();
        assert_eq!((lo, hi), (0, 20_000));
    }

    #[test]
    fn sliding_count_tracks_brute_force() {
        let mut ring = windowed_count(0.1, 0.05, 1023, 100_000, 7, PaneConfig::new(16).with_k(4))
            .unwrap();
        let mut events = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in 0..4_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = i; // in-order
            let y = state % 1024;
            events.push((t, y));
            ring.observe(i % 50, y, t).unwrap();
        }
        for window in [64u64, 500, 4_000] {
            let c = 512u64;
            let (lo, hi) = ring.resolved_window(3_999, window).unwrap().unwrap();
            let truth = events
                .iter()
                .filter(|&&(t, y)| t >= lo && t < hi && y <= c)
                .count() as f64;
            let est = ring.query_sliding(window, c).unwrap();
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(err < 0.15, "window {window}: est {est} truth {truth}");
        }
    }

    #[test]
    fn repeated_queries_hit_the_composite_cache() {
        let mut ring = small_f2(8, 4, None);
        for t in 0..1_000u64 {
            ring.observe(t % 17, t % 512, t).unwrap();
        }
        assert_eq!(ring.composites_built(), 0);
        let a = ring.query_sliding(300, 256).unwrap();
        assert_eq!(ring.composites_built(), 1);
        for _ in 0..10 {
            let b = ring.query_sliding(300, 256).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(ring.composites_built(), 1, "repeat query re-merged panes");
        // A different threshold reuses the same composite.
        ring.query_sliding(300, 100).unwrap();
        assert_eq!(ring.composites_built(), 1);
        // A mutation invalidates it.
        let gen_before = ring.generation();
        ring.observe(1, 1, 1_000).unwrap();
        assert!(ring.generation() > gen_before);
        ring.query_sliding(300, 256).unwrap();
        assert_eq!(ring.composites_built(), 2);
    }

    #[test]
    fn late_arrivals_fill_gaps_and_respect_retention() {
        let mut ring = small_f2(10, 4, Some(200));
        for t in (0..500u64).step_by(2) {
            if (100..200).contains(&t) {
                continue; // leave a gap
            }
            ring.observe(t, t % 1024, t).unwrap();
        }
        tiling_ok(&ring);
        // A late tuple inside the retained gap creates a pane in place.
        let before = ring.pane_count();
        ring.observe(9999, 3, 350).unwrap();
        assert!(ring.pane_count() <= before + 1);
        tiling_ok(&ring);
        // A tuple behind the horizon is dropped and counted.
        assert_eq!(ring.late_dropped(), 0);
        ring.observe(1, 1, 10).unwrap();
        assert_eq!(ring.late_dropped(), 1);
        // Queries reaching behind the horizon are refused.
        let err = ring.query_sliding(5_000, 512).unwrap_err();
        assert!(matches!(err, CoreError::WindowExpired { .. }), "{err}");
    }

    #[test]
    fn decayed_with_lambda_one_matches_landmark() {
        let mut ring = small_f2(16, 4, None);
        for t in 0..2_000u64 {
            ring.observe(t % 29, (t * 7) % 1024, t).unwrap();
        }
        let plain = ring.query_landmark(0, 600).unwrap();
        let decayed = ring.query_decayed(1.0, 600).unwrap();
        let err = (plain - decayed).abs() / plain.max(1.0);
        assert!(err < 0.2, "plain {plain} decayed {decayed}");
        // A strong decay must shrink the estimate.
        let faded = ring.query_decayed(0.9, 600).unwrap();
        assert!(faded < decayed, "faded {faded} vs {decayed}");
        assert!(ring.query_decayed(1.5, 600).is_err());
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut ring = small_f2(8, 3, Some(400));
        for t in 0..900u64 {
            ring.observe(t % 23, t % 1024, t).unwrap();
        }
        let bytes = ring.snapshot();
        let restored = WindowedF2::restore_from(F2Aggregate::new(0.2, 0.1, 42), &bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        assert_eq!(restored.pane_spans(), ring.pane_spans());
        assert_eq!(
            restored.query_sliding(200, 512).unwrap(),
            ring.query_sliding(200, 512).unwrap()
        );

        let mut f0 = windowed_f0(0.2, 0.1, 16, 1023, 11, PaneConfig::new(8)).unwrap();
        for t in 0..600u64 {
            f0.observe(t % 97, t % 1024, t).unwrap();
        }
        let bytes = f0.snapshot();
        let restored = WindowedF0::restore_from(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let mut ring = small_f2(8, 3, None);
        for t in 0..300u64 {
            ring.observe(t, t % 1024, t).unwrap();
        }
        let agg = || F2Aggregate::new(0.2, 0.1, 42);
        let bytes = ring.snapshot();
        // Truncation.
        assert!(WindowedF2::restore_from(agg(), &bytes[..bytes.len() - 3]).is_err());
        // Flipped byte in a nested pane frame (payload interior).
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(WindowedF2::restore_from(agg(), &bad).is_err());
        // Wrong kind: an F0 windowed frame is not a framework windowed frame.
        let mut f0 = windowed_f0(0.2, 0.1, 12, 1023, 11, PaneConfig::new(8)).unwrap();
        f0.observe(1, 1, 1).unwrap();
        assert!(WindowedF2::restore_from(agg(), &f0.snapshot()).is_err());
    }

    #[test]
    fn landmark_and_async_window_reduction_agree() {
        // The pane ring and the Section 1.1 reduction answer the same
        // sliding-window count on an in-order stream.
        let t_max = 4_000u64;
        let mut reduction = crate::AsyncWindowCount::new(0.1, 0.05, t_max, 10_000, 5).unwrap();
        let mut ring = windowed_count(0.1, 0.05, 1023, 10_000, 5, PaneConfig::new(16)).unwrap();
        for t in 0..=t_max {
            reduction.observe(t % 31, t).unwrap();
            ring.observe(t % 31, 0, t).unwrap();
        }
        for window in [256u64, 1_024, 4_000] {
            let a = reduction.query_window(t_max, window).unwrap();
            let (lo, hi) = ring.resolved_window(t_max, window).unwrap().unwrap();
            let b = ring.query_sliding(window, 1023).unwrap();
            // Same ground truth up to pane snapping: compare over spans.
            let exact_a = window + 1; // reduction counts t in [t_max-window, t_max]
            let exact_b = (hi.min(t_max + 1) - lo) as f64;
            assert!((a - exact_a as f64).abs() / exact_a as f64 <= 0.25);
            assert!((b - exact_b).abs() / exact_b <= 0.25, "ring {b} vs {exact_b}");
        }
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(windowed_f2(0.2, 0.1, 1023, 1000, 1, PaneConfig::new(0)).is_err());
        assert!(windowed_f2(0.2, 0.1, 1023, 1000, 1, PaneConfig::new(4).with_k(1)).is_err());
        assert!(
            windowed_f2(0.2, 0.1, 1023, 1000, 1, PaneConfig::new(10).with_retention(5)).is_err()
        );
    }
}
