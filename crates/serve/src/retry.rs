//! A reconnecting wrapper around [`ServeClient`]: exponential-backoff
//! retries plus sequence-numbered idempotent replay of unsynced batches.
//!
//! [`RetryingClient`] speaks the binary protocol and tags every ingest
//! batch with a `(writer, seq)` pair. Batches are buffered until a
//! [`RetryingClient::sync`] succeeds; if the connection dies mid-train —
//! the server crashed, restarted, or the socket broke — the next sync
//! reconnects (with exponential backoff) and **resends every unsynced
//! batch**. The blanket resend is safe because the server's per-writer
//! high-water mark turns already-applied sequence numbers into duplicate
//! acks instead of double counts: after a server `SIGKILL` and recovery,
//! no acked batch is lost (the journal holds everything synced) and none
//! is applied twice (the sequence map is journaled and snapshotted with
//! the rest of the state).
//!
//! ```no_run
//! # use cora_serve::retry::RetryingClient;
//! let mut client = RetryingClient::connect("127.0.0.1:9999", 1).unwrap();
//! for chunk in (0..100_000u64).collect::<Vec<_>>().chunks(1_000) {
//!     let batch: Vec<(u64, u64)> = chunk.iter().map(|&i| (i % 700, i % 4096)).collect();
//!     client.ingest_noack(&batch).unwrap(); // buffered + pipelined
//! }
//! client.sync().unwrap(); // durable on the server past this point
//! ```

use crate::client::{ClientError, ClientResult, ServeClient};
use crate::protocol::{Request, Response};
use std::thread;
use std::time::Duration;

/// When and how often to retry a broken connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Connection attempts per operation before giving up.
    pub attempts: u32,
    /// First backoff delay; doubles per failed attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Bound on each TCP connect attempt (see
    /// [`ServeClient::connect_binary_timeout`]) — without it a reconnect
    /// to a black-holed address can block for the OS connect timeout
    /// (minutes), starving the backoff loop.
    pub connect_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 6,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before attempt `n` (0-based): 0 for the
    /// first, then `base_delay`, `2×`, `4×`, … capped at `max_delay`.
    fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// One buffered, sequence-tagged ingest batch awaiting a successful sync.
struct PendingBatch {
    seq: u64,
    tuples: Vec<(u64, u64)>,
}

/// A self-healing binary-protocol client: reconnects with backoff and
/// replays unsynced sequence-tagged batches (see the module docs).
pub struct RetryingClient {
    target: String,
    policy: RetryPolicy,
    writer: u64,
    next_seq: u64,
    pending: Vec<PendingBatch>,
    /// How many of `pending` were already pipelined on the *current*
    /// connection (reset to 0 whenever the connection is rebuilt), so a
    /// sync over an intact connection does not re-send the whole train.
    sent_on_current: usize,
    conn: Option<ServeClient>,
}

impl RetryingClient {
    /// Connect to `target` (host:port) as logical writer `writer`. The
    /// writer id scopes the sequence numbers — two concurrent clients must
    /// use distinct ids, or the server will mistake one's batches for the
    /// other's duplicates.
    pub fn connect(target: &str, writer: u64) -> ClientResult<Self> {
        Self::connect_with(target, writer, RetryPolicy::default())
    }

    /// [`Self::connect`] with an explicit retry policy.
    pub fn connect_with(target: &str, writer: u64, policy: RetryPolicy) -> ClientResult<Self> {
        let mut client = Self {
            target: target.to_string(),
            policy,
            writer,
            next_seq: 1,
            pending: Vec::new(),
            sent_on_current: 0,
            conn: None,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Point the client at a new address (e.g. a restarted server that came
    /// back on a different port). The current connection is dropped; the
    /// next operation reconnects and replays any unsynced batches.
    pub fn set_target(&mut self, target: &str) {
        self.target = target.to_string();
        self.drop_conn();
    }

    /// Batches buffered but not yet confirmed by a successful
    /// [`Self::sync`].
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// The sequence number the next ingest batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.sent_on_current = 0;
    }

    fn ensure_connected(&mut self) -> ClientResult<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.policy.attempts {
            thread::sleep(self.policy.delay(attempt));
            match ServeClient::connect_binary_timeout(&self.target, self.policy.connect_timeout) {
                Ok(conn) => {
                    self.conn = Some(conn);
                    self.sent_on_current = 0;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no attempts made")
        })))
    }

    /// Whether an error means the connection is unusable (reconnect and
    /// retry) rather than a server-side verdict (propagate).
    fn is_connection_error(e: &ClientError) -> bool {
        matches!(e, ClientError::Io(_) | ClientError::Timeout(_))
    }

    /// Buffer one batch and pipeline it without waiting for a response.
    /// Socket failures here are absorbed — the batch stays buffered, and
    /// the next [`Self::sync`] reconnects and resends it.
    pub fn ingest_noack(&mut self, tuples: &[(u64, u64)]) -> ClientResult<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(PendingBatch { seq, tuples: tuples.to_vec() });
        // Only pipeline eagerly while the current connection has the whole
        // buffer in flight; otherwise leave the send to the next sync,
        // which replays in order.
        if self.conn.is_some() && self.sent_on_current == self.pending.len() - 1 {
            let writer = self.writer;
            let conn = self.conn.as_mut().expect("checked above");
            if conn.ingest_noack_seq(tuples, Some((writer, seq))).is_ok() {
                self.sent_on_current += 1;
            } else {
                self.drop_conn();
            }
        }
        Ok(())
    }

    /// Durability barrier: flush the pipelined train and confirm every
    /// buffered batch. On a broken connection this reconnects with backoff
    /// and resends all unconfirmed batches — duplicates are absorbed by
    /// the server's sequence map, so the result is exactly-once
    /// application. Returns how many batches were re-sent.
    ///
    /// A non-connection error (the server rejected a batch) is definitive:
    /// the buffer is cleared and the error propagated — retrying cannot
    /// make a rejected batch acceptable.
    pub fn sync(&mut self) -> ClientResult<u64> {
        let mut resent = 0u64;
        let mut last_error: Option<ClientError> = None;
        for attempt in 0..self.policy.attempts {
            thread::sleep(self.policy.delay(attempt));
            match self.try_sync(&mut resent) {
                Ok(()) => {
                    self.pending.clear();
                    self.sent_on_current = 0;
                    return Ok(resent);
                }
                Err(e) if Self::is_connection_error(&e) => {
                    last_error = Some(e);
                    self.drop_conn();
                }
                Err(e) => {
                    self.pending.clear();
                    self.sent_on_current = 0;
                    return Err(e);
                }
            }
        }
        Err(last_error
            .unwrap_or_else(|| ClientError::Protocol("sync exhausted its retry budget".into())))
    }

    fn try_sync(&mut self, resent: &mut u64) -> ClientResult<()> {
        self.ensure_connected()?;
        let mut conn = self.conn.take().expect("just connected");
        let start = self.sent_on_current;
        let result = (|| {
            for batch in &self.pending[start..] {
                conn.ingest_noack_seq(&batch.tuples, Some((self.writer, batch.seq)))?;
                *resent += 1;
            }
            conn.sync()
        })();
        self.conn = Some(conn);
        self.sent_on_current = self.pending.len();
        result
    }

    /// Acked ingest with retry: the batch is sequence-tagged, so resending
    /// it after a reconnect cannot double-count. Returns the accepted tuple
    /// count (0 when the server had already applied this sequence number).
    pub fn ingest(&mut self, tuples: &[(u64, u64)]) -> ClientResult<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let writer = self.writer;
        self.with_retry(|conn| conn.ingest_seq(tuples, Some((writer, seq))))
    }

    /// Run `op` against the connection, reconnecting with backoff on socket
    /// failures. Only safe for idempotent operations — which every protocol
    /// op is (queries repeat; sequence-tagged ingest dedupes).
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut ServeClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let mut last_error: Option<ClientError> = None;
        for attempt in 0..self.policy.attempts {
            thread::sleep(self.policy.delay(attempt));
            if let Err(e) = self.ensure_connected() {
                last_error = Some(e);
                continue;
            }
            match op(self.conn.as_mut().expect("just connected")) {
                Ok(value) => return Ok(value),
                Err(e) if Self::is_connection_error(&e) => {
                    last_error = Some(e);
                    self.drop_conn();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            ClientError::Protocol("operation exhausted its retry budget".into())
        }))
    }

    /// Read-your-writes barrier (see [`ServeClient::flush`]), with retry.
    pub fn flush(&mut self) -> ClientResult<()> {
        self.with_retry(|conn| conn.flush())
    }

    /// Liveness check, with retry.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.with_retry(|conn| conn.ping())
    }

    /// Correlated `F_2` at threshold `c`, with retry.
    pub fn query_f2(&mut self, c: u64) -> ClientResult<f64> {
        self.with_retry(|conn| conn.query_f2(c))
    }

    /// Service statistics, with retry.
    pub fn stats(&mut self) -> ClientResult<Response> {
        self.with_retry(|conn| conn.stats())
    }

    /// Force a durable snapshot rotation, with retry.
    pub fn snapshot_rotate(&mut self) -> ClientResult<u64> {
        self.with_retry(|conn| conn.snapshot_rotate())
    }

    /// Ask the server to stop. Not retried — a dead connection here most
    /// likely means the server already stopped.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("just connected");
        conn.request(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
            connect_timeout: Duration::from_secs(5),
        };
        let delays: Vec<u64> = (0..6).map(|a| policy.delay(a).as_millis() as u64).collect();
        assert_eq!(delays, vec![0, 10, 20, 40, 50, 50]);
    }
}
