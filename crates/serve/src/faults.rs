//! Deterministic fault injection for the durability layer.
//!
//! [`FaultyStorage`] wraps any [`Storage`] implementation and fails chosen
//! operations on exact, counted triggers — the Nth journal append, the Nth
//! snapshot publish, every snapshot read — so the recovery paths of
//! `crate::server` are *proven* by tests instead of assumed:
//!
//! * **fail-at-Nth-write** — the Nth journal append returns an error (after
//!   optionally tearing the record: a prefix of its bytes is written first,
//!   exactly what a crash mid-`write(2)` leaves behind);
//! * **fail-at-Nth-snapshot** — the Nth atomic snapshot publish fails
//!   before the rename, so no torn snapshot is ever observed but the
//!   rotation is refused;
//! * **short-read** — snapshot reads return a truncated prefix, modelling a
//!   torn file surviving a crash on a weaker filesystem.
//!
//! Counters are shared between the storage and every append handle it
//! opened, so a plan armed mid-run applies to the journal the server is
//! already holding. All triggers are counted and exact — no randomness, no
//! timing dependence — which is what lets the fault-injection suite assert
//! *specific* recovery outcomes (fallback to the previous generation,
//! valid-prefix replay, structured `io` errors) on every run.

use crate::journal::{AppendFile, Storage};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What to fail, and when. Counters are 1-based: `fail_append_at: Some(3)`
/// fails the third data append issued after the plan was armed.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Fail the Nth journal record append (header writes count too).
    pub fail_append_at: Option<u64>,
    /// When failing an append, write a prefix of the record first — a torn
    /// write — instead of failing cleanly.
    pub torn_append: bool,
    /// Fail the Nth atomic write (snapshot publish) before it renames.
    pub fail_write_atomic_at: Option<u64>,
    /// Truncate every `read` of a file whose name starts with this prefix
    /// to at most the given byte count (models a short read of a torn
    /// snapshot).
    pub short_read: Option<(String, usize)>,
}

#[derive(Default)]
struct FaultState {
    plan: Mutex<FaultPlan>,
    appends: AtomicU64,
    atomic_writes: AtomicU64,
}

impl FaultState {
    fn fail_this_append(&self) -> Option<bool> {
        let plan = self.plan.lock().unwrap();
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        match plan.fail_append_at {
            Some(at) if n == at => Some(plan.torn_append),
            _ => None,
        }
    }

    fn fail_this_atomic_write(&self) -> bool {
        let plan = self.plan.lock().unwrap();
        let n = self.atomic_writes.fetch_add(1, Ordering::SeqCst) + 1;
        plan.fail_write_atomic_at == Some(n)
    }
}

/// A [`Storage`] decorator that injects the faults described by its
/// [`FaultPlan`]. Share it as an `Arc` between the test and
/// `crate::server::start_with_storage`, then arm plans mid-run with
/// [`FaultyStorage::set_plan`].
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    state: Arc<FaultState>,
}

impl FaultyStorage {
    /// Wrap `inner` with an empty (no-fault) plan.
    pub fn new(inner: Arc<dyn Storage>) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState::default()),
        }
    }

    /// Replace the active plan and reset the operation counters, so the
    /// plan's 1-based triggers count from "now".
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.appends.store(0, Ordering::SeqCst);
        self.state.atomic_writes.store(0, Ordering::SeqCst);
        *self.state.plan.lock().unwrap() = plan;
    }

    /// Disarm every fault.
    pub fn clear(&self) {
        self.set_plan(FaultPlan::default());
    }

    /// Appends observed since the plan was last armed.
    pub fn appends_seen(&self) -> u64 {
        self.state.appends.load(Ordering::SeqCst)
    }

    /// Atomic writes (snapshot publishes) observed since the plan was last
    /// armed.
    pub fn atomic_writes_seen(&self) -> u64 {
        self.state.atomic_writes.load(Ordering::SeqCst)
    }
}

struct FaultyAppend {
    inner: Box<dyn AppendFile>,
    state: Arc<FaultState>,
}

impl AppendFile for FaultyAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(torn) = self.state.fail_this_append() {
            if torn && !bytes.is_empty() {
                // A crash mid-write: a prefix lands on disk, the rest never
                // does. Half the record (at least one byte) survives.
                let cut = (bytes.len() / 2).max(1);
                self.inner.append(&bytes[..cut])?;
                let _ = self.inner.sync();
            }
            return Err(io::Error::other("injected fault: append failed"));
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl Storage for FaultyStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let bytes = self.inner.read(path)?;
        let plan = self.state.plan.lock().unwrap();
        if let Some((prefix, cap)) = &plan.short_read {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(prefix.as_str()) && bytes.len() > *cap {
                return Ok(bytes[..*cap].to_vec());
            }
        }
        Ok(bytes)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyAppend {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.state.fail_this_atomic_write() {
            return Err(io::Error::other("injected fault: atomic write failed"));
        }
        self.inner.write_atomic(path, bytes)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{journal_path, scan_journal, DiskStorage, JournalWriter};

    #[test]
    fn counted_faults_fire_exactly_once_and_tears_leave_prefixes() {
        let dir = std::env::temp_dir().join(format!("cora_faults_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = FaultyStorage::new(Arc::new(DiskStorage));

        let mut journal = JournalWriter::create(&storage, &dir, 0).unwrap();
        // Arming resets the counters, so the three records below are
        // appends #1..=#3 — the plan tears the third.
        storage.set_plan(FaultPlan {
            fail_append_at: Some(3),
            torn_append: true,
            ..FaultPlan::default()
        });
        journal.append_batch(&[(1, 1)], &[], None, true).unwrap();
        journal.append_batch(&[(2, 2)], &[], None, true).unwrap();
        let err = journal.append_batch(&[(3, 3)], &[], None, true).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // Poisoned: the next append is refused without touching the file.
        assert!(journal.is_poisoned());
        let refused = journal.append_batch(&[(4, 4)], &[], None, true).unwrap_err();
        assert!(refused.to_string().contains("poisoned"), "{refused}");

        // The torn record is on disk as a prefix; the scan drops it and
        // keeps the two good records.
        let bytes = DiskStorage.read(&journal_path(&dir, 0)).unwrap();
        let scan = scan_journal(&bytes).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn.is_some());

        // Atomic-write faults and short reads.
        storage.set_plan(FaultPlan {
            fail_write_atomic_at: Some(2),
            short_read: Some(("snap-".into(), 4)),
            ..FaultPlan::default()
        });
        let snap = dir.join("snap-9.csrv");
        storage.write_atomic(&snap, b"full contents").unwrap();
        assert!(storage.write_atomic(&snap, b"second").is_err());
        assert_eq!(storage.read(&snap).unwrap(), b"full");
        assert_eq!(storage.read(&journal_path(&dir, 0)).unwrap(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
