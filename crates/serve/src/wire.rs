//! The length-prefixed binary wire protocol.
//!
//! Newline-JSON (see [`crate::protocol`]) is friendly to `netcat` and
//! debuggers, but it taxes the hot path: every ingest batch is rendered to
//! decimal text, reparsed, and reassembled into vectors. This module frames
//! the same request/response surface in binary, built on the snapshot codec
//! primitives ([`ByteWriter`]/[`ByteReader`], little-endian throughout), so
//! a 1 000-tuple ingest is one `memcpy`-shaped decode instead of ~2 000
//! integer parses.
//!
//! ## Frame layout
//!
//! ```text
//!  offset  size  field
//!  ------  ----  ---------------------------------------------------------
//!       0     1  magic     0xCB
//!       1     1  version   1
//!       2     1  opcode    (request: the op; response: echo of the request)
//!       3     1  flags     request:  bit 0 = NO_ACK (suppress the success
//!                                    response — errors are always answered)
//!                          response: bit 0 = ERROR
//!       4     4  length    payload byte count, u32 little-endian
//!       8   len  payload   opcode-specific (below)
//! ```
//!
//! ## Negotiation
//!
//! The server sniffs the **first byte** of each connection: `{` (or leading
//! whitespace) selects the JSON line protocol, [`MAGIC`] selects binary, and
//! anything else is answered with one JSON error line before the connection
//! closes. A connection never switches protocols mid-stream. Unknown
//! versions and oversized declared lengths (> [`MAX_FRAME_BYTES`]) are
//! rejected **before** any payload is buffered, with an ERROR response
//! frame, and the connection closes (framing can no longer be trusted).
//! Unknown opcodes in a well-formed frame get an ERROR response and the
//! connection stays usable, mirroring the JSON protocol's unknown-op error.
//!
//! ## Opcodes and payloads
//!
//! | opcode | op              | request payload                                  |
//! |--------|-----------------|--------------------------------------------------|
//! | 0x01   | `ping`          | —                                                |
//! | 0x02   | `config`        | —                                                |
//! | 0x03   | `ingest`        | `u32 n`, `u8 meta`, `[u64 writer, u64 seq]`, `n×u64 xs`, `n×u64 ys`, `[n×u64 ts]` |
//! | 0x04   | `flush`         | —                                                |
//! | 0x05   | `f2`            | `u64 c`                                          |
//! | 0x06   | `f0`            | `u64 c`                                          |
//! | 0x07   | `rarity`        | `u64 c`                                          |
//! | 0x08   | `heavy_hitters` | `u64 c`, `f64 phi`                               |
//! | 0x09   | `window_f2`     | `u64 window`, `u64 c`                            |
//! | 0x0A   | `window_f0`     | `u64 window`, `u64 c`                            |
//! | 0x0B   | `stats`         | —                                                |
//! | 0x0C   | `snapshot`      | `str path` (u64 length + UTF-8 bytes)            |
//! | 0x0D   | `shutdown`      | —                                                |
//! | 0x0E   | `auth`          | `str token`                                      |
//! | 0x0F   | `set_f0`        | `str a`, `str b`, `u8 op` (0 ∪, 1 ∩, 2 ∖), `u64 c` |
//! | 0x10   | `streams`       | —                                                |
//! | 0x11   | `repl_hello`    | `str stream`, `u64 fingerprint`, `u64 g_to`      |
//! | 0x12   | `repl_delta`    | `str stream`, then the sealed delta container    |
//! | 0x13   | `repl_snapshot` | `str stream`, then the sealed full container     |
//! | 0x14   | `repl_ack`      | *response-only*: the aggregator answers every repl request with this opcode, carrying its `high_water` generation |
//!
//! The three `repl_*` requests are answered with opcode `0x14 REPL_ACK`
//! instead of an echo, so a replica can pattern-match acknowledgements
//! without tracking which request is in flight. A full snapshot container
//! is still one frame, so replicated state is capped at
//! [`MAX_FRAME_BYTES`] (16 MiB) — far above any sketch-only bundle, but a
//! hard error (not silent truncation) if exceeded.
//!
//! The ingest `meta` byte carries bit 0 = explicit timestamps follow the y
//! lane, bit 1 = a `(writer, seq)` idempotency pair precedes the x lane
//! (see [`crate::protocol::Request::Ingest`]); other bits are rejected.
//!
//! A response payload is either `str message`, `str kind` (ERROR flag set;
//! `kind` is an [`crate::protocol::ErrorKind`] wire name, mirroring the
//! JSON `kind` field) or a field list: `u8 nfields`, then per field
//! `str key`, `u8 tag`, value — tags 0 `u64`, 1 `f64` (IEEE bits),
//! 2 `u64` array (`u32 n` + values), 3 `f64` array, 4 null, 5 `str`. Field
//! lists mirror the JSON object fields one-for-one, so both transports
//! answer identically.
//!
//! ## Pipelining
//!
//! A client may stream any number of request frames without reading
//! responses in between; the server answers in order. `NO_ACK` on `ingest`
//! suppresses the success response entirely — the client fires N batches,
//! then sends a `ping` as a sync point and drains whatever is in the pipe
//! (error frames from failed batches, then the ping's reply). This is what
//! closes the per-batch round-trip tax on bulk loads.

use crate::protocol::{Reply, Request, Value};
use cora_sketch::codec::{ByteReader, ByteWriter};

/// Ingest `meta` bit: explicit per-tuple timestamps follow the y lane.
const INGEST_HAS_TS: u8 = 1;
/// Ingest `meta` bit: a `(writer, seq)` pair precedes the x lane.
const INGEST_HAS_SEQ: u8 = 2;

/// First byte of every binary frame — also the negotiation byte (JSON lines
/// start with `{`).
pub const MAGIC: u8 = 0xCB;

/// Protocol version carried in every frame.
pub const VERSION: u8 = 1;

/// Fixed frame header size in bytes.
pub const HEADER_BYTES: usize = 8;

/// Hard cap on a frame payload; declared lengths above this are rejected
/// before any allocation. Also used as the JSON line-length cap.
pub const MAX_FRAME_BYTES: usize = 1 << 24; // 16 MiB

/// Request flag: suppress the success response (errors are still answered).
pub const FLAG_NO_ACK: u8 = 1;

/// Response flag: the payload is an error message, not a field list.
pub const FLAG_ERROR: u8 = 1;

/// Binary opcodes, one per protocol op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness check (also the pipelining sync point).
    Ping = 0x01,
    /// Report the server's construction parameters.
    Config = 0x02,
    /// Batch-ingest tuples.
    Ingest = 0x03,
    /// Read-your-writes barrier.
    Flush = 0x04,
    /// Correlated `F_2` query.
    F2 = 0x05,
    /// Correlated distinct-count query.
    F0 = 0x06,
    /// Correlated rarity query.
    Rarity = 0x07,
    /// Correlated heavy-hitters query.
    HeavyHitters = 0x08,
    /// Windowed correlated `F_2` query.
    WindowF2 = 0x09,
    /// Windowed correlated `F_0` query.
    WindowF0 = 0x0A,
    /// Service statistics.
    Stats = 0x0B,
    /// Write a snapshot bundle server-side.
    Snapshot = 0x0C,
    /// Stop the listener after acknowledging.
    Shutdown = 0x0D,
    /// Present the shared-secret auth token.
    Auth = 0x0E,
    /// Multi-stream set-expression distinct-count query (aggregator only).
    SetF0 = 0x0F,
    /// List the registered upstream streams (aggregator only).
    Streams = 0x10,
    /// Replication handshake: name the stream, prove config compatibility.
    ReplHello = 0x11,
    /// Ship an incremental delta container for a stream.
    ReplDelta = 0x12,
    /// Ship a full replacement snapshot container for a stream.
    ReplSnapshot = 0x13,
    /// Response-only: acknowledges a repl request with the aggregator's
    /// high-water generation.
    ReplAck = 0x14,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => Opcode::Ping,
            0x02 => Opcode::Config,
            0x03 => Opcode::Ingest,
            0x04 => Opcode::Flush,
            0x05 => Opcode::F2,
            0x06 => Opcode::F0,
            0x07 => Opcode::Rarity,
            0x08 => Opcode::HeavyHitters,
            0x09 => Opcode::WindowF2,
            0x0A => Opcode::WindowF0,
            0x0B => Opcode::Stats,
            0x0C => Opcode::Snapshot,
            0x0D => Opcode::Shutdown,
            0x0E => Opcode::Auth,
            0x0F => Opcode::SetF0,
            0x10 => Opcode::Streams,
            0x11 => Opcode::ReplHello,
            0x12 => Opcode::ReplDelta,
            0x13 => Opcode::ReplSnapshot,
            0x14 => Opcode::ReplAck,
            _ => return None,
        })
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Raw opcode byte (may not map to a known [`Opcode`]).
    pub opcode: u8,
    /// Request or response flags.
    pub flags: u8,
    /// Payload length in bytes.
    pub len: usize,
}

/// Why a frame header was rejected. [`HeaderError::BadLength`] and
/// [`HeaderError::BadMagic`]/[`HeaderError::BadVersion`] mean framing can no
/// longer be trusted and the connection should close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    BadLength(usize),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadMagic(b) => write!(f, "bad frame magic byte 0x{b:02X}"),
            HeaderError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {VERSION})")
            }
            HeaderError::BadLength(len) => write!(
                f,
                "declared frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
            ),
        }
    }
}

/// Parse and validate the fixed 8-byte header. The length cap is enforced
/// here, before any payload is read or allocated.
pub fn parse_header(bytes: &[u8; HEADER_BYTES]) -> Result<Header, HeaderError> {
    if bytes[0] != MAGIC {
        return Err(HeaderError::BadMagic(bytes[0]));
    }
    if bytes[1] != VERSION {
        return Err(HeaderError::BadVersion(bytes[1]));
    }
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(HeaderError::BadLength(len));
    }
    Ok(Header {
        opcode: bytes[2],
        flags: bytes[3],
        len,
    })
}

fn frame(opcode: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(opcode);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode one request as a complete frame. `flags` is normally 0;
/// [`FLAG_NO_ACK`] is meaningful on ingest.
pub fn encode_request(request: &Request, flags: u8) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let opcode = match request {
        Request::Ping => Opcode::Ping,
        Request::Config => Opcode::Config,
        Request::Ingest { xs, ys, ts, seq } => {
            w.put_u32(xs.len() as u32);
            let mut meta = 0u8;
            if ts.is_some() {
                meta |= INGEST_HAS_TS;
            }
            if seq.is_some() {
                meta |= INGEST_HAS_SEQ;
            }
            w.put_u8(meta);
            if let Some((writer, seq)) = seq {
                w.put_u64(*writer);
                w.put_u64(*seq);
            }
            for &x in xs {
                w.put_u64(x);
            }
            for &y in ys {
                w.put_u64(y);
            }
            if let Some(ts) = ts {
                for &t in ts {
                    w.put_u64(t);
                }
            }
            Opcode::Ingest
        }
        Request::Flush => Opcode::Flush,
        Request::QueryF2 { c } => {
            w.put_u64(*c);
            Opcode::F2
        }
        Request::QueryF0 { c } => {
            w.put_u64(*c);
            Opcode::F0
        }
        Request::QueryRarity { c } => {
            w.put_u64(*c);
            Opcode::Rarity
        }
        Request::QueryHeavyHitters { c, phi } => {
            w.put_u64(*c);
            w.put_f64(*phi);
            Opcode::HeavyHitters
        }
        Request::WindowF2 { window, c } => {
            w.put_u64(*window);
            w.put_u64(*c);
            Opcode::WindowF2
        }
        Request::WindowF0 { window, c } => {
            w.put_u64(*window);
            w.put_u64(*c);
            Opcode::WindowF0
        }
        Request::Stats => Opcode::Stats,
        Request::Snapshot { path } => {
            w.put_str(path);
            Opcode::Snapshot
        }
        Request::Shutdown => Opcode::Shutdown,
        Request::Auth { token } => {
            w.put_str(token);
            Opcode::Auth
        }
        Request::SetF0 { a, b, op, c } => {
            w.put_str(a);
            w.put_str(b);
            w.put_u8(*op as u8);
            w.put_u64(*c);
            Opcode::SetF0
        }
        Request::Streams => Opcode::Streams,
        Request::ReplHello { stream, fingerprint, g_to } => {
            w.put_str(stream);
            w.put_u64(*fingerprint);
            w.put_u64(*g_to);
            Opcode::ReplHello
        }
        Request::ReplDelta { stream, frame: bytes } => {
            w.put_str(stream);
            w.put_bytes(bytes);
            Opcode::ReplDelta
        }
        Request::ReplSnapshot { stream, frame: bytes } => {
            w.put_str(stream);
            w.put_bytes(bytes);
            Opcode::ReplSnapshot
        }
    };
    frame(opcode as u8, flags, w.as_bytes())
}

/// Encode an ingest request frame directly from tuple slices (no
/// intermediate `xs`/`ys` vectors — the client's pipelined hot path).
/// `seq` is the optional `(writer, seq)` idempotency pair.
pub fn encode_ingest(
    tuples: &[(u64, u64)],
    ts: Option<&[u64]>,
    seq: Option<(u64, u64)>,
    flags: u8,
) -> Vec<u8> {
    debug_assert!(ts.map_or(true, |ts| ts.len() == tuples.len()));
    let mut w = ByteWriter::new();
    w.put_u32(tuples.len() as u32);
    let mut meta = 0u8;
    if ts.is_some() {
        meta |= INGEST_HAS_TS;
    }
    if seq.is_some() {
        meta |= INGEST_HAS_SEQ;
    }
    w.put_u8(meta);
    if let Some((writer, seq)) = seq {
        w.put_u64(writer);
        w.put_u64(seq);
    }
    for &(x, _) in tuples {
        w.put_u64(x);
    }
    for &(_, y) in tuples {
        w.put_u64(y);
    }
    if let Some(ts) = ts {
        for &t in ts {
            w.put_u64(t);
        }
    }
    frame(Opcode::Ingest as u8, flags, w.as_bytes())
}

/// What an ingest payload carried besides the tuples themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestMeta {
    /// Explicit per-tuple timestamps were present.
    pub has_ts: bool,
    /// The `(writer, seq)` idempotency pair, when sent.
    pub seq: Option<(u64, u64)>,
}

/// Decode an ingest payload into reusable scratch buffers — the server's
/// zero-per-tuple-allocation path (`tuples`/`ts` are cleared, then filled).
pub fn decode_ingest_into(
    payload: &[u8],
    tuples: &mut Vec<(u64, u64)>,
    ts: &mut Vec<u64>,
) -> Result<IngestMeta, String> {
    tuples.clear();
    ts.clear();
    let mut r = ByteReader::new(payload);
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    let meta = r.get_u8().map_err(|e| e.to_string())?;
    if meta & !(INGEST_HAS_TS | INGEST_HAS_SEQ) != 0 {
        return Err(format!("invalid ingest meta byte 0x{meta:02X}"));
    }
    let has_ts = meta & INGEST_HAS_TS != 0;
    let seq = if meta & INGEST_HAS_SEQ != 0 {
        Some((
            r.get_u64().map_err(|e| e.to_string())?,
            r.get_u64().map_err(|e| e.to_string())?,
        ))
    } else {
        None
    };
    let lanes = if has_ts { 3 } else { 2 };
    if r.remaining() != n * 8 * lanes {
        return Err(format!(
            "ingest payload declares {n} tuples ({} value bytes) but carries {}",
            n * 8 * lanes,
            r.remaining()
        ));
    }
    tuples.reserve(n);
    let xs = r.take(n * 8).map_err(|e| e.to_string())?;
    let ys = r.take(n * 8).map_err(|e| e.to_string())?;
    for (xc, yc) in xs.chunks_exact(8).zip(ys.chunks_exact(8)) {
        tuples.push((
            u64::from_le_bytes(xc.try_into().expect("8-byte chunk")),
            u64::from_le_bytes(yc.try_into().expect("8-byte chunk")),
        ));
    }
    if has_ts {
        ts.reserve(n);
        let tsb = r.take(n * 8).map_err(|e| e.to_string())?;
        for tc in tsb.chunks_exact(8) {
            ts.push(u64::from_le_bytes(tc.try_into().expect("8-byte chunk")));
        }
    }
    Ok(IngestMeta { has_ts, seq })
}

/// Decode a non-ingest request payload (ingest goes through
/// [`decode_ingest_into`] so the server can reuse scratch buffers).
pub fn decode_request(opcode: Opcode, payload: &[u8]) -> Result<Request, String> {
    let mut r = ByteReader::new(payload);
    let e = |err: cora_sketch::codec::CodecError| err.to_string();
    let request = match opcode {
        Opcode::Ping => Request::Ping,
        Opcode::Config => Request::Config,
        Opcode::Ingest => {
            let mut tuples = Vec::new();
            let mut ts = Vec::new();
            let meta = decode_ingest_into(payload, &mut tuples, &mut ts)?;
            return Ok(Request::Ingest {
                xs: tuples.iter().map(|&(x, _)| x).collect(),
                ys: tuples.iter().map(|&(_, y)| y).collect(),
                ts: meta.has_ts.then_some(ts),
                seq: meta.seq,
            });
        }
        Opcode::Flush => Request::Flush,
        Opcode::F2 => Request::QueryF2 { c: r.get_u64().map_err(e)? },
        Opcode::F0 => Request::QueryF0 { c: r.get_u64().map_err(e)? },
        Opcode::Rarity => Request::QueryRarity { c: r.get_u64().map_err(e)? },
        Opcode::HeavyHitters => Request::QueryHeavyHitters {
            c: r.get_u64().map_err(e)?,
            phi: r.get_f64().map_err(e)?,
        },
        Opcode::WindowF2 => Request::WindowF2 {
            window: r.get_u64().map_err(e)?,
            c: r.get_u64().map_err(e)?,
        },
        Opcode::WindowF0 => Request::WindowF0 {
            window: r.get_u64().map_err(e)?,
            c: r.get_u64().map_err(e)?,
        },
        Opcode::Stats => Request::Stats,
        Opcode::Snapshot => Request::Snapshot { path: r.get_str().map_err(e)? },
        Opcode::Shutdown => Request::Shutdown,
        Opcode::Auth => Request::Auth { token: r.get_str().map_err(e)? },
        Opcode::SetF0 => {
            let a = r.get_str().map_err(e)?;
            let b = r.get_str().map_err(e)?;
            let tag = r.get_u8().map_err(e)?;
            let op = crate::protocol::SetOp::from_tag(tag)
                .ok_or_else(|| format!("unknown set_f0 op tag {tag}"))?;
            Request::SetF0 { a, b, op, c: r.get_u64().map_err(e)? }
        }
        Opcode::Streams => Request::Streams,
        Opcode::ReplHello => Request::ReplHello {
            stream: r.get_str().map_err(e)?,
            fingerprint: r.get_u64().map_err(e)?,
            g_to: r.get_u64().map_err(e)?,
        },
        Opcode::ReplDelta => {
            let stream = r.get_str().map_err(e)?;
            let bytes = r.take(r.remaining()).map_err(e)?.to_vec();
            Request::ReplDelta { stream, frame: bytes }
        }
        Opcode::ReplSnapshot => {
            let stream = r.get_str().map_err(e)?;
            let bytes = r.take(r.remaining()).map_err(e)?.to_vec();
            Request::ReplSnapshot { stream, frame: bytes }
        }
        Opcode::ReplAck => {
            return Err("REPL_ACK is a response-only opcode".into());
        }
    };
    r.expect_end().map_err(e)?;
    Ok(request)
}

/// Field type tags in an OK response payload.
const TAG_U64: u8 = 0;
const TAG_F64: u8 = 1;
const TAG_U64_ARRAY: u8 = 2;
const TAG_F64_ARRAY: u8 = 3;
const TAG_NULL: u8 = 4;
const TAG_STR: u8 = 5;

/// Encode one reply as a complete response frame echoing `opcode`.
pub fn encode_reply(opcode: u8, reply: &Reply) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let flags = match reply {
        Reply::Error(body) => {
            w.put_str(&body.message);
            w.put_str(body.kind.as_str());
            FLAG_ERROR
        }
        Reply::Ok(fields) => {
            w.put_u8(fields.len() as u8);
            for (key, value) in fields {
                w.put_str(key);
                match value {
                    Value::U64(v) => {
                        w.put_u8(TAG_U64);
                        w.put_u64(*v);
                    }
                    Value::F64(v) => {
                        w.put_u8(TAG_F64);
                        w.put_f64(*v);
                    }
                    Value::U64Array(vs) => {
                        w.put_u8(TAG_U64_ARRAY);
                        w.put_u32(vs.len() as u32);
                        for &v in vs {
                            w.put_u64(v);
                        }
                    }
                    Value::F64Array(vs) => {
                        w.put_u8(TAG_F64_ARRAY);
                        w.put_u32(vs.len() as u32);
                        for &v in vs {
                            w.put_f64(v);
                        }
                    }
                    Value::Null => {
                        w.put_u8(TAG_NULL);
                    }
                    Value::Str(s) => {
                        w.put_u8(TAG_STR);
                        w.put_str(s);
                    }
                }
            }
            0
        }
    };
    frame(opcode, flags, w.as_bytes())
}

/// A decoded response payload: the error, or named field values.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedReply {
    /// The ERROR flag was set.
    Error {
        /// The structured error kind's wire name (see
        /// [`crate::protocol::ErrorKind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// Success, with `(key, value)` fields.
    Ok(Vec<(String, Value)>),
}

/// Decode a response payload according to its header flags.
pub fn decode_reply(flags: u8, payload: &[u8]) -> Result<DecodedReply, String> {
    let mut r = ByteReader::new(payload);
    let e = |err: cora_sketch::codec::CodecError| err.to_string();
    if flags & FLAG_ERROR != 0 {
        let message = r.get_str().map_err(e)?;
        let kind = r.get_str().map_err(e)?;
        r.expect_end().map_err(e)?;
        return Ok(DecodedReply::Error { kind, message });
    }
    let nfields = r.get_u8().map_err(e)?;
    let mut fields = Vec::with_capacity(nfields as usize);
    for _ in 0..nfields {
        let key = r.get_str().map_err(e)?;
        let value = match r.get_u8().map_err(e)? {
            TAG_U64 => Value::U64(r.get_u64().map_err(e)?),
            TAG_F64 => Value::F64(r.get_f64().map_err(e)?),
            TAG_U64_ARRAY => {
                let n = r.get_u32().map_err(e)? as usize;
                let bytes = r.take(n * 8).map_err(e)?;
                Value::U64Array(
                    bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                )
            }
            TAG_F64_ARRAY => {
                let n = r.get_u32().map_err(e)? as usize;
                let bytes = r.take(n * 8).map_err(e)?;
                Value::F64Array(
                    bytes
                        .chunks_exact(8)
                        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                        .collect(),
                )
            }
            TAG_NULL => Value::Null,
            TAG_STR => Value::Str(r.get_str().map_err(e)?),
            other => return Err(format!("unknown response field tag {other}")),
        };
        fields.push((key, value));
    }
    r.expect_end().map_err(e)?;
    Ok(DecodedReply::Ok(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip_every_op() {
        let requests = [
            Request::Ping,
            Request::Config,
            Request::Ingest {
                xs: vec![1, u64::MAX, 3],
                ys: vec![10, 20, 30],
                ts: None,
                seq: None,
            },
            Request::Ingest {
                xs: vec![4, 5],
                ys: vec![6, 7],
                ts: Some(vec![100, 99]),
                seq: None,
            },
            Request::Ingest {
                xs: vec![4, 5],
                ys: vec![6, 7],
                ts: Some(vec![100, 99]),
                seq: Some((11, u64::MAX)),
            },
            Request::Ingest { xs: vec![], ys: vec![], ts: None, seq: None },
            Request::Flush,
            Request::QueryF2 { c: 100 },
            Request::QueryF0 { c: 0 },
            Request::QueryRarity { c: u64::MAX },
            Request::QueryHeavyHitters { c: 7, phi: 0.125 },
            Request::WindowF2 { window: 3_600, c: 42 },
            Request::WindowF0 { window: 60, c: u64::MAX },
            Request::Stats,
            Request::Snapshot { path: "/tmp/bundle \"x\".snap".to_string() },
            Request::Shutdown,
            Request::Auth { token: "s3cret \"quoted\"".to_string() },
            Request::SetF0 {
                a: "left".to_string(),
                b: "right".to_string(),
                op: crate::protocol::SetOp::Diff,
                c: 512,
            },
            Request::Streams,
            Request::ReplHello {
                stream: "node-a".to_string(),
                fingerprint: 0xFEED_F00D_DEAD_BEEF,
                g_to: 42,
            },
            Request::ReplDelta {
                stream: "node-a".to_string(),
                frame: vec![0xCA, 0xFE, 0x00, 0x42],
            },
            Request::ReplSnapshot {
                stream: "node-b".to_string(),
                frame: vec![],
            },
        ];
        for request in requests {
            let bytes = encode_request(&request, 0);
            let header: &[u8; HEADER_BYTES] =
                bytes[..HEADER_BYTES].try_into().expect("header slice");
            let header = parse_header(header).expect("valid header");
            assert_eq!(header.len, bytes.len() - HEADER_BYTES);
            let opcode = Opcode::from_byte(header.opcode).expect("known opcode");
            let decoded = decode_request(opcode, &bytes[HEADER_BYTES..]).expect("decode");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn ingest_fast_path_matches_the_generic_decoder() {
        let tuples = vec![(1u64, 10u64), (2, 20), (u64::MAX, 0)];
        let ts = vec![5u64, 4, 3];
        let bytes = encode_ingest(&tuples, Some(&ts), Some((42, 7)), FLAG_NO_ACK);
        let header: &[u8; HEADER_BYTES] = bytes[..HEADER_BYTES].try_into().unwrap();
        let header = parse_header(header).unwrap();
        assert_eq!(header.flags, FLAG_NO_ACK);
        let mut got_tuples = vec![(9, 9)]; // stale scratch must be cleared
        let mut got_ts = vec![7];
        let meta =
            decode_ingest_into(&bytes[HEADER_BYTES..], &mut got_tuples, &mut got_ts).unwrap();
        assert!(meta.has_ts);
        assert_eq!(meta.seq, Some((42, 7)));
        assert_eq!(got_tuples, tuples);
        assert_eq!(got_ts, ts);
        // Without the pair the meta byte degrades to the original has_ts
        // values 0/1, so pre-seq frames decode unchanged.
        let bytes = encode_ingest(&tuples, None, None, 0);
        assert_eq!(bytes[HEADER_BYTES + 4], 0);
        let meta =
            decode_ingest_into(&bytes[HEADER_BYTES..], &mut got_tuples, &mut got_ts).unwrap();
        assert_eq!(meta, IngestMeta { has_ts: false, seq: None });
    }

    #[test]
    fn reply_frames_round_trip_and_match_json_rendering() {
        let replies = [
            Reply::ok(),
            Reply::Ok(vec![
                ("value", Value::F64(1.5)),
                ("count", Value::U64(u64::MAX)),
                ("items", Value::U64Array(vec![7, 9])),
                ("freqs", Value::F64Array(vec![0.25, 0.75])),
                ("retention", Value::Null),
                ("streams", Value::Str("node-a,node-b".to_string())),
            ]),
            Reply::sketch_error("y 5000 out of range"),
            Reply::io_error("journal append failed: disk full"),
        ];
        for reply in replies {
            let bytes = encode_reply(Opcode::Stats as u8, &reply);
            let header: &[u8; HEADER_BYTES] = bytes[..HEADER_BYTES].try_into().unwrap();
            let header = parse_header(header).unwrap();
            let decoded = decode_reply(header.flags, &bytes[HEADER_BYTES..]).unwrap();
            match (&reply, &decoded) {
                (Reply::Error(want), DecodedReply::Error { kind, message }) => {
                    assert_eq!(message, &want.message);
                    assert_eq!(kind, want.kind.as_str());
                }
                (Reply::Ok(want), DecodedReply::Ok(got)) => {
                    assert_eq!(got.len(), want.len());
                    for ((wk, wv), (gk, gv)) in want.iter().zip(got) {
                        assert_eq!(gk, wk);
                        assert_eq!(gv, wv);
                        // The binary client re-renders through the same JSON
                        // formatter the line protocol uses, so field text is
                        // identical across transports.
                        assert_eq!(gv.render_json(), wv.render_json());
                    }
                }
                other => panic!("shape changed through the wire: {other:?}"),
            }
        }
    }

    #[test]
    fn headers_reject_bad_magic_version_and_oversized_lengths() {
        let good = encode_request(&Request::Ping, 0);
        let mut h: [u8; HEADER_BYTES] = good[..HEADER_BYTES].try_into().unwrap();
        assert!(parse_header(&h).is_ok());
        h[0] = b'{';
        assert_eq!(parse_header(&h), Err(HeaderError::BadMagic(b'{')));
        h[0] = MAGIC;
        h[1] = 9;
        assert_eq!(parse_header(&h), Err(HeaderError::BadVersion(9)));
        h[1] = VERSION;
        h[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_header(&h),
            Err(HeaderError::BadLength(u32::MAX as usize))
        );
    }

    #[test]
    fn truncated_and_inconsistent_payloads_error_cleanly() {
        let frame = encode_request(
            &Request::Ingest { xs: vec![1, 2], ys: vec![3, 4], ts: None, seq: None },
            0,
        );
        let payload = &frame[HEADER_BYTES..];
        let mut tuples = Vec::new();
        let mut ts = Vec::new();
        // Whole payload works; every strict prefix errors, never panics.
        assert!(decode_ingest_into(payload, &mut tuples, &mut ts).is_ok());
        for cut in 0..payload.len() {
            assert!(
                decode_ingest_into(&payload[..cut], &mut tuples, &mut ts).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // A declared count that disagrees with the byte count is rejected
        // without allocating for the phantom tuples.
        let mut lying = payload.to_vec();
        lying[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ingest_into(&lying, &mut tuples, &mut ts).is_err());
        // Truncated query payloads error too.
        let q = encode_request(&Request::QueryHeavyHitters { c: 9, phi: 0.5 }, 0);
        for cut in 0..q.len() - HEADER_BYTES {
            assert!(decode_request(Opcode::HeavyHitters, &q[HEADER_BYTES..HEADER_BYTES + cut])
                .is_err());
        }
        // Trailing garbage after a well-formed payload is rejected.
        let mut padded = q[HEADER_BYTES..].to_vec();
        padded.push(0);
        assert!(decode_request(Opcode::HeavyHitters, &padded).is_err());
        // REPL_ACK only travels server -> client.
        assert!(decode_request(Opcode::ReplAck, &[]).is_err());
        // An unknown set-op tag is rejected.
        let mut w = ByteWriter::new();
        w.put_str("a");
        w.put_str("b");
        w.put_u8(9);
        w.put_u64(1);
        assert!(decode_request(Opcode::SetF0, w.as_bytes()).is_err());
    }
}
